"""Baseline workflow: write, load, filter, and the CI contract that only
*new* diagnostics fail the run."""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.baseline import BASELINE_VERSION, Baseline
from repro.lint.cli import main
from repro.lint.diagnostics import Diagnostic


def _diag(rule="mutable-default", path="src/mod.py", line=3):
    return Diagnostic(rule=rule, path=path, line=line, col=1, message="m")


def test_write_load_roundtrip(tmp_path):
    target = tmp_path / "baseline.json"
    count = Baseline.write(target, [_diag(), _diag(rule="layering", line=9)])
    assert count == 2
    baseline = Baseline.load(target)
    assert baseline.matches(_diag())
    assert baseline.matches(_diag(rule="layering", line=9))
    assert not baseline.matches(_diag(line=4))  # moved line: re-surfaces
    assert not baseline.matches(_diag(rule="layering", line=3))


def test_written_file_is_versioned_and_sorted(tmp_path):
    target = tmp_path / "baseline.json"
    Baseline.write(target, [_diag(path="b.py"), _diag(path="a.py")])
    payload = json.loads(target.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert [entry["path"] for entry in payload["entries"]] == ["a.py", "b.py"]
    assert all("message" in entry for entry in payload["entries"])


def test_matching_is_windows_path_tolerant():
    baseline = Baseline({("mutable-default", "src/mod.py", 3)})
    assert baseline.matches(_diag(path="src\\mod.py"))


def test_load_rejects_unknown_version(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(target)


def test_lint_paths_filters_and_counts_baselined(tmp_path):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    cold = lint_paths([dirty])
    assert len(cold.diagnostics) == 1
    baseline = Baseline({(d.rule, d.path, d.line) for d in cold.diagnostics})
    filtered = lint_paths([dirty], baseline=baseline)
    assert filtered.diagnostics == []
    assert filtered.baselined == 1


def test_new_violation_is_still_reported(tmp_path):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    baseline = Baseline({(d.rule, d.path, d.line)
                         for d in lint_paths([dirty]).diagnostics})
    dirty.write_text(dirty.read_text() + "\n\ndef g(y=[]):\n    return y\n")
    result = lint_paths([dirty], baseline=baseline)
    assert [d.line for d in result.diagnostics] == [5]
    assert result.baselined == 1


# ---------------------------------------------------------------------------
# CLI workflow (conftest chdirs every test into its own tmp dir, so the
# default ./lint-baseline.json written here is isolated)


def test_cli_write_baseline_then_clean_run(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")

    assert main(["--write-baseline", "--no-cache", str(dirty)]) == 0
    captured = capsys.readouterr()
    assert "wrote 1 baseline entry to lint-baseline.json" in captured.err
    assert Path("lint-baseline.json").exists()

    # The baseline auto-loads from the working directory: exit goes green.
    assert main(["--no-cache", str(dirty)]) == 0
    out = capsys.readouterr().out
    assert "0 problems" in out
    assert "1 baselined" in out


def test_cli_fails_on_new_entry_only(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert main(["--write-baseline", "--no-cache", str(dirty)]) == 0
    capsys.readouterr()

    fresh = tmp_path / "fresh.py"
    fresh.write_text("def g(y=[]):\n    return y\n")
    assert main(["--no-cache", str(dirty), str(fresh)]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out
    assert "mod.py" not in out.splitlines()[0]


def test_cli_no_baseline_reports_everything(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert main(["--write-baseline", "--no-cache", str(dirty)]) == 0
    capsys.readouterr()
    assert main(["--no-baseline", "--no-cache", str(dirty)]) == 1


def test_cli_missing_explicit_baseline_is_usage_error(tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["--baseline", str(tmp_path / "nope.json"), str(clean)])
    assert excinfo.value.code == 2


def test_repo_baseline_matches_the_tree():
    """The checked-in baseline stays honest: every entry corresponds to a
    diagnostic the current tree still produces (no stale entries)."""
    repo_root = Path(__file__).resolve().parents[2]
    baseline_path = repo_root / "lint-baseline.json"
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == BASELINE_VERSION
    entries = payload["entries"]
    assert entries, "baseline exists but is empty; delete it instead"

    result = lint_paths([repo_root / "src"])
    produced = {(d.rule, d.path, d.line) for d in result.diagnostics}
    for entry in entries:
        key = (entry["rule"],
               str(repo_root / entry["path"]),
               entry["line"])
        assert key in produced, f"stale baseline entry: {entry}"
