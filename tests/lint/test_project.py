"""Project-scope rules: layering, import cycles, cross-module dataflow.

These tests build small ``repro``-shaped trees in a temp dir and run
``lint_paths`` with the relevant rule selected, so each contract is
exercised end-to-end through summary extraction, the import graph and
the symbol table.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.layers import Architecture, ImportCycleRule, LayeringRule
from repro.lint.project import (
    ModuleSummary,
    ProjectContext,
    extract_summary,
    module_name_for,
)


def build_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize ``files`` under ``root``, auto-creating package inits."""
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body).lstrip("\n"))
    for path in list(root.rglob("*.py")):
        current = path.parent
        while current != root:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text("")
            current = current.parent
    return root


def summarize(module: str, source: str, path: str = "mod.py") -> ModuleSummary:
    return extract_summary(ast.parse(source), module, path)


# ---------------------------------------------------------------------------
# module naming


def test_module_name_for_walks_packages(tmp_path):
    tree = build_tree(tmp_path / "t", {"repro/serving/cluster.py": "x = 1\n"})
    assert module_name_for(tree / "repro/serving/cluster.py") == "repro.serving.cluster"
    assert module_name_for(tree / "repro/serving/__init__.py") == "repro.serving"


def test_module_name_for_standalone_script(tmp_path):
    script = tmp_path / "bench_thing.py"
    script.write_text("x = 1\n")
    assert module_name_for(script) == "bench_thing"


# ---------------------------------------------------------------------------
# layering


def test_layering_flags_core_importing_serving(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/core/pipeline.py": "from repro.serving.cluster import Cluster\n",
        "repro/serving/cluster.py": "class Cluster:\n    pass\n",
    })
    result = lint_paths([tree], select={"layering"})
    assert [d.rule for d in result.diagnostics] == ["layering"]
    diagnostic = result.diagnostics[0]
    assert diagnostic.path.endswith("pipeline.py")
    assert diagnostic.line == 1
    assert "layer 'core' may not import layer 'serving'" in diagnostic.message
    assert "repro.core.pipeline -> repro.serving.cluster" in diagnostic.message


def test_layering_allows_declared_edges(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/serving/cluster.py": "from repro.core.pipeline import run\n",
        "repro/core/pipeline.py": "def run():\n    return 1\n",
    })
    result = lint_paths([tree], select={"layering"})
    assert result.diagnostics == []


def test_layering_shared_modules_are_importable_from_anywhere(tmp_path):
    # behavior may not import core in general, but core.relations is in
    # the declared shared vocabulary.
    tree = build_tree(tmp_path / "t", {
        "repro/behavior/world.py": "from repro.core.relations import RELATIONS\n",
        "repro/core/relations.py": "RELATIONS = ()\n",
    })
    result = lint_paths([tree], select={"layering"})
    assert result.diagnostics == []


def test_layering_reports_unmapped_package_once(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/zeta/alpha.py": "x = 1\n",
        "repro/zeta/beta.py": "y = 2\n",
    })
    result = lint_paths([tree], select={"layering"})
    assert len(result.diagnostics) == 1
    assert "package 'zeta' is not in the declared architecture map" in (
        result.diagnostics[0].message)


def test_layering_with_custom_architecture():
    arch = Architecture(
        root="app",
        allowed={"a": frozenset(), "b": frozenset({"a"})},
    )
    context = ProjectContext([
        summarize("app.a.x", "import app.b.y\n", "a/x.py"),
        summarize("app.b.y", "import app.a.x\n", "b/y.py"),
        summarize("app.a", "", "a/__init__.py"),
        summarize("app.b", "", "b/__init__.py"),
    ])
    diagnostics = LayeringRule(arch).check(context)
    assert len(diagnostics) == 1
    assert diagnostics[0].path == "a/x.py"
    assert "layer 'a' may not import layer 'b'" in diagnostics[0].message
    assert "allows a -> {nothing}" in diagnostics[0].message


# ---------------------------------------------------------------------------
# import cycles


def test_import_cycle_detected(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "pkg/a.py": "from pkg import b\n",
        "pkg/b.py": "from pkg import a\n",
    })
    result = lint_paths([tree], select={"import-cycle"})
    assert [d.rule for d in result.diagnostics] == ["import-cycle"]
    message = result.diagnostics[0].message
    assert "import cycle between 2 modules" in message
    assert "pkg.a -> pkg.b -> pkg.a" in message


def test_package_reexport_is_not_a_cycle(tmp_path):
    # pkg/__init__ re-exports from pkg.b while pkg.b imports a *sibling*
    # through the package (`from pkg import a`).  Submodule refinement
    # resolves that edge to pkg.a, so no pkg <-> pkg.b pseudo-cycle.
    tree = build_tree(tmp_path / "t", {
        "pkg/__init__.py": "from pkg.b import thing\n",
        "pkg/a.py": "x = 1\n",
        "pkg/b.py": "thing = 1\nfrom pkg import a\n",
    })
    result = lint_paths([tree], select={"import-cycle"})
    assert result.diagnostics == []


def test_three_module_cycle_reports_full_ring(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "pkg/a.py": "import pkg.b\n",
        "pkg/b.py": "import pkg.c\n",
        "pkg/c.py": "import pkg.a\n",
    })
    result = lint_paths([tree], select={"import-cycle"})
    assert len(result.diagnostics) == 1
    assert "pkg.a -> pkg.b -> pkg.c -> pkg.a" in result.diagnostics[0].message


def test_cycle_rule_uses_iterative_tarjan_on_deep_chains():
    # A 500-module chain closed into one ring: a recursive SCC would
    # overflow; the iterative one reports a single 500-member cycle.
    summaries = [
        summarize(f"chain.m{i:03d}", f"import chain.m{(i + 1) % 500:03d}\n",
                  f"m{i:03d}.py")
        for i in range(500)
    ]
    context = ProjectContext(summaries)
    rule = ImportCycleRule()
    diagnostics = rule.check(context)
    assert len(diagnostics) == 1
    assert "import cycle between 500 modules" in diagnostics[0].message


# ---------------------------------------------------------------------------
# rng-provenance


def test_rng_provenance_flags_literal_seed_keyword(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/nn/model.py": "def train(data, rng):\n    return data\n",
        "repro/core/run.py": """
            from repro.nn.model import train

            def go(data):
                return train(data, rng=7)
        """,
    })
    result = lint_paths([tree], select={"rng-provenance"})
    assert [d.rule for d in result.diagnostics] == ["rng-provenance"]
    message = result.diagnostics[0].message
    assert "train() parameter 'rng' expects a Generator" in message
    assert "receives the literal 7" in message


def test_rng_provenance_flags_inline_numpy_stream(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/nn/model.py": "def train(data, rng):\n    return data\n",
        "repro/core/run.py": """
            import numpy as np
            from repro.nn.model import train

            def go(data):
                return train(data, np.random.default_rng(3))
        """,
    })
    result = lint_paths([tree], select={"rng-provenance"})
    assert len(result.diagnostics) == 1
    assert "created inline via numpy.random.default_rng" in result.diagnostics[0].message


def test_rng_provenance_accepts_spawn_rng_and_names(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/utils/rng.py": "def spawn_rng(seed, scope):\n    return seed\n",
        "repro/nn/model.py": "def train(data, rng):\n    return data\n",
        "repro/core/run.py": """
            from repro.utils.rng import spawn_rng
            from repro.nn.model import train

            def go(data, seed, stream):
                train(data, spawn_rng(seed, scope="model"))
                return train(data, rng=stream)
        """,
    })
    result = lint_paths([tree], select={"rng-provenance"})
    assert result.diagnostics == []


def test_rng_provenance_positional_into_annotated_ctor(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/nn/net.py": """
            class Net:
                def __init__(self, size, stream: "np.random.Generator"):
                    self.size = size
        """,
        "repro/core/mk.py": """
            from repro.nn.net import Net

            def mk():
                return Net(4, 7)
        """,
    })
    result = lint_paths([tree], select={"rng-provenance"})
    assert len(result.diagnostics) == 1
    assert "Net() parameter 'stream'" in result.diagnostics[0].message


def test_rng_provenance_follows_package_reexports(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/nn/__init__.py": "from repro.nn.net import Net\n",
        "repro/nn/net.py": """
            class Net:
                def __init__(self, rng):
                    self.rng = rng
        """,
        "repro/core/mk.py": """
            from repro.nn import Net

            def mk():
                return Net(rng=13)
        """,
    })
    result = lint_paths([tree], select={"rng-provenance"})
    assert len(result.diagnostics) == 1
    assert "Net() parameter 'rng'" in result.diagnostics[0].message


def test_rng_provenance_star_args_disable_positional_matching(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/nn/model.py": "def train(data, rng):\n    return data\n",
        "repro/core/run.py": """
            from repro.nn.model import train

            def go(extra):
                return train(*extra, 7)
        """,
    })
    result = lint_paths([tree], select={"rng-provenance"})
    assert result.diagnostics == []


# ---------------------------------------------------------------------------
# clock-injection / registry-injection


def test_clock_injection_flags_raw_ctor_but_not_fallback(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/serving/clock.py": """
            class SimClock:
                def __init__(self, start=0.0):
                    self.start = start
        """,
        "repro/serving/cluster.py": """
            from repro.serving.clock import SimClock

            def build(clock=None):
                a = SimClock()
                b = clock or SimClock()
                c = clock if clock is not None else SimClock()
                return a, b, c
        """,
    })
    result = lint_paths([tree], select={"clock-injection"})
    assert [d.rule for d in result.diagnostics] == ["clock-injection"]
    assert result.diagnostics[0].line == 4
    assert "accept an injected clock" in result.diagnostics[0].message


def test_clock_injection_sanctioned_factory_and_outside_root(tmp_path):
    tree = build_tree(tmp_path / "t", {
        # The defining module itself is a sanctioned factory...
        "repro/serving/clock.py": """
            class SimClock:
                def __init__(self, start=0.0):
                    self.start = start

            def default_clock():
                return SimClock()
        """,
        # ...and scripts outside the repro root are exempt entirely.
        "driver.py": """
            from repro.serving.clock import SimClock

            clock = SimClock()
        """,
    })
    result = lint_paths([tree], select={"clock-injection"})
    assert result.diagnostics == []


def test_registry_injection_flags_component_owned_registry(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/obs/metrics.py": """
            class MetricsRegistry:
                def __init__(self):
                    self.metrics = {}
        """,
        "repro/serving/api.py": """
            from repro.obs.metrics import MetricsRegistry

            def build(registry=None):
                shared = registry or MetricsRegistry()
                private = MetricsRegistry()
                return shared, private
        """,
    })
    result = lint_paths([tree], select={"registry-injection"})
    assert [d.rule for d in result.diagnostics] == ["registry-injection"]
    assert result.diagnostics[0].line == 5
    assert "fragments the scrape surface" in result.diagnostics[0].message


# ---------------------------------------------------------------------------
# suppressions on project-level diagnostics


def test_file_wide_suppression_silences_project_rule(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/core/pipeline.py": (
            "# cosmolint: disable-file=layering\n"
            "from repro.serving.cluster import Cluster\n"
        ),
        "repro/serving/cluster.py": "class Cluster:\n    pass\n",
    })
    result = lint_paths([tree], select={"layering"})
    assert result.diagnostics == []
    assert result.suppressed == 1


def test_line_suppression_silences_project_rule_on_that_line_only(tmp_path):
    tree = build_tree(tmp_path / "t", {
        "repro/core/pipeline.py": (
            "from repro.serving.cluster import Cluster  # cosmolint: disable=layering\n"
            "from repro.serving.clock import SimClock\n"
        ),
        "repro/serving/cluster.py": "class Cluster:\n    pass\n",
        "repro/serving/clock.py": "class SimClock:\n    pass\n",
    })
    result = lint_paths([tree], select={"layering"})
    assert len(result.diagnostics) == 1
    assert result.diagnostics[0].line == 2
    assert result.suppressed == 1
