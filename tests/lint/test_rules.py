"""cosmolint rules exercised against fixture snippets (never the live tree)."""

import textwrap

from repro.lint import lint_source
from repro.lint.rules import (
    AllConsistencyRule,
    BatchEntrypointOnlyRule,
    EventLogOnlyRule,
    FloatEqualityRule,
    MutableDefaultRule,
    OverbroadExceptRule,
    SnapshotBuilderOnlyRule,
    SnapshotHealthGateRule,
    TraceIdContractRule,
    UnscopedRngRule,
    WallClockRule,
)


def run_rule(rule_class, source, path="pkg/mod.py", in_package=True):
    result = lint_source(
        textwrap.dedent(source),
        display_path=path,
        in_package=in_package,
        rule_classes=[rule_class],
    )
    return result.diagnostics


# -- unscoped-rng -------------------------------------------------------


def test_unscoped_rng_flags_default_rng_via_alias():
    diags = run_rule(
        UnscopedRngRule,
        """
        import numpy as np
        rng = np.random.default_rng(7)
        """,
    )
    assert [d.rule for d in diags] == ["unscoped-rng"]
    assert diags[0].line == 3
    assert "numpy.random.default_rng" in diags[0].message


def test_unscoped_rng_flags_from_import_and_module_functions():
    diags = run_rule(
        UnscopedRngRule,
        """
        from numpy.random import default_rng
        import random
        a = default_rng(0)
        b = random.random()
        random.seed(3)
        """,
    )
    assert [d.rule for d in diags] == ["unscoped-rng"] * 3
    assert [d.line for d in diags] == [4, 5, 6]


def test_unscoped_rng_ignores_annotations_and_generator_methods():
    diags = run_rule(
        UnscopedRngRule,
        """
        import numpy as np
        from repro.utils.rng import spawn_rng

        def draw(rng: np.random.Generator) -> float:
            return float(rng.random())

        rng = spawn_rng(7, "component")
        """,
    )
    assert diags == []


def test_unscoped_rng_exempts_the_rng_module_itself():
    source = """
    import numpy as np
    seq = np.random.SeedSequence(1)
    """
    assert run_rule(UnscopedRngRule, source, path="src/repro/utils/rng.py") == []
    assert len(run_rule(UnscopedRngRule, source, path="src/repro/core/x.py")) == 1


# -- wall-clock ---------------------------------------------------------


def test_wall_clock_flags_time_and_datetime_in_serving():
    diags = run_rule(
        WallClockRule,
        """
        import time
        from datetime import datetime
        t = time.time()
        time.sleep(0.1)
        now = datetime.now()
        """,
        path="src/repro/serving/thing.py",
    )
    assert [d.rule for d in diags] == ["wall-clock"] * 3
    assert [d.line for d in diags] == [4, 5, 6]


def test_wall_clock_enforced_repo_wide():
    source = """
    import time
    t = time.time()
    """
    assert len(run_rule(WallClockRule, source, path="src/repro/core/pipeline.py")) == 1
    assert len(run_rule(WallClockRule, source, path="benchmarks/bench_x.py")) == 1


def test_wall_clock_allowlists_only_the_obs_timebase():
    source = """
    import time

    def wall_now():
        return time.perf_counter()
    """
    # The sanctioned narrow waist is exempt...
    assert run_rule(WallClockRule, source, path="src/repro/obs/timebase.py") == []
    # ...but a second perf_counter call site anywhere else is flagged,
    # even under a same-named file outside obs/.
    flagged = run_rule(WallClockRule, source, path="src/repro/serving/timebase.py")
    assert [d.rule for d in flagged] == ["wall-clock"]
    assert "perf_counter" in flagged[0].message


# -- event-log-only -----------------------------------------------------


def test_event_log_only_flags_print_and_stream_writes_in_serving():
    diags = run_rule(
        EventLogOnlyRule,
        """
        import sys

        def drain(replica):
            print(f"draining {replica}")
            sys.stderr.write("drained\\n")
        """,
        path="src/repro/serving/router.py",
    )
    assert [d.rule for d in diags] == ["event-log-only"] * 2
    assert [d.line for d in diags] == [5, 6]
    assert "EventLog" in diags[0].message


def test_event_log_only_scoped_to_serving_trees():
    source = """
    print("table output")
    """
    assert run_rule(EventLogOnlyRule, source, path="src/repro/cli.py") == []
    assert run_rule(EventLogOnlyRule, source, path="benchmarks/bench_x.py") == []
    assert len(run_rule(EventLogOnlyRule, source,
                        path="src/repro/serving/cluster.py")) == 1


def test_event_log_only_respects_allowlist(monkeypatch):
    source = """
    print("human-only debug output")
    """
    assert len(run_rule(EventLogOnlyRule, source,
                        path="src/repro/serving/debug.py")) == 1
    monkeypatch.setattr(EventLogOnlyRule, "allowlist", ("serving/debug.py",))
    assert run_rule(EventLogOnlyRule, source,
                    path="src/repro/serving/debug.py") == []


# -- mutable-default ----------------------------------------------------


def test_mutable_default_flags_literals_and_constructor_calls():
    diags = run_rule(
        MutableDefaultRule,
        """
        def f(a, items=[], *, lookup={}):
            return a

        def g(tags=set(), names=dict()):
            return tags

        h = lambda acc=[]: acc
        """,
    )
    assert [d.rule for d in diags] == ["mutable-default"] * 5


def test_mutable_default_allows_none_and_immutable_defaults():
    diags = run_rule(
        MutableDefaultRule,
        """
        def f(a=None, b=(), c="x", d=0, e=frozenset()):
            return a
        """,
    )
    assert diags == []


# -- overbroad-except ---------------------------------------------------


def test_overbroad_except_flags_bare_and_swallowed_exception():
    diags = run_rule(
        OverbroadExceptRule,
        """
        try:
            work()
        except:
            pass

        try:
            work()
        except Exception:
            log()
        """,
    )
    assert [d.rule for d in diags] == ["overbroad-except"] * 2
    assert [d.line for d in diags] == [4, 9]


def test_overbroad_except_allows_reraise_and_narrow_handlers():
    diags = run_rule(
        OverbroadExceptRule,
        """
        try:
            work()
        except Exception:
            log()
            raise

        try:
            work()
        except ValueError:
            pass
        """,
    )
    assert diags == []


# -- float-equality -----------------------------------------------------


def test_float_equality_flags_eq_and_ne_against_float_literals():
    diags = run_rule(
        FloatEqualityRule,
        """
        def check(score):
            if score == 0.5:
                return True
            return score != 1.0
        """,
        path="src/repro/apps/relevance/metrics.py",
    )
    assert [d.rule for d in diags] == ["float-equality"] * 2
    assert [d.line for d in diags] == [3, 5]


def test_float_equality_allows_int_literals_and_ordering():
    diags = run_rule(
        FloatEqualityRule,
        """
        def check(score):
            return score == 0 or score >= 0.5
        """,
        path="src/repro/apps/relevance/metrics.py",
    )
    assert diags == []


def test_float_equality_scoped_to_metrics_code():
    source = """
    x = 1.0
    ok = x == 1.0
    """
    assert run_rule(FloatEqualityRule, source, path="src/repro/core/pipeline.py") == []
    assert len(run_rule(FloatEqualityRule, source, path="src/repro/reporting/tables.py")) == 1


# -- all-consistency ----------------------------------------------------


def test_all_consistency_requires_all_in_public_package_modules():
    diags = run_rule(
        AllConsistencyRule,
        """
        def public_thing():
            return 1
        """,
    )
    assert [d.rule for d in diags] == ["all-consistency"]
    assert "no __all__" in diags[0].message


def test_all_consistency_flags_undefined_exports():
    diags = run_rule(
        AllConsistencyRule,
        """
        __all__ = ["present", "missing"]

        def present():
            return 1
        """,
    )
    assert [d.rule for d in diags] == ["all-consistency"]
    assert "'missing'" in diags[0].message


def test_all_consistency_exempts_scripts_tests_and_private_modules():
    source = """
    def public_thing():
        return 1
    """
    # not a package member (benchmarks/, examples/ style)
    assert run_rule(AllConsistencyRule, source, in_package=False) == []
    assert run_rule(AllConsistencyRule, source, path="pkg/test_mod.py") == []
    assert run_rule(AllConsistencyRule, source, path="pkg/_private.py") == []
    assert run_rule(AllConsistencyRule, source, path="pkg/conftest.py") == []


def test_all_consistency_accepts_conditional_and_tuple_definitions():
    diags = run_rule(
        AllConsistencyRule,
        """
        __all__ = ["a", "b", "maybe", "Klass"]

        a, b = 1, 2

        if True:
            maybe = 3

        class Klass:
            pass
        """,
    )
    assert diags == []


def test_all_consistency_skips_dynamic_all():
    diags = run_rule(
        AllConsistencyRule,
        """
        __all__ = [name for name in ("a",)]

        def f():
            return 1
        """,
    )
    assert diags == []


# -- snapshot-builder-only ----------------------------------------------


def test_snapshot_builder_only_flags_direct_construction():
    diags = run_rule(
        SnapshotBuilderOnlyRule,
        """
        from repro.refresh import KgSnapshot, SnapshotManifest

        manifest = SnapshotManifest(version="v-0", parent=None, checksum="0",
                                    entry_count=0, triple_count=0)
        snap = KgSnapshot(manifest, {}, ())
        """,
        path="src/repro/serving/deployment.py",
    )
    assert [d.rule for d in diags] == ["snapshot-builder-only"] * 2
    assert "build_snapshot" in diags[0].message


def test_snapshot_builder_only_resolves_module_attribute_calls():
    diags = run_rule(
        SnapshotBuilderOnlyRule,
        """
        from repro.refresh import snapshot

        snap = snapshot.KgSnapshot(None, {}, ())
        """,
        path="src/repro/cli.py",
    )
    assert [d.rule for d in diags] == ["snapshot-builder-only"]


def test_snapshot_builder_only_allows_build_snapshot_anywhere():
    diags = run_rule(
        SnapshotBuilderOnlyRule,
        """
        from repro.refresh import build_snapshot

        snap = build_snapshot({"q": "answer."})
        """,
        path="src/repro/cli.py",
    )
    assert diags == []


def test_snapshot_builder_only_exempts_the_refresh_package():
    source = """
    from repro.refresh.snapshot import KgSnapshot

    snap = KgSnapshot(None, {}, ())
    """
    assert run_rule(SnapshotBuilderOnlyRule, source,
                    path="src/repro/refresh/snapshot.py") == []
    assert run_rule(SnapshotBuilderOnlyRule, source,
                    path="src/repro/refresh/builder.py") == []
    assert len(run_rule(SnapshotBuilderOnlyRule, source,
                        path="src/repro/serving/cache.py")) == 1


def test_snapshot_builder_only_ignores_unrelated_same_named_classes():
    diags = run_rule(
        SnapshotBuilderOnlyRule,
        """
        from somelib import KgSnapshot

        snap = KgSnapshot()
        """,
        path="src/repro/core/pipeline.py",
    )
    assert diags == []


# -- trace-id-contract --------------------------------------------------


def test_trace_id_contract_flags_ad_hoc_span_keyword():
    diags = run_rule(
        TraceIdContractRule,
        """
        with tracer.span("serve", trace_id=context.trace_id):
            pass
        """,
        path="src/repro/serving/deployment.py",
    )
    assert [d.rule for d in diags] == ["trace-id-contract"]
    assert "Tracer.attach" in diags[0].message


def test_trace_id_contract_flags_spelling_variants_on_emit_and_record():
    diags = run_rule(
        TraceIdContractRule,
        """
        event_log.emit("serve", "request", traceId=tid)
        tracer.record("flush", 0.0, 1.0, TraceID=tid)
        """,
        path="src/repro/serving/cluster.py",
    )
    assert [d.rule for d in diags] == ["trace-id-contract"] * 2


def test_trace_id_contract_flags_literal_set_attribute_key():
    diags = run_rule(
        TraceIdContractRule,
        """
        span.set_attribute("trace_id", context.trace_id)
        """,
        path="src/repro/serving/cache.py",
    )
    assert [d.rule for d in diags] == ["trace-id-contract"]


def test_trace_id_contract_allows_the_sanctioned_constant():
    diags = run_rule(
        TraceIdContractRule,
        """
        from repro.obs.tracing import TRACE_ID_ATTR

        span.set_attribute(TRACE_ID_ATTR, context.trace_id)
        """,
        path="src/repro/serving/deployment.py",
    )
    assert diags == []


def test_trace_id_contract_allows_trace_id_outside_attr_methods():
    diags = run_rule(
        TraceIdContractRule,
        """
        from dataclasses import replace

        result = replace(result, trace_id=context.trace_id)
        sampler.finish(context.trace_id, ts=now, duration_s=d, flagged=True)
        """,
        path="src/repro/serving/cluster.py",
    )
    assert diags == []


def test_trace_id_contract_scoped_to_serving_modules():
    source = """
    with tracer.span("assemble", trace_id=tid):
        pass
    """
    assert run_rule(TraceIdContractRule, source,
                    path="src/repro/obs/trace_query.py") == []
    assert len(run_rule(TraceIdContractRule, source,
                        path="src/repro/serving/router.py")) == 1


# -- batch-entrypoint-only ----------------------------------------------


def test_batch_entrypoint_flags_per_item_generate_in_serving():
    diags = run_rule(
        BatchEntrypointOnlyRule,
        """
        generation = self.generator.generate(prompt)[0]
        """,
        path="src/repro/serving/deployment.py",
    )
    assert [d.rule for d in diags] == ["batch-entrypoint-only"]
    assert "generate_batch" in diags[0].message


def test_batch_entrypoint_flags_deprecated_generate_knowledge_calls():
    diags = run_rule(
        BatchEntrypointOnlyRule,
        """
        texts = self.generator.generate_knowledge(prompts)
        more = resilient.generate_knowledge([prompt])
        """,
        path="src/repro/serving/cluster.py",
    )
    assert [d.rule for d in diags] == ["batch-entrypoint-only"] * 2
    assert [d.line for d in diags] == [2, 3]


def test_batch_entrypoint_allows_generate_batch_and_shim_definitions():
    diags = run_rule(
        BatchEntrypointOnlyRule,
        """
        class Shim:
            def generate_knowledge(self, prompts):
                return self.generate_batch(prompts).require()

        batch = self.generator.generate_batch(prompts)
        """,
        path="src/repro/serving/resilience.py",
    )
    assert diags == []


def test_batch_entrypoint_scoped_to_serving_modules():
    source = """
    generations = teacher.generate(prompt, num_candidates=3)
    """
    assert run_rule(BatchEntrypointOnlyRule, source,
                    path="src/repro/core/generation.py") == []
    assert len(run_rule(BatchEntrypointOnlyRule, source,
                        path="src/repro/serving/chaos.py")) == 1


# -- suppressions -------------------------------------------------------


def test_same_line_suppression_silences_one_rule():
    result = lint_source(
        textwrap.dedent(
            """
            import numpy as np
            rng = np.random.default_rng(7)  # cosmolint: disable=unscoped-rng
            bad = np.random.default_rng(8)
            """
        ),
        display_path="pkg/mod.py",
        rule_classes=[UnscopedRngRule],
    )
    assert [d.line for d in result.diagnostics] == [4]
    assert result.suppressed == 1


def test_file_wide_suppression_and_disable_all():
    result = lint_source(
        textwrap.dedent(
            """
            # cosmolint: disable-file=unscoped-rng
            import numpy as np
            a = np.random.default_rng(1)
            b = np.random.default_rng(2)  # cosmolint: disable=all
            """
        ),
        display_path="pkg/mod.py",
        rule_classes=[UnscopedRngRule],
    )
    assert result.diagnostics == []
    assert result.suppressed == 2


def test_suppression_for_other_rule_does_not_apply():
    result = lint_source(
        "import numpy as np\nr = np.random.default_rng(1)  # cosmolint: disable=wall-clock\n",
        display_path="pkg/mod.py",
        rule_classes=[UnscopedRngRule],
    )
    assert [d.rule for d in result.diagnostics] == ["unscoped-rng"]
    assert result.suppressed == 0


def test_syntax_error_reported_as_diagnostic():
    result = lint_source("def broken(:\n", display_path="pkg/mod.py")
    assert [d.rule for d in result.diagnostics] == ["syntax-error"]
    assert result.files_checked == 1


# -- snapshot-health-gate ------------------------------------------------


def test_snapshot_health_gate_flags_ungated_controller():
    diags = run_rule(
        SnapshotHealthGateRule,
        """
        from repro.refresh import RolloutController

        controller = RolloutController(cluster, store, green, evaluator)
        """,
        path="src/repro/cli.py",
    )
    assert [d.rule for d in diags] == ["snapshot-health-gate"]
    assert "quality_gate" in diags[0].message


def test_snapshot_health_gate_flags_explicit_none():
    diags = run_rule(
        SnapshotHealthGateRule,
        """
        from repro.refresh import RolloutController

        controller = RolloutController(cluster, store, green, evaluator,
                                       quality_gate=None)
        """,
        path="src/repro/cli.py",
    )
    assert [d.rule for d in diags] == ["snapshot-health-gate"]
    assert "disables" in diags[0].message


def test_snapshot_health_gate_allows_gated_construction():
    diags = run_rule(
        SnapshotHealthGateRule,
        """
        from repro.refresh import RolloutController, SnapshotQualityGate

        gate = SnapshotQualityGate(store)
        controller = RolloutController(cluster, store, green, evaluator,
                                       quality_gate=gate)
        """,
        path="src/repro/cli.py",
    )
    assert diags == []


def test_snapshot_health_gate_resolves_module_attribute_calls():
    diags = run_rule(
        SnapshotHealthGateRule,
        """
        from repro.refresh import rollout

        controller = rollout.RolloutController(cluster, store, green, evaluator)
        """,
        path="benchmarks/bench_rollout_staleness.py",
    )
    assert [d.rule for d in diags] == ["snapshot-health-gate"]


def test_snapshot_health_gate_tolerates_kwargs_splat():
    # A **kwargs splat may carry the gate; resolving that is beyond
    # static analysis, so the rule stays quiet rather than crying wolf.
    diags = run_rule(
        SnapshotHealthGateRule,
        """
        from repro.refresh import RolloutController

        controller = RolloutController(cluster, store, green, evaluator,
                                       **extra)
        """,
        path="src/repro/cli.py",
    )
    assert diags == []


def test_snapshot_health_gate_exempts_the_refresh_package():
    source = """
    from repro.refresh import RolloutController

    controller = RolloutController(cluster, store, green, evaluator)
    """
    assert run_rule(SnapshotHealthGateRule, source,
                    path="src/repro/refresh/rollout.py") == []
    assert len(run_rule(SnapshotHealthGateRule, source,
                        path="src/repro/serving/deploy.py")) == 1


def test_snapshot_health_gate_ignores_unrelated_constructors():
    diags = run_rule(
        SnapshotHealthGateRule,
        """
        from somewhere.other import RolloutController

        controller = RolloutController()
        """,
        path="src/repro/cli.py",
    )
    assert diags == []
