"""Incremental cache: replay correctness, invalidation, and the speed
contract (warm re-run over an unchanged tree is at least 5x faster with
byte-identical reports)."""

import json
import time
from pathlib import Path

from repro.lint.cache import AnalysisCache, CACHE_FORMAT_VERSION, content_hash
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules
from repro.lint.reporters import format_json, format_text


def _file_rule_ids() -> list[str]:
    return [cls.id for cls in all_rules() if cls.scope == "file"]


def _module_body(index: int, defs: int = 50) -> str:
    lines = [f'__all__ = ["f{index}_0"]', ""]
    for j in range(defs):
        lines += [f"def f{index}_{j}(x, y):",
                  f"    total = x + y + {j}",
                  "    return total",
                  ""]
    return "\n".join(lines)


def make_tree(root: Path, files: int = 30) -> Path:
    pkg = root / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    for index in range(files):
        (pkg / f"mod_{index:02d}.py").write_text(_module_body(index))
    # Two findings in different files plus one suppressed finding, so the
    # identity checks cover diagnostics and suppression replay, not just
    # the all-clean path.
    (pkg / "dirty_a.py").write_text(
        '__all__ = ["collect"]\n\ndef collect(item, bucket=[]):\n    return bucket\n')
    (pkg / "dirty_b.py").write_text(
        '__all__ = ["swallow"]\n\ndef swallow(fn):\n    try:\n        return fn()\n'
        "    except:\n        return None\n")
    (pkg / "hushed.py").write_text(
        '__all__ = ["grow"]\n\n'
        "def grow(item, acc=[]):  # cosmolint: disable=mutable-default\n"
        "    return acc\n")
    return root


def test_warm_run_is_5x_faster_and_byte_identical(tmp_path):
    tree = make_tree(tmp_path / "gen")
    cache_path = tmp_path / "cache.json"
    ids = _file_rule_ids()

    start = time.perf_counter()
    cold = lint_paths([tree], cache=AnalysisCache(cache_path, ids))
    cold_seconds = time.perf_counter() - start

    warm_seconds = float("inf")
    warm = None
    for _ in range(2):  # best-of-two warm timing to dodge scheduler noise
        start = time.perf_counter()
        warm = lint_paths([tree], cache=AnalysisCache(cache_path, ids))
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    assert cold.cache_hits == 0
    assert cold.cache_misses == 34  # 30 generated + init + 3 special files
    assert warm.cache_hits == 34
    assert warm.cache_misses == 0

    # Reports are byte-identical regardless of cache state.
    assert format_json(cold) == format_json(warm)
    assert format_text(cold) == format_text(warm)
    assert [d.rule for d in cold.diagnostics] == ["mutable-default", "overbroad-except"]
    assert cold.suppressed == warm.suppressed == 1

    assert cold_seconds >= 5 * warm_seconds, (
        f"warm run not 5x faster: cold={cold_seconds:.3f}s warm={warm_seconds:.3f}s")


def test_cached_summaries_still_feed_project_rules(tmp_path):
    # A cross-module violation must survive cache replay: the warm run
    # never parses the tree, yet phase two sees the same summaries.
    root = tmp_path / "gen"
    core = root / "repro" / "core"
    serving = root / "repro" / "serving"
    core.mkdir(parents=True)
    serving.mkdir(parents=True)
    for pkg in (root / "repro", core, serving):
        (pkg / "__init__.py").write_text("")
    (core / "pipeline.py").write_text("from repro.serving.cluster import Cluster\n")
    (serving / "cluster.py").write_text("class Cluster:\n    pass\n")

    cache_path = tmp_path / "cache.json"
    cold = lint_paths([root], select={"layering"},
                      cache=AnalysisCache(cache_path, []))
    warm = lint_paths([root], select={"layering"},
                      cache=AnalysisCache(cache_path, []))
    assert warm.cache_misses == 0 and warm.cache_hits == 5
    assert [d.rule for d in warm.diagnostics] == ["layering"]
    assert format_json(cold) == format_json(warm)


def test_editing_one_file_invalidates_only_that_entry(tmp_path):
    tree = make_tree(tmp_path / "gen", files=10)
    cache_path = tmp_path / "cache.json"
    ids = _file_rule_ids()
    cold = lint_paths([tree], cache=AnalysisCache(cache_path, ids))

    target = tree / "pkg" / "mod_03.py"
    target.write_text(target.read_text() + "\n\ndef extra(x, y=[]):\n    return y\n")
    warm = lint_paths([tree], cache=AnalysisCache(cache_path, ids))
    assert warm.cache_misses == 1
    assert warm.cache_hits == cold.files_checked - 1
    assert any(d.rule == "mutable-default" and d.path.endswith("mod_03.py")
               for d in warm.diagnostics)


def test_rule_selection_changes_the_signature(tmp_path):
    tree = make_tree(tmp_path / "gen", files=4)
    cache_path = tmp_path / "cache.json"
    ids = _file_rule_ids()
    lint_paths([tree], cache=AnalysisCache(cache_path, ids))
    narrowed = lint_paths([tree], cache=AnalysisCache(cache_path, ids[:-1]))
    assert narrowed.cache_hits == 0  # different effective rule set: cold start


def test_corrupt_cache_file_starts_cold(tmp_path):
    tree = make_tree(tmp_path / "gen", files=4)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    result = lint_paths([tree], cache=AnalysisCache(cache_path, _file_rule_ids()))
    assert result.cache_hits == 0
    assert result.cache_misses == result.files_checked
    # The broken file was replaced by a valid cache.
    payload = json.loads(cache_path.read_text())
    assert payload["format"] == CACHE_FORMAT_VERSION
    assert len(payload["entries"]) == result.files_checked


def test_init_hash_folds_in_sibling_modules(tmp_path):
    # all-consistency verdicts for __init__.py depend on which sibling
    # modules exist, so adding a module must invalidate the init entry
    # even though its bytes are unchanged.
    tree = make_tree(tmp_path / "gen", files=3)
    (tree / "pkg" / "__init__.py").write_text('__all__ = ["mod_99"]\n')
    cache_path = tmp_path / "cache.json"
    ids = _file_rule_ids()
    cold = lint_paths([tree], cache=AnalysisCache(cache_path, ids))
    assert any(d.rule == "all-consistency" and "mod_99" in d.message
               for d in cold.diagnostics)

    (tree / "pkg" / "mod_99.py").write_text('__all__ = ["x"]\nx = 1\n')
    warm = lint_paths([tree], cache=AnalysisCache(cache_path, ids))
    # Both the new module and the __init__.py re-ran.
    assert warm.cache_misses == 2
    assert not any(d.rule == "all-consistency" for d in warm.diagnostics)


def test_content_hash_is_stable_and_order_sensitive():
    assert content_hash("x = 1\n") == content_hash("x = 1\n")
    assert content_hash("x = 1\n") != content_hash("x = 2\n")
    assert content_hash("x = 1\n", ("a", "b")) != content_hash("x = 1\n", ("b", "a"))
    assert content_hash("x = 1\n", ("ab",)) != content_hash("x = 1\n", ("a", "b"))
