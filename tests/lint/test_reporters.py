"""Reporter contract: exact JSON payload for a fixture package with one
violation of every rule, plus the human-readable format."""

import json
import textwrap

import pytest

from repro.lint import lint_paths
from repro.lint.engine import LintResult
from repro.lint.diagnostics import Diagnostic
from repro.lint.reporters import REPORT_VERSION, format_json, format_text


@pytest.fixture
def fixture_package(tmp_path):
    """A temp-dir package tripping each rule exactly once."""
    pkg = tmp_path / "proj"
    serving = pkg / "serving"
    serving.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (serving / "__init__.py").write_text("")

    def module(path, body):
        path.write_text(textwrap.dedent(body).lstrip())

    module(pkg / "rngmod.py", """
        __all__ = ["make_rng"]
        import numpy as np

        def make_rng():
            return np.random.default_rng(7)
        """)
    module(serving / "clocked.py", """
        __all__ = ["stamp"]
        import time

        def stamp():
            return time.time()
        """)
    module(pkg / "metrics.py", """
        __all__ = ["is_perfect"]

        def is_perfect(score):
            return score == 1.0
        """)
    module(pkg / "defaults.py", """
        __all__ = ["collect"]

        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
        """)
    module(pkg / "excepts.py", """
        __all__ = ["swallow"]

        def swallow(fn):
            try:
                return fn()
            except:
                return None
        """)
    module(pkg / "allmod.py", """
        def exported():
            return 1
        """)
    module(pkg / "gateless.py", """
        __all__ = ["deploy"]
        from repro.refresh import RolloutController

        def deploy(cluster, store, green, evaluator):
            return RolloutController(cluster, store, green, evaluator)
        """)
    module(pkg / "snapmod.py", """
        __all__ = ["forge"]
        from repro.refresh import KgSnapshot

        def forge(manifest):
            return KgSnapshot(manifest, {}, ())
        """)
    module(serving / "caller.py", """
        __all__ = ["fetch"]

        def fetch(generator, prompt):
            return generator.generate_knowledge([prompt])
        """)
    module(serving / "printer.py", """
        __all__ = ["announce"]

        def announce(replica):
            print("draining", replica)
        """)
    module(serving / "tagger.py", """
        __all__ = ["tag"]

        def tag(tracer, tid):
            with tracer.span("serve", trace_id=tid):
                return tid
        """)
    return pkg


def test_json_reporter_exact_payload(fixture_package):
    result = lint_paths([fixture_package])
    payload = json.loads(format_json(result))

    assert payload["version"] == REPORT_VERSION
    assert payload["files_checked"] == 13
    assert payload["suppressed"] == 0
    assert payload["baselined"] == 0
    assert payload["diagnostics"] == [
        {
            "rule": "all-consistency",
            "path": str(fixture_package / "allmod.py"),
            "line": 1,
            "col": 1,
            "message": "public module defines no __all__; declare its export list",
        },
        {
            "rule": "mutable-default",
            "path": str(fixture_package / "defaults.py"),
            "line": 3,
            "col": 26,
            "message": (
                "mutable default argument is shared across calls; default to "
                "None (or use dataclasses.field(default_factory=...))"
            ),
        },
        {
            "rule": "overbroad-except",
            "path": str(fixture_package / "excepts.py"),
            "line": 6,
            "col": 5,
            "message": (
                "bare except catches everything including KeyboardInterrupt; "
                "catch the specific fault types instead"
            ),
        },
        {
            "rule": "snapshot-health-gate",
            "path": str(fixture_package / "gateless.py"),
            "line": 5,
            "col": 12,
            "message": (
                "RolloutController constructed without a quality_gate; "
                "pass a repro.refresh.SnapshotQualityGate so drifted "
                "knowledge is blocked before promotion"
            ),
        },
        {
            "rule": "float-equality",
            "path": str(fixture_package / "metrics.py"),
            "line": 4,
            "col": 21,
            "message": (
                "float equality comparison is unstable under rounding; use "
                "math.isclose or an explicit tolerance"
            ),
        },
        {
            "rule": "unscoped-rng",
            "path": str(fixture_package / "rngmod.py"),
            "line": 5,
            "col": 12,
            "message": (
                "call to numpy.random.default_rng bypasses the seed+scope "
                "discipline; derive streams via "
                "repro.utils.rng.spawn_rng(seed, scope=...)"
            ),
        },
        {
            "rule": "batch-entrypoint-only",
            "path": str(fixture_package / "serving" / "caller.py"),
            "line": 4,
            "col": 12,
            "message": (
                "per-item .generate_knowledge() call in a serving module; "
                "route generator work through generate_batch() so the "
                "flush/window is charged one amortized batch, not per-item "
                "latency"
            ),
        },
        {
            "rule": "wall-clock",
            "path": str(fixture_package / "serving" / "clocked.py"),
            "line": 5,
            "col": 12,
            "message": (
                "call to time.time reads the wall clock; time must come from "
                "a simulated clock (only obs/timebase.py may read real time)"
            ),
        },
        {
            "rule": "event-log-only",
            "path": str(fixture_package / "serving" / "printer.py"),
            "line": 4,
            "col": 5,
            "message": (
                "print() in a serving module bypasses the structured event "
                "log; emit via obs.events.EventLog so alerts can correlate it"
            ),
        },
        {
            "rule": "trace-id-contract",
            "path": str(fixture_package / "serving" / "tagger.py"),
            "line": 4,
            "col": 10,
            "message": (
                "ad-hoc trace-id attribute 'trace_id' on span(); trace ids "
                "flow via Tracer.attach / EventLog.trace_scope under the "
                "sanctioned obs.tracing.TRACE_ID_ATTR key"
            ),
        },
        {
            "rule": "snapshot-builder-only",
            "path": str(fixture_package / "snapmod.py"),
            "line": 5,
            "col": 12,
            "message": (
                "direct KgSnapshot construction bypasses the content-"
                "addressed builder; create snapshots with "
                "repro.refresh.build_snapshot so the version id stays a "
                "trustworthy checksum"
            ),
        },
    ]


def test_every_file_scope_rule_fires_exactly_once(fixture_package):
    """Project-scope rules need a repro-shaped tree; they are exercised in
    test_project.py. Every *file*-scope rule trips exactly once here."""
    from repro.lint.registry import file_rules

    result = lint_paths([fixture_package])
    fired = sorted(d.rule for d in result.diagnostics)
    assert fired == sorted(rule.id for rule in file_rules())


def test_text_reporter_lines_and_summary(fixture_package):
    result = lint_paths([fixture_package])
    text = format_text(result)
    lines = text.splitlines()
    assert lines[-1] == "11 problems in 13 files (0 suppressed)"
    assert f"{fixture_package / 'allmod.py'}:1:1: [all-consistency] " in lines[0]
    assert all(":" in line for line in lines[:-1])


def test_text_reporter_clean_summary():
    result = LintResult(files_checked=3, suppressed=2)
    assert format_text(result.finalize()) == "ok: 3 files, 0 problems (2 suppressed)"


def test_json_reporter_is_stable_and_parseable():
    result = LintResult(
        diagnostics=[Diagnostic("unscoped-rng", "a.py", 1, 1, "m")],
        files_checked=1,
    )
    first = format_json(result.finalize())
    assert first == format_json(result)
    assert json.loads(first)["diagnostics"][0]["rule"] == "unscoped-rng"
