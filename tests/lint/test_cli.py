"""cosmolint CLI contract: exit codes, rule listing, select/ignore."""

import json

import pytest

from repro.lint.cli import main
from repro.lint.registry import rule_ids


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "__all__ = ['make']\n"
        "import numpy as np\n\n"
        "def make():\n"
        "    return np.random.default_rng(3)\n"
    )
    return pkg


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("__all__ = ['x']\nx = 1\n")
    assert main([str(clean)]) == 0
    assert "0 problems" in capsys.readouterr().out


def test_exit_one_with_correct_rule_and_location(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert f"{dirty_tree / 'mod.py'}:5:12: [unscoped-rng]" in out


def test_json_format_flag(dirty_tree, capsys):
    assert main(["--format", "json", str(dirty_tree)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["diagnostics"][0]["rule"] == "unscoped-rng"
    assert payload["diagnostics"][0]["line"] == 5


def test_select_and_ignore(dirty_tree):
    assert main(["--select", "wall-clock", str(dirty_tree)]) == 0
    assert main(["--ignore", "unscoped-rng", str(dirty_tree)]) == 0
    assert main(["--select", "unscoped-rng", str(dirty_tree)]) == 1


def test_unknown_rule_id_is_a_usage_error(dirty_tree):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "no-such-rule", str(dirty_tree)])
    assert excinfo.value.code == 2


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().out


def test_list_rules_names_the_contract_set(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out
    assert rule_ids() == [
        "all-consistency",
        "event-log-only",
        "float-equality",
        "mutable-default",
        "overbroad-except",
        "snapshot-builder-only",
        "unscoped-rng",
        "wall-clock",
    ]
