"""cosmolint CLI contract: exit codes, rule listing, select/ignore."""

import importlib
import json
import tomllib
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.registry import rule_ids


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "__all__ = ['make']\n"
        "import numpy as np\n\n"
        "def make():\n"
        "    return np.random.default_rng(3)\n"
    )
    return pkg


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("__all__ = ['x']\nx = 1\n")
    assert main([str(clean)]) == 0
    assert "0 problems" in capsys.readouterr().out


def test_exit_one_with_correct_rule_and_location(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert f"{dirty_tree / 'mod.py'}:5:12: [unscoped-rng]" in out


def test_json_format_flag(dirty_tree, capsys):
    assert main(["--format", "json", str(dirty_tree)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["diagnostics"][0]["rule"] == "unscoped-rng"
    assert payload["diagnostics"][0]["line"] == 5


def test_select_and_ignore(dirty_tree):
    assert main(["--select", "wall-clock", str(dirty_tree)]) == 0
    assert main(["--ignore", "unscoped-rng", str(dirty_tree)]) == 0
    assert main(["--select", "unscoped-rng", str(dirty_tree)]) == 1


def test_unknown_rule_id_is_a_usage_error(dirty_tree):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "no-such-rule", str(dirty_tree)])
    assert excinfo.value.code == 2


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().out


def test_list_rules_names_the_contract_set(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out
    assert rule_ids() == [
        "all-consistency",
        "batch-entrypoint-only",
        "clock-injection",
        "event-log-only",
        "float-equality",
        "import-cycle",
        "layering",
        "mutable-default",
        "overbroad-except",
        "registry-injection",
        "rng-provenance",
        "snapshot-builder-only",
        "snapshot-health-gate",
        "trace-id-contract",
        "unscoped-rng",
        "wall-clock",
    ]


def test_console_script_entry_point_resolves_and_runs(capsys):
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    entry = data["project"]["scripts"]["cosmolint"]
    module_name, _, attr = entry.partition(":")
    func = getattr(importlib.import_module(module_name), attr)
    assert func is main
    assert func(["--list-rules"]) == 0
    assert "layering" in capsys.readouterr().out


def test_list_rules_shows_scope_and_autofixable(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "layering [project]" in out
    assert "mutable-default [file, autofixable]" in out
    assert "unscoped-rng [file]" in out


def test_cache_stats_on_stderr_stdout_byte_identical(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text('__all__ = ["x"]\nx = 1\n')
    cache = tmp_path / "cache.json"
    argv = ["--cache", str(cache), "--cache-stats", str(target)]

    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "cosmolint cache: 0 hit(s), 1 miss(es)" in cold.err

    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "cosmolint cache: 1 hit(s), 0 miss(es)" in warm.err
    assert warm.out == cold.out  # reports identical regardless of cache state
