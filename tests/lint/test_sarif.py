"""SARIF 2.1.0 reporter: schema-valid output, exact payload pinning,
suppression semantics, and the structural validator's own teeth."""

import copy
import json

import pytest

from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.registry import rule_ids
from repro.lint.sarif import (
    SARIF_VERSION,
    format_sarif,
    sarif_log,
    validate_sarif,
)

_VIOLATION = (
    '__all__ = ["make"]\n'
    "import numpy as np\n"
    "\n"
    "def make():\n"
    "    return np.random.default_rng(7)\n"
)


@pytest.fixture
def dirty_file(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    target = pkg / "mod.py"
    target.write_text(_VIOLATION)
    return target


def test_emitted_log_validates(dirty_file):
    log = sarif_log(lint_paths([dirty_file]))
    assert validate_sarif(log) is log


def test_result_payload_is_pinned(dirty_file):
    log = sarif_log(lint_paths([dirty_file]))
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "cosmolint"
    assert [rule["id"] for rule in driver["rules"]] == rule_ids()

    assert len(run["results"]) == 1
    result = run["results"][0]
    rule_index = rule_ids().index("unscoped-rng")
    assert result == {
        "ruleId": "unscoped-rng",
        "ruleIndex": rule_index,
        "level": "error",
        "message": {
            "text": (
                "call to numpy.random.default_rng bypasses the seed+scope "
                "discipline; derive streams via "
                "repro.utils.rng.spawn_rng(seed, scope=...)"
            )
        },
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": str(dirty_file).replace("\\", "/")},
                    "region": {"startLine": 5, "startColumn": 12},
                }
            }
        ],
    }
    assert run["properties"] == {"filesChecked": 1, "suppressed": 0, "baselined": 0}


def test_rule_descriptors_carry_scope_and_autofixable(dirty_file):
    log = sarif_log(lint_paths([dirty_file]))
    by_id = {rule["id"]: rule for rule in log["runs"][0]["tool"]["driver"]["rules"]}
    assert by_id["layering"]["properties"] == {"scope": "project", "autofixable": False}
    assert by_id["mutable-default"]["properties"] == {
        "scope": "file", "autofixable": True}


def test_suppressed_diagnostic_is_absent_but_counted(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "\n"
        "def make():\n"
        "    return np.random.default_rng(7)  # cosmolint: disable=unscoped-rng\n"
    )
    log = sarif_log(lint_paths([target]))
    validate_sarif(log)
    run = log["runs"][0]
    assert run["results"] == []
    assert run["properties"]["suppressed"] == 1


def test_syntax_error_gets_a_synthetic_descriptor(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    log = sarif_log(lint_paths([target]))
    validate_sarif(log)
    run = log["runs"][0]
    assert run["results"][0]["ruleId"] == "syntax-error"
    descriptor = run["tool"]["driver"]["rules"][run["results"][0]["ruleIndex"]]
    assert descriptor["id"] == "syntax-error"


def test_format_sarif_is_deterministic(dirty_file):
    first = format_sarif(lint_paths([dirty_file]))
    second = format_sarif(lint_paths([dirty_file]))
    assert first == second
    assert json.loads(first)["version"] == SARIF_VERSION


def test_cli_sarif_output_validates(dirty_file, capsys):
    assert main(["--sarif", "--no-cache", str(dirty_file)]) == 1
    payload = json.loads(capsys.readouterr().out)
    validate_sarif(payload)
    assert payload["runs"][0]["results"][0]["ruleId"] == "unscoped-rng"


def test_cli_sarif_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text('__all__ = ["x"]\nx = 1\n')
    assert main(["--format", "sarif", "--no-cache", str(clean)]) == 0
    payload = json.loads(capsys.readouterr().out)
    validate_sarif(payload)
    assert payload["runs"][0]["results"] == []


@pytest.fixture
def valid_log(dirty_file):
    return sarif_log(lint_paths([dirty_file]))


def _corrupted(log, mutate):
    broken = copy.deepcopy(log)
    mutate(broken)
    return broken


def test_validator_rejects_wrong_version(valid_log):
    broken = _corrupted(valid_log, lambda log: log.update(version="2.0.0"))
    with pytest.raises(ValueError, match="version"):
        validate_sarif(broken)


def test_validator_rejects_mismatched_rule_index(valid_log):
    def mutate(log):
        log["runs"][0]["results"][0]["ruleIndex"] += 1

    with pytest.raises(ValueError, match="ruleIndex"):
        validate_sarif(_corrupted(valid_log, mutate))


def test_validator_rejects_unknown_rule_id(valid_log):
    def mutate(log):
        log["runs"][0]["results"][0]["ruleId"] = "no-such-rule"

    with pytest.raises(ValueError, match="no-such-rule"):
        validate_sarif(_corrupted(valid_log, mutate))


def test_validator_rejects_missing_location(valid_log):
    def mutate(log):
        log["runs"][0]["results"][0]["locations"] = []

    with pytest.raises(ValueError, match="location"):
        validate_sarif(_corrupted(valid_log, mutate))


def test_validator_rejects_bad_level(valid_log):
    def mutate(log):
        log["runs"][0]["results"][0]["level"] = "fatal"

    with pytest.raises(ValueError, match="level"):
        validate_sarif(_corrupted(valid_log, mutate))
