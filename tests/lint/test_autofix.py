"""Autofixer (--fix): exact rewrites, safety skips, and the idempotence
guarantee (fixing already-fixed source is always a no-op)."""

import pytest

from repro.lint.autofix import FIXABLE_RULES, fix_paths, fix_source
from repro.lint.cli import main
from repro.lint.engine import lint_source


def test_fixable_rules_match_registry_flags():
    from repro.lint.registry import all_rules

    flagged = sorted(cls.id for cls in all_rules() if cls.autofixable)
    assert flagged == sorted(FIXABLE_RULES)


# ---------------------------------------------------------------------------
# mutable-default


def test_mutable_default_list_rewrite():
    source = "def collect(item, bucket=[]):\n    return bucket\n"
    fixed, count = fix_source(source)
    assert count == 1
    assert fixed == (
        "def collect(item, bucket=None):\n"
        "    if bucket is None:\n"
        "        bucket = []\n"
        "    return bucket\n"
    )
    assert not lint_source(fixed).diagnostics


def test_mutable_default_guard_goes_after_docstring():
    source = (
        "def collect(item, bucket=[]):\n"
        '    """Gather items."""\n'
        "    return bucket\n"
    )
    fixed, count = fix_source(source)
    assert count == 1
    assert fixed == (
        "def collect(item, bucket=None):\n"
        '    """Gather items."""\n'
        "    if bucket is None:\n"
        "        bucket = []\n"
        "    return bucket\n"
    )


def test_mutable_default_annotation_widened():
    source = "def f(x: list[int] = []):\n    return x\n"
    fixed, count = fix_source(source)
    assert count == 1
    assert fixed == (
        "def f(x: list[int] | None = None):\n"
        "    if x is None:\n"
        "        x = []\n"
        "    return x\n"
    )


def test_mutable_default_optional_annotation_untouched():
    source = "def f(x: list | None = []):\n    return x\n"
    fixed, count = fix_source(source)
    assert count == 1
    assert fixed.startswith("def f(x: list | None = None):\n")


def test_mutable_default_kwonly_and_call_defaults():
    source = "def f(*, acc=dict()):\n    return acc\n"
    fixed, count = fix_source(source)
    assert count == 1
    assert fixed == (
        "def f(*, acc=None):\n"
        "    if acc is None:\n"
        "        acc = dict()\n"
        "    return acc\n"
    )


def test_mutable_default_same_line_body_is_skipped():
    source = "def f(x=[]): return x\n"
    fixed, count = fix_source(source)
    assert count == 0
    assert fixed == source


def test_mutable_default_suppressed_site_is_skipped():
    source = ("def f(x=[]):  # cosmolint: disable=mutable-default\n"
              "    return x\n")
    fixed, count = fix_source(source)
    assert count == 0
    assert fixed == source


def test_multiple_defaults_in_one_signature():
    source = "def f(a=[], b={}):\n    return a, b\n"
    fixed, count = fix_source(source)
    assert count == 2
    assert fixed == (
        "def f(a=None, b=None):\n"
        "    if a is None:\n"
        "        a = []\n"
        "    if b is None:\n"
        "        b = {}\n"
        "    return a, b\n"
    )


# ---------------------------------------------------------------------------
# float-equality (path-scoped to metrics/reporting code)


def test_float_equality_rewrite_adds_math_import():
    source = "def ok(v):\n    return v == 0.5\n"
    fixed, count = fix_source(source, display_path="pkg/metrics.py")
    assert count == 1
    assert fixed == (
        "import math\n"
        "def ok(v):\n"
        "    return math.isclose(v, 0.5)\n"
    )
    assert not lint_source(fixed, display_path="pkg/metrics.py").diagnostics


def test_float_inequality_becomes_not_isclose():
    source = "import math\n\ndef bad(v):\n    return v != 1.0\n"
    fixed, count = fix_source(source, display_path="pkg/metrics.py")
    assert count == 1
    assert fixed.endswith("    return not math.isclose(v, 1.0)\n")
    assert fixed.count("import math") == 1


def test_float_equality_reuses_math_alias():
    source = "import math as m\n\ndef bad(v):\n    return v == 2.5\n"
    fixed, count = fix_source(source, display_path="pkg/metrics.py")
    assert count == 1
    assert "m.isclose(v, 2.5)" in fixed
    assert "import math\n" not in fixed


def test_float_equality_outside_metrics_paths_untouched():
    source = "def ok(v):\n    return v == 0.5\n"
    fixed, count = fix_source(source, display_path="pkg/server.py")
    assert count == 0
    assert fixed == source


def test_chained_comparison_is_skipped():
    source = "def ok(v, w):\n    return 0.0 == v == w\n"
    fixed, count = fix_source(source, display_path="pkg/metrics.py")
    assert count == 0
    assert fixed == source


def test_nested_comparisons_converge_via_fixpoint():
    # The inner comparison overlaps the outer one's span; the fixpoint
    # loop repairs both across passes without corrupting either.
    source = "def weird(v, w):\n    return (v == 0.5) == (w == 1.5)\n"
    fixed, count = fix_source(source, display_path="pkg/metrics.py")
    assert count >= 2
    assert "math.isclose(v, 0.5)" in fixed
    assert "math.isclose(w, 1.5)" in fixed
    again, more = fix_source(fixed, display_path="pkg/metrics.py")
    assert more == 0 and again == fixed


def test_select_limits_the_fixes():
    source = ("def f(x=[]):\n"
              "    return x == 0.5\n")
    fixed, count = fix_source(source, display_path="pkg/metrics.py",
                              select=["float-equality"])
    assert count == 1
    assert "x=[]" in fixed  # mutable-default untouched
    assert "math.isclose(x, 0.5)" in fixed


def test_syntax_error_source_is_returned_unchanged():
    source = "def broken(:\n"
    fixed, count = fix_source(source)
    assert count == 0
    assert fixed == source


# ---------------------------------------------------------------------------
# idempotence: fix(fix(x)) == fix(x), pinned across every fixture shape


@pytest.mark.parametrize("source,path", [
    ("def collect(item, bucket=[]):\n    return bucket\n", "a.py"),
    ("def f(x: dict = {}, *, y=set()):\n    return x, y\n", "a.py"),
    ("def ok(v):\n    return v == 0.5 or v != 1.5\n", "pkg/metrics.py"),
    ("def mix(v, acc=[]):\n    return acc, v == 0.25\n", "pkg/metrics.py"),
    ("class C:\n    def m(self, xs=[]):\n        '''doc'''\n        return xs\n", "a.py"),
])
def test_fix_is_idempotent(source, path):
    once, first = fix_source(source, display_path=path)
    assert first > 0
    twice, second = fix_source(once, display_path=path)
    assert second == 0
    assert twice == once


# ---------------------------------------------------------------------------
# fix_paths and the CLI


def test_fix_paths_rewrites_files_in_place(tmp_path):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    clean = tmp_path / "ok.py"
    clean.write_text("def g(x):\n    return x\n")
    report = fix_paths([tmp_path])
    assert report.files_changed == 1
    assert report.fixes == 1
    assert report.changed_paths == [str(dirty)]
    assert "if x is None:" in dirty.read_text()
    assert clean.read_text() == "def g(x):\n    return x\n"


def test_cli_fix_then_lint_exits_clean(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert main(["--fix", "--no-cache", str(dirty)]) == 0
    captured = capsys.readouterr()
    assert "fixed 1 finding(s) in 1 file(s)" in captured.err
    assert "0 problems" in captured.out

    # Second --fix run: nothing left to do, file untouched.
    fixed_text = dirty.read_text()
    assert main(["--fix", "--no-cache", str(dirty)]) == 0
    assert "fixed 0 finding(s) in 0 file(s)" in capsys.readouterr().err
    assert dirty.read_text() == fixed_text
