"""Isolation for cosmolint tests.

The CLI writes an incremental cache and auto-loads a baseline from the
working directory, so every lint test runs chdir'd into its own tmp dir —
invoking ``main()`` here can never touch the real repo's cache or pick up
its checked-in ``lint-baseline.json``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
