"""Query generation and the specificity service."""

import numpy as np

from repro.catalog.queries import render_broad_query
from repro.core.relations import TailType
from repro.utils.rng import spawn_rng


def test_query_population_split(world):
    broad = [q for q in world.queries.all() if q.breadth == "broad"]
    specific = [q for q in world.queries.all() if q.breadth == "specific"]
    per_domain = world.config.broad_queries_per_domain
    assert len(broad) == 18 * per_domain
    assert len(specific) == 18 * world.config.specific_queries_per_domain


def test_broad_queries_carry_intents_specific_carry_types(world):
    for query in world.queries.all()[:200]:
        if query.breadth == "broad":
            assert query.intent_id is not None and query.product_type is None
            assert query.intent_id in world.intents
        else:
            assert query.product_type is not None and query.intent_id is None


def test_broad_query_text_mentions_intent_tail(world):
    for query in world.queries.broad()[:50]:
        tail = world.intents.get(query.intent_id).tail
        assert tail in query.text


def test_specificity_specific_queries_score_one(world):
    specific = [q for q in world.queries.all() if q.breadth == "specific"]
    for query in specific[:30]:
        assert world.specificity.score(query) == 1.0


def test_specificity_broad_at_most_specific(world):
    broad_scores = [world.specificity.score(q) for q in world.queries.broad()]
    # Broad queries match several product types on average.
    assert np.mean(broad_scores) < 1.0
    assert all(0.0 <= s <= 1.0 for s in broad_scores)


def test_matching_types_for_broad_query(world):
    query = world.queries.broad()[0]
    types = world.specificity.matching_types(query)
    serving = {p.product_type for p in world.catalog.serving_intent(query.intent_id)}
    assert types == serving


def test_render_broad_query_contains_tail():
    rng = spawn_rng(0, "render")
    for tail_type in (TailType.ACTIVITY, TailType.AUDIENCE, TailType.FUNCTION):
        text = render_broad_query(tail_type, "sample tail", rng)
        assert "sample tail" in text
