"""Domain registry invariants."""

import pytest

from repro.catalog import DOMAIN_NAMES, all_domains, get_domain
from repro.core.relations import TailType


def test_exactly_eighteen_domains():
    assert len(DOMAIN_NAMES) == 18
    assert len(all_domains()) == 18


def test_table3_names_present():
    for name in ("Clothing, Shoes & Jewelry", "Electronics", "Pet Supplies", "Others"):
        assert name in DOMAIN_NAMES


def test_get_domain_roundtrip_and_error():
    domain = get_domain("Electronics")
    assert domain.name == "Electronics"
    with pytest.raises(KeyError):
        get_domain("Nonexistent Category")


def test_every_domain_has_products_and_core_intent_banks():
    for domain in all_domains():
        assert len(domain.product_types) >= 8
        assert domain.tail_phrases(TailType.FUNCTION)
        assert domain.tail_phrases(TailType.ACTIVITY)
        assert domain.tail_phrases(TailType.AUDIENCE)


def test_concept_tails_are_the_product_types():
    domain = get_domain("Sports & Outdoors")
    assert domain.tail_phrases(TailType.CONCEPT) == domain.product_types


def test_tail_phrases_unknown_bank_is_empty():
    domain = get_domain("Toys & Games")
    # Toys has no body-part bank in the vocab.
    assert domain.tail_phrases(TailType.BODY_PART) == ()
