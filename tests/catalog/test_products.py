"""Product catalog generation invariants."""

from repro.behavior.intents import IntentSpace
from repro.catalog import build_catalog


def test_catalog_size_and_domains(world):
    assert len(world.catalog) == 18 * world.config.products_per_domain
    assert len({p.domain for p in world.catalog.all()}) == 18


def test_indexes_are_consistent(world):
    for product in world.catalog.all()[:200]:
        assert world.catalog.get(product.product_id) is product
        assert product in world.catalog.for_domain(product.domain)
        assert product in world.catalog.for_type(product.domain, product.product_type)
        for intent_id in product.intent_ids:
            assert product in world.catalog.serving_intent(intent_id)


def test_titles_contain_brand_and_type(world):
    for product in world.catalog.all()[:50]:
        assert product.title.startswith(product.brand)
        assert product.title.endswith(product.product_type)


def test_products_reference_valid_domain_intents(world):
    for product in world.catalog.all()[:200]:
        for intent_id in product.intent_ids:
            intent = world.intents.get(intent_id)
            assert intent.domain == product.domain


def test_every_intent_served_by_multiple_types():
    intents = IntentSpace(seed=5)
    catalog = build_catalog(intents, products_per_domain=48, seed=5)
    # The intent→type fanout guarantees breadth for broad queries.
    multi_type = 0
    total = 0
    for intent in intents.all():
        serving = catalog.serving_intent(intent.intent_id)
        if not serving:
            continue
        total += 1
        if len({p.product_type for p in serving}) >= 2:
            multi_type += 1
    assert total > 0
    assert multi_type / total > 0.5


def test_popularity_is_positive_and_heavy_tailed(world):
    popularity = [p.popularity for p in world.catalog.all()]
    assert min(popularity) > 0
    top = sorted(popularity, reverse=True)
    # Pareto-ish: top decile holds a disproportionate share.
    share = sum(top[: len(top) // 10]) / sum(top)
    assert share > 0.3


def test_determinism_same_seed():
    intents = IntentSpace(seed=3)
    first = build_catalog(intents, products_per_domain=12, seed=3)
    second = build_catalog(intents, products_per_domain=12, seed=3)
    for a, b in zip(first.all(), second.all()):
        assert a == b
