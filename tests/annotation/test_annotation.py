"""Annotation simulator: protocol, noise, audit."""

import pytest

from repro.annotation import (
    QUESTIONS,
    TRUTH_TABLE,
    AnnotatorPool,
    audit_annotations,
)


def test_truth_table_covers_all_questions():
    for quality, answers in TRUTH_TABLE.items():
        assert set(answers) == set(QUESTIONS)


def test_typical_requires_plausible_in_truth_table():
    for quality, answers in TRUTH_TABLE.items():
        if answers["typical"]:
            assert answers["plausible"], quality


def test_zero_noise_reproduces_truth():
    pool = AnnotatorPool(error_rate=0.0, adjudicator_error_rate=0.0, seed=1)
    for quality, truth in TRUTH_TABLE.items():
        result = pool.annotate(f"c-{quality}", quality)
        assert result.answers == truth
        assert not result.needed_adjudication
    assert pool.total_adjudications == 0


def test_result_properties_reflect_answers():
    pool = AnnotatorPool(error_rate=0.0, seed=1)
    typical = pool.annotate("c1", "typical")
    generic = pool.annotate("c2", "generic")
    assert typical.plausible and typical.typical
    assert generic.plausible and not generic.typical


def test_noise_triggers_adjudication():
    pool = AnnotatorPool(error_rate=0.3, adjudicator_error_rate=0.0, seed=2)
    results = pool.annotate_batch([(f"c{i}", "typical") for i in range(100)])
    assert pool.total_adjudications > 0
    assert any(r.needed_adjudication for r in results)
    assert 0.0 < pool.disagreement_rate < 1.0


def test_judgment_accounting():
    pool = AnnotatorPool(error_rate=0.0, seed=3)
    pool.annotate("c", "plausible")
    # Two annotators × five questions, zero adjudications.
    assert pool.total_judgments == 10


def test_adjudicator_usually_recovers_truth():
    pool = AnnotatorPool(error_rate=0.5, adjudicator_error_rate=0.0, seed=4)
    correct = 0
    n = 200
    for index in range(n):
        result = pool.annotate(f"c{index}", "typical")
        correct += int(result.answers["typical"])
    # With one annotator pair at 50% error, the adjudicator resolves
    # most disagreements correctly; accuracy well above a coin flip.
    assert correct / n > 0.6


def test_audit_accuracy_perfect_with_zero_noise():
    pool = AnnotatorPool(error_rate=0.0, seed=5)
    items = [(f"c{i}", "generic") for i in range(50)]
    results = pool.annotate_batch(items)
    report = audit_annotations(results, dict(items), sample_rate=0.2, seed=5)
    assert report.accuracy == 1.0
    assert report.sampled == 10


def test_audit_detects_noise():
    pool = AnnotatorPool(error_rate=0.4, adjudicator_error_rate=0.4, seed=6)
    items = [(f"c{i}", "typical") for i in range(100)]
    results = pool.annotate_batch(items)
    report = audit_annotations(results, dict(items), sample_rate=0.5, seed=6)
    assert report.accuracy < 1.0


def test_audit_empty_results():
    report = audit_annotations([], {}, seed=0)
    assert report.accuracy == 1.0
    assert report.sampled == 0


def test_paper_scale_audit_accuracy_above_90_percent():
    # Default noise levels must reproduce the paper's ">90% accuracy".
    pool = AnnotatorPool(seed=7)
    items = [(f"c{i}", quality) for i, quality in
             enumerate(list(TRUTH_TABLE) * 30)]
    results = pool.annotate_batch(items)
    report = audit_annotations(results, dict(items), sample_rate=0.3, seed=7)
    assert report.accuracy > 0.9
