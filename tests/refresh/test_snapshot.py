"""Content-addressed snapshots: versioning, immutability, lineage store."""

import pytest

from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.refresh import KgSnapshot, SnapshotManifest, SnapshotStore, build_snapshot


def _triple(tail="camping", support=1):
    return KnowledgeTriple(
        head="camping tent", relation=Relation.USED_FOR_FUNC, tail=tail,
        domain="Sports & Outdoors", behavior="search-buy",
        plausibility=0.9, typicality=0.8, support=support,
    )


# -- content addressing ----------------------------------------------------
def test_same_content_same_version():
    a = build_snapshot({"q": "it is used for camping."}, [_triple()])
    b = build_snapshot({"q": "it is used for camping."}, [_triple()])
    assert a.version == b.version
    assert a.manifest.checksum == b.manifest.checksum


def test_any_content_difference_changes_version():
    base = build_snapshot({"q": "answer."})
    entry_diff = build_snapshot({"q": "other answer."})
    triple_diff = build_snapshot({"q": "answer."}, [_triple()])
    support_diff = build_snapshot({"q": "answer."}, [_triple(support=2)])
    versions = {base.version, entry_diff.version, triple_diff.version,
                support_diff.version}
    assert len(versions) == 4


def test_parent_version_is_part_of_identity():
    root = build_snapshot({"q": "answer."})
    child = build_snapshot({"q": "answer."}, parent=root)
    assert child.version != root.version
    assert child.parent == root.version


def test_note_is_not_hashed():
    plain = build_snapshot({"q": "answer."})
    noted = build_snapshot({"q": "answer."}, note="annotated after the fact")
    assert plain.version == noted.version
    assert noted.manifest.note == "annotated after the fact"


def test_version_format_and_manifest_counts():
    snap = build_snapshot({"a": "x.", "b": "y."}, [_triple()])
    assert snap.version.startswith("v-")
    assert len(snap.version) == 14  # "v-" + 12 hex chars
    assert snap.manifest.entry_count == 2
    assert snap.manifest.triple_count == 1
    assert len(snap) == 2


# -- immutability ----------------------------------------------------------
def test_direct_construction_requires_builder_token():
    manifest = SnapshotManifest(version="v-0", parent=None, checksum="0",
                                entry_count=0, triple_count=0)
    with pytest.raises(TypeError, match="build_snapshot"):
        KgSnapshot(manifest, {}, ())


def test_entries_view_is_read_only():
    snap = build_snapshot({"q": "answer."})
    with pytest.raises(TypeError):
        snap.entries["q"] = "tampered."  # type: ignore[index]


def test_entries_copied_from_caller_mapping():
    source = {"q": "answer."}
    snap = build_snapshot(source)
    source["q"] = "mutated."
    assert snap.entries["q"] == "answer."


# -- store -----------------------------------------------------------------
def test_store_add_get_and_lineage():
    root = build_snapshot({"q": "old."})
    child = build_snapshot({"q": "new."}, parent=root)
    store = SnapshotStore()
    store.add(root)
    store.add(child)
    assert store.get(child.version) is child
    assert store.parent_of(child.version) is root
    assert store.parent_of(root.version) is None
    assert child.version in store
    assert store.versions() == [root.version, child.version]
    assert len(store) == 2


def test_store_readd_is_noop_and_returns_existing():
    snap = build_snapshot({"q": "answer."})
    twin = build_snapshot({"q": "answer."})
    store = SnapshotStore()
    assert store.add(snap) is snap
    assert store.add(twin) is snap  # same version → same content
    assert len(store) == 1


def test_store_rejects_orphan_lineage():
    root = build_snapshot({"q": "old."})
    child = build_snapshot({"q": "new."}, parent=root)
    store = SnapshotStore()
    with pytest.raises(KeyError, match="oldest-first"):
        store.add(child)


def test_store_unknown_version_raises():
    with pytest.raises(KeyError, match="unknown snapshot"):
        SnapshotStore().get("v-missing")
