"""Snapshot quality gate: health adapter, edge identity, gate verdicts."""

import pytest

from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.obs import MetricsRegistry
from repro.refresh import (
    SnapshotQualityGate,
    SnapshotStore,
    build_snapshot,
    edge_keys,
    snapshot_health,
)

_MIX = (Relation.USED_FOR_FUNC, Relation.CAPABLE_OF, Relation.USED_TO,
        Relation.USED_FOR_AUD)


def _triples(count, offset=0, relations=_MIX, plausibility=0.8):
    return [
        KnowledgeTriple(
            head=f"query {k % 7:02d}",
            relation=relations[k % len(relations)],
            tail=f"intent {k % 11:02d}",
            domain=("Apparel", "Electronics")[k % 2],
            behavior="search-buy" if k % 3 else "co-buy",
            plausibility=plausibility,
            typicality=0.6,
            support=1 + k % 3,
        )
        for k in range(offset, offset + count)
    ]


def _entries(tag, count=12):
    return {f"query {i:02d}": f"it is used for query {i:02d} ({tag})."
            for i in range(count)}


def test_snapshot_health_carries_lineage_and_entry_count():
    blue = build_snapshot(_entries("blue"), triples=_triples(20), note="blue")
    green = build_snapshot(_entries("green"), triples=_triples(24),
                           parent=blue, note="green")
    health = snapshot_health(green)
    assert health.version == green.version
    assert health.parent == blue.version
    assert health.entries == len(green)
    assert health.triples == len({t.key for t in green.triples})
    assert sum(health.relation_edges.values()) == health.triples


def test_edge_keys_ignore_scores_and_support():
    base = _triples(10)
    rescored = [
        KnowledgeTriple(head=t.head, relation=t.relation, tail=t.tail,
                        domain=t.domain, behavior=t.behavior,
                        plausibility=t.plausibility / 2,
                        typicality=t.typicality / 2, support=t.support + 5)
        for t in base
    ]
    a = build_snapshot(_entries("a"), triples=base)
    b = build_snapshot(_entries("b"), triples=rescored)
    assert edge_keys(a) == edge_keys(b)
    assert edge_keys(a) == {(t.head, t.relation.value, t.tail) for t in base}


def test_root_snapshot_promotes_without_drift():
    store = SnapshotStore()
    root = build_snapshot(_entries("root"), triples=_triples(20))
    store.add(root)
    gate = SnapshotQualityGate(store)
    decision = gate.assess(root)
    assert decision.promote
    assert decision.breaches == ()
    assert decision.drift is None and decision.parent_health is None


def test_unregistered_parent_promotes_trivially():
    # The store enforces oldest-first lineage on add(); a candidate can
    # still be assessed before registration, when its parent is unknown.
    store = SnapshotStore()
    blue = build_snapshot(_entries("blue"), triples=_triples(20))
    green = build_snapshot(_entries("green"), triples=_triples(20),
                           parent=blue)
    decision = SnapshotQualityGate(store).assess(green)
    assert decision.promote and decision.drift is None


def test_healthy_child_promotes_with_drift_report():
    store = SnapshotStore()
    blue = build_snapshot(_entries("blue"), triples=_triples(40))
    green = build_snapshot(_entries("green"),
                           triples=_triples(40) + _triples(6, offset=40),
                           parent=blue)
    store.add(blue)
    store.add(green)
    gate = SnapshotQualityGate(store)
    decision = gate.assess(green)
    assert decision.promote
    assert decision.drift is not None and decision.drift.ok
    assert decision.drift.metrics["added_edge_rate"] > 0.0
    assert decision.drift.metrics["removed_edge_rate"] == 0.0
    assert decision.parent_health is not None
    assert decision.parent_health.version == blue.version


def test_poisoned_child_blocks_with_readable_breaches():
    store = SnapshotStore()
    blue = build_snapshot(_entries("blue"), triples=_triples(40))
    poisoned = build_snapshot(
        _entries("green"),
        triples=_triples(40, relations=(Relation.IS_A,), plausibility=0.05),
        parent=blue,
    )
    store.add(blue)
    store.add(poisoned)
    decision = SnapshotQualityGate(store).assess(poisoned)
    assert not decision.promote
    assert decision.breaches  # human-readable "rule: metric=v > t" strings
    assert any(b.startswith("relation-mix-shift:") for b in decision.breaches)
    assert any("plausibility" in b for b in decision.breaches)


def test_assessments_are_cached_by_version():
    store = SnapshotStore()
    blue = build_snapshot(_entries("blue"), triples=_triples(20))
    green = build_snapshot(_entries("green"), triples=_triples(22),
                           parent=blue)
    store.add(blue)
    store.add(green)
    gate = SnapshotQualityGate(store)
    first = gate.assess(green)
    assert gate.assess(green) is first            # decision cached
    assert gate.health_of(green) is first.health  # health cached
    assert [d.version for d in gate.decisions] == [green.version]


def test_registry_receives_health_gauges_once_per_snapshot():
    store = SnapshotStore()
    registry = MetricsRegistry()
    blue = build_snapshot(_entries("blue"), triples=_triples(20))
    green = build_snapshot(_entries("green"), triples=_triples(24),
                           parent=blue)
    store.add(blue)
    store.add(green)
    gate = SnapshotQualityGate(store, registry=registry)
    gate.assess(green)
    versions = {labels["version"]
                for labels, _ in registry.get("kg_health_triples").samples()}
    assert versions == {blue.version, green.version}


def test_custom_rules_override_defaults():
    store = SnapshotStore()
    blue = build_snapshot(_entries("blue"), triples=_triples(40))
    poisoned = build_snapshot(
        _entries("green"),
        triples=_triples(40, relations=(Relation.IS_A,), plausibility=0.05),
        parent=blue,
    )
    store.add(blue)
    store.add(poisoned)
    gate = SnapshotQualityGate(store, rules=())  # gate with no rules at all
    assert gate.rules == ()
    assert gate.assess(poisoned).promote
