"""Incremental refresh rounds: lineage, budget deferral, determinism."""

import pytest

from repro.core.filtering import KnowledgeFilter
from repro.embeddings import TextEncoder
from repro.llm import TeacherLLM
from repro.refresh import KnowledgeRefresher, RefreshConfig, build_snapshot


@pytest.fixture(scope="module")
def refresh_env(pipeline_result):
    """Trained filter + critic from the shared tiny pipeline run."""
    world = pipeline_result.world
    return {
        "world": world,
        "teacher": TeacherLLM(world, seed=5),
        "filter": KnowledgeFilter(TextEncoder(seed=5)),
        "critic": pipeline_result.critic,
        "samples": pipeline_result.samples,
    }


def _refresher(env, **config_kwargs):
    return KnowledgeRefresher(
        env["world"], env["teacher"], env["filter"], env["critic"],
        config=RefreshConfig(seed=5, **config_kwargs),
    )


def test_round_extends_parent_lineage_and_accounting(refresh_env):
    parent = build_snapshot({"existing query": "it is used for camping."})
    refresher = _refresher(refresh_env)
    child, report = refresher.refresh(parent, refresh_env["samples"][:20])

    assert child.parent == parent.version
    assert report.parent_version == parent.version
    assert report.version == child.version
    assert report.samples_in == report.samples_processed == 20
    assert report.samples_deferred == 0
    assert report.llm_calls == 20 * refresher.config.candidates_per_sample
    assert report.candidates >= report.survivors >= report.kept >= 0
    # Parent entries survive unless the round regenerated them.
    assert child.entries["existing query"] == "it is used for camping."
    assert len(child.entries) <= len(parent.entries) + report.new_entries
    assert len(child.entries) >= len(parent.entries)
    assert len(child.triples) == len(parent.triples) + report.new_triples


def test_budget_defers_overflow_to_next_round(refresh_env):
    parent = build_snapshot({})
    refresher = _refresher(refresh_env, llm_call_budget=15,
                           candidates_per_sample=3)  # 5 samples per round
    samples = refresh_env["samples"][:12]

    first, report1 = refresher.refresh(parent, samples)
    assert report1.samples_processed == 5
    assert report1.samples_deferred == 7
    assert report1.llm_calls <= 15
    assert refresher.deferred == samples[5:]

    # Deferred samples clear before new arrivals.
    _, report2 = refresher.refresh(first, samples[12:12])
    assert report2.samples_in == 7
    assert report2.samples_processed == 5
    assert report2.samples_deferred == 2


def test_rounds_are_deterministic(refresh_env):
    parent = build_snapshot({})
    samples = refresh_env["samples"][:15]
    versions = []
    for _ in range(2):
        env = dict(refresh_env,
                   teacher=TeacherLLM(refresh_env["world"], seed=5))
        child, _ = _refresher(env).refresh(parent, samples)
        versions.append(child.version)
    assert versions[0] == versions[1]


def test_round_counter_advances_version_even_on_same_batch(refresh_env):
    """Round index feeds the generation seed: re-running the same batch
    in a later round may legitimately differ, and the rounds counter
    advances regardless of outcome."""
    parent = build_snapshot({})
    refresher = _refresher(refresh_env)
    refresher.refresh(parent, refresh_env["samples"][:5])
    refresher.refresh(parent, refresh_env["samples"][:5])
    assert refresher.rounds == 2


def test_config_validation():
    with pytest.raises(ValueError, match="candidates_per_sample"):
        RefreshConfig(candidates_per_sample=0)
    with pytest.raises(ValueError, match="llm_call_budget"):
        RefreshConfig(llm_call_budget=0)
