"""Blue/green rollout: healthy completion, SLO-guarded rollback, guards."""

import numpy as np
import pytest

from repro.obs import EventLog, MetricsRegistry, SloEvaluator, TimeSeriesCollector
from repro.refresh import (
    RolloutController,
    RolloutState,
    SnapshotGenerator,
    SnapshotStore,
    build_snapshot,
    mixed_version_violation,
    rollout_slo_specs,
)
from repro.serving import ClusterConfig, CosmoCluster
from repro.utils.rng import spawn_rng

SCRAPE_S = 0.5
ARRIVAL_S = 0.005
QUERIES = [f"query {i:03d}" for i in range(40)]


def _scripted_ok(text):
    return bool(text.strip()) and text.rstrip().endswith(".")


def _snapshots(poisoned=False):
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in QUERIES},
                          note="blue baseline")
    green_entries = ({} if poisoned
                     else {q: f"it is used for {q} (green)." for q in QUERIES})
    green = build_snapshot(green_entries, parent=blue, note="green refresh")
    return blue, green


def _rig(n_replicas=2, poisoned=False, name="rolltest"):
    blue, green = _snapshots(poisoned=poisoned)
    store = SnapshotStore()
    store.add(blue)
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    cluster = CosmoCluster(
        lambda i: SnapshotGenerator(blue),
        config=ClusterConfig(n_replicas=n_replicas, max_batch_size=8,
                             max_batch_delay_s=0.25, seed=3, name=name),
        registry=registry, event_log=event_log,
        response_validator=_scripted_ok,
    )
    cluster.install_snapshot(blue)
    evaluator = SloEvaluator(registry, rollout_slo_specs(SCRAPE_S),
                             event_log=event_log)
    collector = TimeSeriesCollector(registry, interval_s=SCRAPE_S)
    controller = RolloutController(cluster, store, green, evaluator)
    return cluster, store, blue, green, evaluator, collector, controller


def _drive(cluster, evaluator, collector, controller, store,
           n_requests, rolling=True, seed=3):
    rng = spawn_rng(seed, "rollout-test-traffic")
    weights = 1.0 / np.arange(1, len(QUERIES) + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(len(QUERIES), size=n_requests, p=weights)
    violations = 0
    for pick in picks:
        result = cluster.handle(QUERIES[int(pick)])
        if mixed_version_violation(store, cluster, result):
            violations += 1
        cluster.clock.advance(ARRIVAL_S)
        for ts in collector.maybe_scrape(cluster.clock.now()):
            evaluator.evaluate(ts)
            if rolling and not controller.done:
                controller.tick(ts)
    return violations


# -- healthy rollout -------------------------------------------------------
def test_healthy_rollout_completes_one_step_per_tick():
    cluster, store, blue, green, evaluator, collector, controller = _rig()
    _drive(cluster, evaluator, collector, controller, store, 300, rolling=False)
    violations = _drive(cluster, evaluator, collector, controller, store, 900)

    report = controller.report()
    assert controller.state is RolloutState.COMPLETE
    assert report.state == "complete"
    assert not report.rolled_back
    # drain → swap → restore per replica, in router order.
    expected = [f"{step}:{rid}" for rid in cluster.router.replicas
                for step in ("drain", "swap", "restore")]
    assert list(report.steps) == expected
    assert set(cluster.snapshot_versions().values()) == {green.version}
    assert violations == 0
    assert not evaluator.any_fired

    totals = cluster.metrics_totals()
    assert (totals["served_fresh"] + totals["degraded_serves"]
            + totals["fallbacks"] == totals["requests"] == 1200)

    kinds = [e.kind for e in cluster.event_log.events()]
    assert "rollout.start" in kinds
    assert "rollout.complete" in kinds
    assert "rollout.rollback_start" not in kinds
    assert kinds.count("rollout.swap") == len(cluster.router.replicas)


def test_tick_after_done_is_a_noop():
    cluster, store, _, _, evaluator, collector, controller = _rig()
    _drive(cluster, evaluator, collector, controller, store, 900)
    assert controller.done
    steps_before = list(controller.report().steps)
    assert controller.tick(cluster.clock.now()) is None
    assert list(controller.report().steps) == steps_before


# -- poisoned rollout ------------------------------------------------------
def test_poisoned_rollout_rolls_back_to_parent_and_redrives():
    cluster, store, blue, green, evaluator, collector, controller = _rig(
        poisoned=True)
    _drive(cluster, evaluator, collector, controller, store, 300, rolling=False)
    violations = _drive(cluster, evaluator, collector, controller, store, 900)

    report = controller.report()
    assert controller.state is RolloutState.ROLLED_BACK
    assert report.rolled_back
    assert report.steps[-1] == "rollback"
    assert report.rollback_objective in ("availability", "latency-p99")
    assert report.rollback_alert
    assert report.redriven > 0
    # Every replica is back on the parent and nothing stays drained.
    assert set(cluster.snapshot_versions().values()) == {blue.version}
    assert all(not cluster.router.is_drained(rid)
               for rid in cluster.router.replicas)
    assert violations == 0

    totals = cluster.metrics_totals()
    assert (totals["served_fresh"] + totals["degraded_serves"]
            + totals["fallbacks"] == totals["requests"] == 1200)

    kinds = [e.kind for e in cluster.event_log.events()]
    assert "rollout.rollback_start" in kinds
    assert "rollout.rollback_complete" in kinds
    assert "rollout.complete" not in kinds


def test_rollback_heals_service_after_redrive():
    cluster, store, blue, _, evaluator, collector, controller = _rig(
        poisoned=True)
    _drive(cluster, evaluator, collector, controller, store, 300, rolling=False)
    _drive(cluster, evaluator, collector, controller, store, 900)
    assert controller.state is RolloutState.ROLLED_BACK
    cluster.flush()
    assert sum(len(s.dead_letters) for s in cluster.services.values()) == 0
    result = cluster.handle(QUERIES[0])
    assert result.text == blue.entries[QUERIES[0]]


# -- constructor guards ----------------------------------------------------
def test_target_without_parent_is_rejected():
    blue, _ = _snapshots()
    store = SnapshotStore()
    cluster = CosmoCluster(lambda i: SnapshotGenerator(blue),
                           config=ClusterConfig(n_replicas=2, seed=3,
                                                name="noparent"))
    registry = MetricsRegistry()
    evaluator = SloEvaluator(registry, rollout_slo_specs(SCRAPE_S))
    with pytest.raises(ValueError, match="no parent"):
        RolloutController(cluster, store, blue, evaluator)


def test_unknown_guarded_objective_is_rejected():
    blue, green = _snapshots()
    store = SnapshotStore()
    store.add(blue)
    cluster = CosmoCluster(lambda i: SnapshotGenerator(blue),
                           config=ClusterConfig(n_replicas=2, seed=3,
                                                name="badguard"))
    registry = MetricsRegistry()
    evaluator = SloEvaluator(registry, rollout_slo_specs(SCRAPE_S))
    with pytest.raises(ValueError, match="not in evaluator"):
        RolloutController(cluster, store, green, evaluator,
                          guarded=("availability", "error-budget-typo"))


# -- snapshot generator ----------------------------------------------------
def test_snapshot_generator_answers_from_snapshot_or_fails_loudly():
    blue, green = _snapshots()
    generator = SnapshotGenerator(blue)
    known, unknown = generator.generate_knowledge([QUERIES[0], "never seen"])
    assert known.text == blue.entries[QUERIES[0]]
    assert unknown.text == ""  # validator rejects → loud failure
    assert known.latency_s > 0.0
    generator.set_snapshot(green)
    assert generator.generate_knowledge([QUERIES[0]])[0].text \
        == green.entries[QUERIES[0]]


# -- mixed-version detector ------------------------------------------------
def test_mixed_version_violation_flags_cross_version_cache_leak():
    from repro.serving.api import ServeOutcome, ServeResult

    blue, green = _snapshots()
    store = SnapshotStore()
    store.add(blue)
    store.add(green)
    cluster = CosmoCluster(lambda i: SnapshotGenerator(blue),
                           config=ClusterConfig(n_replicas=1, seed=3,
                                                name="leak"))
    cluster.install_snapshot(green)
    replica = cluster.router.replicas[0]

    def result(text, outcome=ServeOutcome.FRESH, source="cache:yearly"):
        return ServeResult(query=QUERIES[0], text=text, outcome=outcome,
                           source=source, latency_s=0.001, replica=replica)

    # Serving blue text while authoritative on green = leak.
    assert mixed_version_violation(store, cluster, result(
        blue.entries[QUERIES[0]]))
    # Serving the authoritative version's own text is fine.
    assert not mixed_version_violation(store, cluster, result(
        green.entries[QUERIES[0]]))
    # Degraded serves are exempt (known-stale is the contract)...
    assert not mixed_version_violation(store, cluster, result(
        blue.entries[QUERIES[0]], outcome=ServeOutcome.DEGRADED))
    # ...and so are non-cache sources and texts no snapshot owns.
    assert not mixed_version_violation(store, cluster, result(
        blue.entries[QUERIES[0]], source="direct"))
    assert not mixed_version_violation(store, cluster, result(
        "free-form text from nowhere."))
