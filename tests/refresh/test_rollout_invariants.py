"""Property: rollout + chaos never breaks cluster accounting.

Whatever interleaving of traffic, scrape ticks, rollout steps, fault-plan
toggles and rollbacks hypothesis finds, every request the cluster accepts
is exactly one of fresh / degraded / fallback, nothing is double-counted,
no replica is left drained, and dead letters are conserved (every one is
either still queued or was re-driven).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EventLog, MetricsRegistry, SloEvaluator, TimeSeriesCollector
from repro.refresh import (
    RolloutController,
    RolloutState,
    SnapshotGenerator,
    SnapshotStore,
    build_snapshot,
    rollout_slo_specs,
)
from repro.serving import ClusterConfig, CosmoCluster, FaultInjector, FaultPlan
from repro.serving.chaos import FlakyGenerator
from repro.utils.rng import spawn_rng

SCRAPE_S = 0.5
QUERIES = [f"query {i:03d}" for i in range(24)]


def _scripted_ok(text):
    return bool(text.strip()) and text.rstrip().endswith(".")


@st.composite
def rollout_schedules(draw):
    """Ops interleaving traffic with fault-plan flips; the scrape grid
    (and therefore rollout stepping) advances implicitly with time."""
    ops = []
    for _ in range(draw(st.integers(30, 120))):
        kind = draw(st.sampled_from(
            ["request"] * 6 + ["plan", "gap", "flush"]))
        if kind == "request":
            ops.append((kind, draw(st.integers(0, len(QUERIES) - 1))))
        elif kind == "plan":
            ops.append((kind, draw(st.floats(0.0, 1.0))))
        elif kind == "gap":
            ops.append((kind, draw(st.floats(0.01, 1.5))))
        else:
            ops.append((kind, None))
    return ops


@given(rollout_schedules(), st.booleans(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_accounting_and_dead_letter_conservation_under_chaos(
        ops, poisoned, seed):
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in QUERIES})
    green_entries = ({} if poisoned
                     else {q: f"it is used for {q} (green)." for q in QUERIES})
    green = build_snapshot(green_entries, parent=blue)
    store = SnapshotStore()
    store.add(blue)

    injectors = {}

    def factory(index):
        injector = FaultInjector(FaultPlan(), seed=seed + index)
        injectors[index] = injector
        return FlakyGenerator(SnapshotGenerator(blue), injector)

    registry = MetricsRegistry()
    cluster = CosmoCluster(
        factory,
        config=ClusterConfig(n_replicas=2, max_batch_size=8,
                             max_batch_delay_s=0.25, seed=seed % 101,
                             name="chaosroll"),
        registry=registry, event_log=EventLog(registry=registry),
        response_validator=_scripted_ok,
    )
    cluster.install_snapshot(blue)
    evaluator = SloEvaluator(registry, rollout_slo_specs(SCRAPE_S))
    collector = TimeSeriesCollector(registry, interval_s=SCRAPE_S)
    controller = RolloutController(cluster, store, green, evaluator)

    rng = spawn_rng(seed, "chaos-arrivals")
    requests = 0
    redriven_total = 0
    for kind, arg in ops:
        if kind == "request":
            cluster.handle(QUERIES[arg])
            requests += 1
            cluster.clock.advance(float(rng.uniform(0.001, 0.02)))
        elif kind == "plan":
            for injector in injectors.values():
                injector.plan = FaultPlan.mixed(arg)
        elif kind == "gap":
            cluster.clock.advance(arg)
        elif kind == "flush":
            cluster.flush()
        for ts in collector.maybe_scrape(cluster.clock.now()):
            evaluator.evaluate(ts)
            if not controller.done:
                controller.tick(ts)
    for injector in injectors.values():
        injector.plan = FaultPlan()
    cluster.flush()
    redriven_total = controller.redriven

    totals = cluster.metrics_totals()
    # Exactly-once accounting survives faults, swaps and rollbacks.
    assert (totals["served_fresh"] + totals["degraded_serves"]
            + totals["fallbacks"] == totals["requests"])
    assert totals["requests"] == totals["handled"] == requests

    # Dead letters are conserved: everything ever dead-lettered is still
    # queued, or was re-driven (by the rollback or a later redrive).
    dead_lettered = sum(s.metrics.dead_lettered
                        for s in cluster.services.values())
    queued = sum(len(s.dead_letters) for s in cluster.services.values())
    redriven_metric = sum(s.metrics.redriven
                          for s in cluster.services.values())
    assert queued <= dead_lettered
    assert redriven_metric >= redriven_total

    # The rollout ends in a legal terminal or in-flight state and never
    # leaves a replica drained once done.
    assert controller.state in (RolloutState.IDLE, RolloutState.ROLLING,
                                RolloutState.COMPLETE,
                                RolloutState.ROLLED_BACK)
    if controller.state is RolloutState.COMPLETE:
        assert set(cluster.snapshot_versions().values()) == {green.version}
    if controller.state is RolloutState.ROLLED_BACK:
        assert set(cluster.snapshot_versions().values()) == {blue.version}
        assert all(not cluster.router.is_drained(rid)
                   for rid in cluster.router.replicas)
