"""Quality-gated rollouts: gate pass, pre-rollout block, mid-rollout flip."""

from dataclasses import dataclass, field

import numpy as np

from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.obs import EventLog, MetricsRegistry, SloEvaluator, TimeSeriesCollector
from repro.refresh import (
    RolloutController,
    RolloutState,
    SnapshotGenerator,
    SnapshotQualityGate,
    SnapshotStore,
    build_snapshot,
    rollout_slo_specs,
)
from repro.serving import ClusterConfig, CosmoCluster
from repro.utils.rng import spawn_rng

SCRAPE_S = 0.5
ARRIVAL_S = 0.005
QUERIES = [f"query {i:03d}" for i in range(40)]
_MIX = (Relation.USED_FOR_FUNC, Relation.CAPABLE_OF, Relation.USED_TO,
        Relation.USED_FOR_AUD)


def _scripted_ok(text):
    return bool(text.strip()) and text.rstrip().endswith(".")


def _triples(count, offset=0, relations=_MIX, plausibility=0.8):
    return [
        KnowledgeTriple(
            head=QUERIES[k % len(QUERIES)],
            relation=relations[k % len(relations)],
            tail=f"intent {k % 11:02d}",
            domain="Apparel",
            behavior="search-buy",
            plausibility=plausibility,
            typicality=0.6,
        )
        for k in range(offset, offset + count)
    ]


def _snapshots(poisoned=False):
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in QUERIES},
                          triples=_triples(60), note="blue baseline")
    entries = {q: f"it is used for {q} (green)." for q in QUERIES}
    if poisoned:
        # Serves every query perfectly — only the knowledge drifted.
        triples = _triples(60, relations=(Relation.IS_A,), plausibility=0.05)
    else:
        triples = _triples(60) + _triples(8, offset=60)
    green = build_snapshot(entries, triples=triples, parent=blue,
                           note="green refresh")
    return blue, green


def _rig(poisoned=False, gate=None, name="gatetest"):
    blue, green = _snapshots(poisoned=poisoned)
    store = SnapshotStore()
    store.add(blue)
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    cluster = CosmoCluster(
        lambda i: SnapshotGenerator(blue),
        config=ClusterConfig(n_replicas=2, max_batch_size=8,
                             max_batch_delay_s=0.25, seed=3, name=name),
        registry=registry, event_log=event_log,
        response_validator=_scripted_ok,
    )
    cluster.install_snapshot(blue)
    evaluator = SloEvaluator(registry, rollout_slo_specs(SCRAPE_S),
                             event_log=event_log)
    collector = TimeSeriesCollector(registry, interval_s=SCRAPE_S)
    if gate is None:
        gate = SnapshotQualityGate(store, registry=registry)
    controller = RolloutController(cluster, store, green, evaluator,
                                   quality_gate=gate)
    return cluster, store, blue, green, evaluator, collector, controller


def _drive(cluster, evaluator, collector, controller, n_requests,
           rolling=True, seed=3):
    rng = spawn_rng(seed, "rollout-gate-traffic")
    weights = 1.0 / np.arange(1, len(QUERIES) + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(len(QUERIES), size=n_requests, p=weights)
    for pick in picks:
        cluster.handle(QUERIES[int(pick)])
        cluster.clock.advance(ARRIVAL_S)
        for ts in collector.maybe_scrape(cluster.clock.now()):
            evaluator.evaluate(ts)
            if rolling and not controller.done:
                controller.tick(ts)


def test_passing_gate_completes_and_emits_gate_pass():
    cluster, store, blue, green, evaluator, collector, controller = _rig()
    _drive(cluster, evaluator, collector, controller, 300, rolling=False)
    _drive(cluster, evaluator, collector, controller, 900)

    report = controller.report()
    assert controller.state is RolloutState.COMPLETE
    assert report.gate_promote and not report.blocked
    assert report.gate_breaches == ()
    assert set(cluster.snapshot_versions().values()) == {green.version}

    kinds = [e.kind for e in cluster.event_log.events()]
    assert kinds.count("rollout.gate_pass") == 1  # edge-triggered, not per tick
    assert "rollout.gate_block" not in kinds
    assert "rollout.start" in kinds and "rollout.complete" in kinds


def test_blocking_gate_refuses_before_first_step():
    cluster, store, blue, green, evaluator, collector, controller = _rig(
        poisoned=True)
    _drive(cluster, evaluator, collector, controller, 300, rolling=False)
    _drive(cluster, evaluator, collector, controller, 900)

    report = controller.report()
    assert controller.state is RolloutState.BLOCKED
    assert report.state == "blocked"
    assert report.blocked and not report.gate_promote
    assert report.gate_breaches  # named, human-readable
    assert list(report.steps) == ["gate-block"]  # no replica ever touched
    assert set(cluster.snapshot_versions().values()) == {blue.version}

    kinds = [e.kind for e in cluster.event_log.events()]
    assert "rollout.gate_block" in kinds
    assert "rollout.blocked" in kinds
    assert "rollout.start" not in kinds
    assert "rollout.swap" not in kinds
    # Blocked is terminal: further ticks are no-ops.
    assert controller.done
    assert controller.tick(cluster.clock.now()) is None


@dataclass
class _FlippingGate:
    """Stateful fake: promotes for the first N assessments, then blocks."""

    promote_ticks: int
    calls: int = 0
    decisions: list = field(default_factory=list)

    @dataclass(frozen=True)
    class _Decision:
        promote: bool
        breaches: tuple

    def assess(self, candidate):
        self.calls += 1
        if self.calls <= self.promote_ticks:
            decision = self._Decision(promote=True, breaches=())
        else:
            decision = self._Decision(
                promote=False,
                breaches=("relation-mix-shift: relation_js=1.0000 > 0.3500",))
        self.decisions.append(decision)
        return decision


def test_gate_flip_mid_rollout_triggers_same_tick_rollback():
    gate = _FlippingGate(promote_ticks=2)
    cluster, store, blue, green, evaluator, collector, controller = _rig(
        gate=gate)
    _drive(cluster, evaluator, collector, controller, 300, rolling=False)
    _drive(cluster, evaluator, collector, controller, 900)

    report = controller.report()
    assert controller.state is RolloutState.ROLLED_BACK
    assert report.rolled_back and not report.blocked
    assert report.rollback_objective == "knowledge-quality"
    assert report.rollback_alert.startswith("relation-mix-shift")
    # Two promoted ticks executed drain + swap, then the flip rolled back.
    assert report.steps[-1] == "rollback"
    assert set(cluster.snapshot_versions().values()) == {blue.version}

    kinds = [e.kind for e in cluster.event_log.events()]
    assert "rollout.gate_pass" in kinds
    assert "rollout.gate_block" in kinds
    assert "rollout.rollback_start" in kinds
    assert "rollout.rollback_complete" in kinds


def test_gateless_controller_still_works():
    blue, green = _snapshots()
    store = SnapshotStore()
    store.add(blue)
    registry = MetricsRegistry()
    cluster = CosmoCluster(
        lambda i: SnapshotGenerator(blue),
        config=ClusterConfig(n_replicas=2, max_batch_size=8,
                             max_batch_delay_s=0.25, seed=3, name="nogate"),
        registry=registry,
        response_validator=_scripted_ok,
    )
    cluster.install_snapshot(blue)
    evaluator = SloEvaluator(registry, rollout_slo_specs(SCRAPE_S))
    collector = TimeSeriesCollector(registry, interval_s=SCRAPE_S)
    controller = RolloutController(  # noqa: cosmolint exercises src only
        cluster, store, green, evaluator)
    _drive(cluster, evaluator, collector, controller, 900)
    report = controller.report()
    assert controller.state is RolloutState.COMPLETE
    assert report.gate_promote and report.gate_breaches == ()
