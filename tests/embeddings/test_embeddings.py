"""Embedding service: determinism, normalization, similarity semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import TextEncoder, cosine, cosine_matrix, hashed_bow
from repro.embeddings.hashing import hash_token


def test_hash_token_stable_and_salted():
    assert hash_token("camping", 1024) == hash_token("camping", 1024)
    assert hash_token("camping", 1024, salt="q") != hash_token("camping", 1024, salt="p") or True
    # Different salts *may* collide for one token but not for many:
    collisions = sum(
        hash_token(f"word{i}", 4096, salt="a") == hash_token(f"word{i}", 4096, salt="b")
        for i in range(200)
    )
    assert collisions < 10


def test_hashed_bow_unit_norm_and_deterministic():
    a = hashed_bow("winter camping gear")
    b = hashed_bow("winter camping gear")
    assert np.array_equal(a, b)
    assert np.linalg.norm(a) == pytest.approx(1.0)


def test_hashed_bow_empty_text_is_zero():
    assert np.linalg.norm(hashed_bow("")) == 0.0


def test_encoder_lexical_overlap_beats_disjoint():
    encoder = TextEncoder(seed=0)
    overlap = encoder.similarity("winter camping tent", "tent for winter camping")
    disjoint = encoder.similarity("winter camping tent", "acoustic guitar strings")
    assert overlap > disjoint
    assert overlap > 0.3


def test_encoder_identical_text_similarity_one():
    encoder = TextEncoder(seed=0)
    assert encoder.similarity("dog leash", "dog leash") == pytest.approx(1.0)


def test_encoder_batch_matches_single():
    encoder = TextEncoder(seed=0)
    batch = encoder.encode_batch(["a b", "c d"])
    assert np.allclose(batch[0], encoder.encode("a b"))
    assert batch.shape == (2, encoder.dim)
    assert encoder.encode_batch([]).shape == (0, encoder.dim)


def test_encoder_cache_returns_same_array():
    encoder = TextEncoder(seed=0)
    first = encoder.encode("cached text")
    second = encoder.encode("cached text")
    assert first is second


def test_cosine_helpers():
    a, b = np.array([1.0, 0.0]), np.array([0.0, 2.0])
    assert cosine(a, b) == 0.0
    assert cosine(a, a) == pytest.approx(1.0)
    assert cosine(a, np.zeros(2)) == 0.0
    matrix = cosine_matrix(np.stack([a, b]), np.stack([a, b]))
    assert np.allclose(np.diag(matrix), 1.0)


@given(st.text(alphabet="abcdef ", min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_encoder_output_unit_or_zero(text):
    encoder = TextEncoder(seed=1)
    norm = np.linalg.norm(encoder.encode(text))
    assert norm == pytest.approx(1.0) or norm == 0.0
