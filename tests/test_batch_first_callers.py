"""Static sweep: benchmarks and examples drive serving batch-first.

The api_redesign moved every in-repo driver onto ``serve_batch`` /
``handle_batch`` — a per-item ``serve``/``handle`` call inside a loop
re-creates exactly the per-request overhead the redesign amortized
away.  This scan walks ``benchmarks/`` and ``examples/`` and pins the
set of files still looping per-item to the three overhead
microbenchmarks whose *purpose* is measuring per-request cost.  The
allowlist is asserted exactly in both directions, so it cannot go
stale: a migrated file must leave it, a regressed file cannot hide in
it.
"""

import ast
import pathlib

_REPO = pathlib.Path(__file__).resolve().parents[1]
_SCANNED_DIRS = ("benchmarks", "examples")
_PER_ITEM_CALLS = {"serve", "handle"}
# Intentionally per-item: these measure per-request monitor/trace/rollout
# overhead, which an amortized batch would hide.
_ALLOWED_PER_ITEM = {
    "bench_monitor_overhead",
    "bench_rollout_staleness",
    "bench_trace_overhead",
}

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While,
               ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _has_per_item_loop(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if not isinstance(node, _LOOP_NODES):
            continue
        for inner in ast.walk(node):
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in _PER_ITEM_CALLS):
                return True
    return False


def _per_item_loop_files() -> set[str]:
    found = set()
    for directory in _SCANNED_DIRS:
        for path in sorted((_REPO / directory).glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            if _has_per_item_loop(tree):
                found.add(path.stem)
    return found

def test_scan_covers_real_files():
    for directory in _SCANNED_DIRS:
        assert list((_REPO / directory).glob("*.py")), f"{directory}/ is empty?"


def test_no_unapproved_per_item_serving_loops():
    found = _per_item_loop_files()
    regressed = found - _ALLOWED_PER_ITEM
    assert not regressed, (
        f"per-item .serve()/.handle() loop in {sorted(regressed)}; migrate "
        "to serve_batch()/handle_batch() (or, for a genuine per-request "
        "overhead microbenchmark, extend the allowlist with a rationale)")


def test_per_item_allowlist_is_exact():
    found = _per_item_loop_files()
    stale = _ALLOWED_PER_ITEM - found
    assert not stale, (
        f"allowlist entries {sorted(stale)} no longer loop per-item; "
        "drop them so the allowlist stays an honest inventory")
