"""Table renderer."""

import pytest

from repro.reporting import Table, format_float, format_percent


def test_formatters():
    assert format_float(3.14159, 2) == "3.14"
    assert format_percent(0.075) == "7.5%"


def test_table_renders_aligned_columns():
    table = Table("Demo", ["Method", "Score"])
    table.add_row("short", 1.0)
    table.add_row("a much longer method name", 2.5)
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "Demo"
    data_lines = [l for l in lines if "|" in l]
    widths = {len(line) for line in data_lines}
    assert len(widths) == 1  # all rows padded to equal width


def test_table_separator_rows():
    table = Table("T", ["A", "B"])
    table.add_row("x", "y")
    table.add_separator()
    table.add_row("z", "w")
    rendered = table.render()
    assert rendered.count("-+-") >= 2


def test_row_arity_checked():
    table = Table("T", ["A", "B"])
    with pytest.raises(ValueError):
        table.add_row("only one")
