"""Search-buy simulator invariants."""

from repro.behavior import simulate_searchbuy


def test_records_reference_valid_entities(world):
    log = simulate_searchbuy(world, records_per_domain=50, seed=5)
    for record in log.records[:300]:
        query = world.queries.get(record.query_id)
        assert query.domain == record.domain
        assert record.product_id in world.catalog


def test_purchases_never_exceed_clicks(world):
    log = simulate_searchbuy(world, records_per_domain=50, seed=5)
    for record in log.records:
        assert 1 <= record.purchases <= record.clicks


def test_purchase_rate_bounds(world):
    log = simulate_searchbuy(world, records_per_domain=50, seed=5)
    for record in log.records[:100]:
        rate = log.purchase_rate(record.query_id)
        assert 0.0 < rate <= 1.0


def test_intent_consistency_for_broad_queries(world):
    log = simulate_searchbuy(world, records_per_domain=60, noise_rate=0.0, seed=5)
    for record in log.records:
        query = world.queries.get(record.query_id)
        product = world.catalog.get(record.product_id)
        if query.breadth == "broad":
            assert record.intent_id == query.intent_id
            assert record.intent_id in product.intent_ids
        else:
            assert product.product_type == query.product_type


def test_noise_rate_produces_unexplained_records(world):
    noisy = simulate_searchbuy(world, records_per_domain=80, noise_rate=0.3, seed=5)
    clean = simulate_searchbuy(world, records_per_domain=80, noise_rate=0.0, seed=5)
    noisy_none = sum(r.intent_id is None for r in noisy.records) / len(noisy.records)
    clean_none = sum(r.intent_id is None for r in clean.records) / len(clean.records)
    assert noisy_none > clean_none


def test_engagement_aggregation(world):
    log = simulate_searchbuy(world, records_per_domain=40, seed=5)
    record = log.records[0]
    clicks, purchases = log.query_engagement(record.query_id)
    manual_clicks = sum(r.clicks for r in log.records if r.query_id == record.query_id)
    manual_purch = sum(r.purchases for r in log.records if r.query_id == record.query_id)
    assert clicks == manual_clicks
    assert purchases == manual_purch


def test_product_degree_counts_purchases(world):
    log = simulate_searchbuy(world, records_per_domain=40, seed=5)
    total = sum(log.product_degree(p.product_id) for p in world.catalog.all())
    assert total == sum(r.purchases for r in log.records)
