"""Property checks over ESCI generation parameters."""

import pytest

from repro.behavior import generate_esci
from repro.behavior.esci import LOCALE_SCALE, LOCALES


@pytest.mark.parametrize("locale", LOCALES)
def test_every_locale_generates_nonempty_valid_data(world, locale):
    dataset = generate_esci(world, locale=locale, pairs_per_query=3,
                            max_queries=30, seed=2)
    examples = dataset.train + dataset.test
    assert examples
    for example in examples[:50]:
        assert example.locale == locale
        assert example.label in ("Exact", "Substitute", "Complement", "Irrelevant")
        assert example.query_text and example.product_title


def test_test_fraction_controls_split(world):
    quarter = generate_esci(world, pairs_per_query=3, max_queries=60,
                            test_fraction=0.25, seed=2)
    half = generate_esci(world, pairs_per_query=3, max_queries=60,
                         test_fraction=0.5, seed=2)
    total_q = len(quarter.train) + len(quarter.test)
    total_h = len(half.train) + len(half.test)
    assert total_q == total_h
    assert len(half.test) > len(quarter.test)


def test_locale_scale_ordering_matches_table5(world):
    sizes = {}
    for locale in LOCALES:
        dataset = generate_esci(world, locale=locale, pairs_per_query=3, seed=2)
        sizes[locale] = len(dataset.train) + len(dataset.test)
    # Dataset sizes are ordered like the configured locale scales.
    ranked_measured = sorted(LOCALES, key=lambda l: sizes[l])
    ranked_config = sorted(LOCALES, key=lambda l: LOCALE_SCALE[l])
    assert ranked_measured[0] == ranked_config[0] == "CA"


def test_example_ids_unique(world):
    dataset = generate_esci(world, pairs_per_query=4, max_queries=50, seed=3)
    ids = [e.example_id for e in dataset.train + dataset.test]
    assert len(ids) == len(set(ids))
