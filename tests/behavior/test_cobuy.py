"""Co-buy simulator invariants."""

from repro.behavior import simulate_cobuy


def test_intentional_pairs_share_the_recorded_intent(world):
    log = simulate_cobuy(world, pairs_per_domain=40, seed=7)
    for pair in log.pairs:
        if pair.intent_id is None:
            continue
        product_a = world.catalog.get(pair.product_a)
        product_b = world.catalog.get(pair.product_b)
        assert pair.intent_id in product_a.intent_ids
        assert pair.intent_id in product_b.intent_ids
        assert product_a.product_type != product_b.product_type


def test_intentional_fraction_near_configured_rate(world):
    log = simulate_cobuy(world, pairs_per_domain=80, intentional_rate=0.8, seed=7)
    assert 0.65 <= log.intentional_fraction() <= 0.95


def test_degree_equals_sum_of_counts(world):
    log = simulate_cobuy(world, pairs_per_domain=30, seed=7)
    total_degree = sum(log.degree(p.product_id) for p in world.catalog.all())
    assert total_degree == 2 * sum(pair.count for pair in log.pairs)


def test_pairs_stay_within_domain(world):
    log = simulate_cobuy(world, pairs_per_domain=30, seed=7)
    for pair in log.pairs:
        assert world.catalog.get(pair.product_a).domain == pair.domain
        assert world.catalog.get(pair.product_b).domain == pair.domain


def test_counts_positive_and_for_domain_filter(world):
    log = simulate_cobuy(world, pairs_per_domain=30, seed=7)
    assert all(pair.count >= 1 for pair in log.pairs)
    electronics = log.for_domain("Electronics")
    assert electronics
    assert all(p.domain == "Electronics" for p in electronics)


def test_determinism(world):
    a = simulate_cobuy(world, pairs_per_domain=20, seed=9)
    b = simulate_cobuy(world, pairs_per_domain=20, seed=9)
    assert [p.pair_id for p in a.pairs] == [p.pair_id for p in b.pairs]
    assert [p.product_a for p in a.pairs] == [p.product_a for p in b.pairs]
