"""World assembly and configuration scaling."""

from repro.behavior import World, WorldConfig


def test_describe_counts(world):
    summary = world.describe()
    assert summary["products"] == len(world.catalog)
    assert summary["queries"] == len(world.queries)
    assert summary["intents"] == len(world.intents)


def test_scaled_config():
    base = WorldConfig(seed=1, products_per_domain=40,
                       broad_queries_per_domain=20, specific_queries_per_domain=20)
    half = base.scaled(0.5)
    assert half.products_per_domain == 20
    assert half.broad_queries_per_domain == 10
    assert half.seed == base.seed
    tiny = base.scaled(0.001)
    assert tiny.products_per_domain >= 1  # never collapses to zero


def test_world_determinism():
    a = World(WorldConfig(seed=5, products_per_domain=8,
                          broad_queries_per_domain=4, specific_queries_per_domain=4))
    b = World(WorldConfig(seed=5, products_per_domain=8,
                          broad_queries_per_domain=4, specific_queries_per_domain=4))
    assert [p.title for p in a.catalog.all()] == [p.title for p in b.catalog.all()]
    assert [q.text for q in a.queries.all()] == [q.text for q in b.queries.all()]


def test_different_seed_changes_world():
    a = World(WorldConfig(seed=5, products_per_domain=8,
                          broad_queries_per_domain=4, specific_queries_per_domain=4))
    b = World(WorldConfig(seed=6, products_per_domain=8,
                          broad_queries_per_domain=4, specific_queries_per_domain=4))
    assert [p.title for p in a.catalog.all()] != [p.title for p in b.catalog.all()]
