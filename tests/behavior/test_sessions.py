"""Session simulator: Table 7 shape and structural invariants."""

from repro.behavior import SessionConfig, simulate_sessions


def _log(world, **overrides):
    config = SessionConfig(domain="Electronics", n_sessions=150, **overrides)
    return simulate_sessions(world, config, seed=3)


def test_session_lengths_within_bounds(world):
    log = _log(world, mean_length=9.0, min_length=3, max_length=15)
    for session in log.sessions:
        assert 3 <= len(session) <= 15


def test_steps_reference_domain_items(world):
    log = _log(world)
    for session in log.sessions[:50]:
        for step in session.steps:
            product = world.catalog.get(step.item_id)
            assert product.domain == "Electronics"


def test_days_cover_week(world):
    log = _log(world)
    days = {session.day for session in log.sessions}
    assert days <= set(range(7))
    assert len(days) >= 5  # with 150 sessions every day should appear


def test_by_day_split_partitions(world):
    log = _log(world)
    train = log.by_day({0, 1, 2, 3, 4})
    dev = log.by_day({5})
    test = log.by_day({6})
    assert len(train) + len(dev) + len(test) == len(log)


def test_revision_rate_drives_unique_queries(world):
    low = simulate_sessions(
        world, SessionConfig(domain="Electronics", n_sessions=200, revise_prob=0.02), seed=4
    )
    high = simulate_sessions(
        world, SessionConfig(domain="Electronics", n_sessions=200, revise_prob=0.30), seed=4
    )
    assert high.stats()["avg_unique_queries"] > low.stats()["avg_unique_queries"]


def test_table7_shape_electronics_vs_clothing(world):
    clothing = simulate_sessions(
        world,
        SessionConfig(domain="Clothing, Shoes & Jewelry", n_sessions=200,
                      mean_length=8.8, revise_prob=0.06),
        seed=4,
    )
    electronics = simulate_sessions(
        world,
        SessionConfig(domain="Electronics", n_sessions=200,
                      mean_length=12.3, revise_prob=0.25),
        seed=4,
    )
    c_stats, e_stats = clothing.stats(), electronics.stats()
    assert e_stats["avg_session_len"] > c_stats["avg_session_len"]
    assert e_stats["avg_unique_queries"] > c_stats["avg_unique_queries"]


def test_step_intents_are_real(world):
    log = _log(world)
    for session in log.sessions[:30]:
        for step in session.steps:
            assert step.intent_id in world.intents
