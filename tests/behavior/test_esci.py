"""ESCI dataset generator: label semantics, locales, statistics."""

import pytest

from repro.behavior import LOCALES, generate_esci
from repro.behavior.esci import ESCILabel


@pytest.fixture(scope="module")
def dataset(world):
    return generate_esci(world, locale="KDD Cup", pairs_per_query=6, max_queries=60, seed=3)


def test_locales_list(world):
    assert set(LOCALES) == {"KDD Cup", "US", "CA", "UK", "IN"}
    with pytest.raises(ValueError):
        generate_esci(world, locale="XX")


def test_exact_label_is_ground_truth_consistent(world, dataset):
    for example in dataset.train + dataset.test:
        if example.label != ESCILabel.EXACT:
            continue
        query = world.queries.get(example.query_id)
        product = world.catalog.get(example.product_id)
        if query.breadth == "broad":
            assert query.intent_id in product.intent_ids
        else:
            assert product.product_type == query.product_type


def test_irrelevant_products_come_from_other_domains(world, dataset):
    for example in dataset.train + dataset.test:
        if example.label != ESCILabel.IRRELEVANT:
            continue
        query = world.queries.get(example.query_id)
        product = world.catalog.get(example.product_id)
        assert product.domain != query.domain


def test_label_distribution_is_exact_heavy(dataset):
    distribution = dataset.label_distribution()
    total = sum(distribution.values())
    assert distribution[ESCILabel.EXACT] / total > 0.45
    assert distribution[ESCILabel.EXACT] > distribution[ESCILabel.SUBSTITUTE]


def test_stats_fields(dataset):
    stats = dataset.stats()
    assert stats["train_pairs"] + stats["test_pairs"] > 0
    assert stats["unique_queries"] <= 60
    assert stats["exact_pairs"] <= stats["train_pairs"] + stats["test_pairs"]


def test_locale_scaling(world):
    big = generate_esci(world, locale="KDD Cup", pairs_per_query=4, seed=3)
    small = generate_esci(world, locale="CA", pairs_per_query=4, seed=3)
    assert len(small.train) + len(small.test) < len(big.train) + len(big.test)


def test_uk_locale_substitutions_applied(world):
    dataset = generate_esci(world, locale="UK", pairs_per_query=4, max_queries=200, seed=3)
    texts = " ".join(e.query_text + " " + e.product_title for e in dataset.train + dataset.test)
    assert "waterproof" not in texts  # replaced by "showerproof"


def test_split_is_deterministic(world):
    a = generate_esci(world, locale="US", pairs_per_query=4, max_queries=40, seed=8)
    b = generate_esci(world, locale="US", pairs_per_query=4, max_queries=40, seed=8)
    assert [e.example_id for e in a.train] == [e.example_id for e in b.train]
    assert [e.label for e in a.test] == [e.label for e in b.test]
