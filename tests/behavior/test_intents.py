"""Latent intent space: hierarchy, vectors, determinism."""

import numpy as np

from repro.behavior.intents import IntentSpace
from repro.core.relations import TailType


def test_space_covers_all_domains(world):
    domains = {intent.domain for intent in world.intents.all()}
    assert len(domains) == 18


def test_children_are_refinements_of_parent(world):
    found_children = 0
    for intent in world.intents.all():
        for child in world.intents.children(intent.intent_id):
            found_children += 1
            assert child.parent == intent.intent_id
            assert child.tail.endswith(intent.tail)
            assert child.tail != intent.tail
            assert child.tail_type == TailType.ACTIVITY
    assert found_children > 0


def test_roots_have_no_parent(world):
    for root in world.intents.roots():
        assert root.parent is None


def test_roots_filter_by_domain(world):
    roots = world.intents.roots("Electronics")
    assert roots
    assert all(r.domain == "Electronics" for r in roots)


def test_child_vectors_closer_to_parent_than_random(world):
    closer = total = 0
    rng = np.random.default_rng(0)
    all_ids = [i.intent_id for i in world.intents.all()]
    for intent in world.intents.all():
        for child in world.intents.children(intent.intent_id):
            random_id = all_ids[rng.integers(len(all_ids))]
            parent_sim = world.intents.similarity(child.intent_id, intent.intent_id)
            random_sim = world.intents.similarity(child.intent_id, random_id)
            closer += int(parent_sim > random_sim)
            total += 1
    assert closer / total > 0.9


def test_similarity_bounds(world):
    intents = world.intents.all()[:20]
    for a in intents:
        assert world.intents.similarity(a.intent_id, a.intent_id) > 0.999
        for b in intents[:5]:
            sim = world.intents.similarity(a.intent_id, b.intent_id)
            assert -1.0 <= sim <= 1.0 + 1e-9


def test_determinism():
    a = IntentSpace(seed=4)
    b = IntentSpace(seed=4)
    assert [i.intent_id for i in a.all()] == [i.intent_id for i in b.all()]
    assert [i.tail for i in a.all()] == [i.tail for i in b.all()]
    first = a.all()[0].intent_id
    assert np.array_equal(a.vector(first), b.vector(first))


def test_relation_matches_tail_type(world):
    from repro.core.relations import RELATION_SPECS

    for intent in world.intents.all():
        assert RELATION_SPECS[intent.relation].tail_type == intent.tail_type
