"""Edge cases of relation discovery."""

from repro.core.relation_discovery import RelationDiscovery
from repro.core.relations import Relation


def test_unresolved_tail_type_falls_back():
    mined = RelationDiscovery(min_count=1).mine(
        ["it is used for zzz unknown phrase."] * 2
    )
    assert mined[0].relation == Relation.USED_FOR_FUNC  # default family mapping
    assert mined[0].tail_type is None


def test_empty_tail_is_ignored():
    mined = RelationDiscovery(min_count=1).mine(["it is used for."])
    assert mined == []


def test_no_pattern_no_result():
    mined = RelationDiscovery(min_count=1).mine(["completely unrelated sentence."])
    assert mined == []


def test_max_examples_cap():
    texts = [f"it is capable of task {i}." for i in range(10)]
    mined = RelationDiscovery(min_count=1, max_examples=2).mine(texts)
    assert len(mined[0].examples) == 2


def test_longest_pattern_wins_over_substring():
    # "is used in the" contains "is used in"-like stems; the longest
    # pattern must be matched so the tail excludes the article.
    mined = RelationDiscovery(min_count=1).mine(["it is used in the bedroom."] * 2)
    assert mined[0].relation == Relation.USED_IN_LOC
    assert mined[0].examples == ["bedroom"]
