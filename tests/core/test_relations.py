"""Relation taxonomy: Table 2 contents and verbalize/parse round trips."""

import pytest

from repro.core.relations import (
    RELATION_SPECS,
    SEED_RELATIONS,
    Relation,
    TailType,
    parse_predicate,
    relations_for_tail_type,
    verbalize,
)


def test_fifteen_relations():
    assert len(Relation) == 15
    assert len(RELATION_SPECS) == 15


def test_table2_examples_present():
    assert RELATION_SPECS[Relation.CAPABLE_OF].example == "hold snacks"
    assert RELATION_SPECS[Relation.USED_IN_BODY].example == "sensitive skin"
    assert RELATION_SPECS[Relation.X_WANT].example == "play tennis"


def test_four_seed_relations():
    assert SEED_RELATIONS == ("usedFor", "capableOf", "isA", "cause")
    assert {spec.seed for spec in RELATION_SPECS.values()} <= set(SEED_RELATIONS)


def test_verbalize_parse_roundtrip_all_relations():
    for relation, spec in RELATION_SPECS.items():
        text = verbalize(relation, spec.example) + "."
        parsed = parse_predicate(text)
        assert parsed is not None, relation
        parsed_relation, tail = parsed
        assert parsed_relation == relation
        assert tail == spec.example


def test_parse_handles_whitespace_and_case():
    parsed = parse_predicate("  It is capable of hold snacks.  ")
    assert parsed == (Relation.CAPABLE_OF, "hold snacks")


def test_parse_rejects_non_template_text():
    assert parse_predicate("completely unrelated sentence.") is None
    assert parse_predicate("") is None
    assert parse_predicate("it is capable of") is None  # empty tail


def test_longest_prefix_disambiguation():
    # "used in the" must not be parsed as the shorter "used on"/"used".
    parsed = parse_predicate("it is used in the bedroom.")
    assert parsed == (Relation.USED_IN_LOC, "bedroom")
    parsed_on = parse_predicate("it is used on sensitive skin.")
    assert parsed_on == (Relation.USED_IN_BODY, "sensitive skin")


def test_relations_for_tail_type_partition():
    seen = []
    for tail_type in TailType:
        seen.extend(relations_for_tail_type(tail_type))
    assert sorted(seen, key=lambda r: r.value) == sorted(Relation, key=lambda r: r.value)


def test_audience_has_three_relations():
    audience = set(relations_for_tail_type(TailType.AUDIENCE))
    assert audience == {Relation.USED_FOR_AUD, Relation.USED_BY, Relation.X_IS_A}
