"""FolkScope baseline pipeline (the §2 / Table 1 comparison)."""

import pytest

from repro.core.folkscope import FOLKSCOPE_DOMAINS, FolkScopeConfig, FolkScopePipeline
from tests.conftest import TINY_WORLD


@pytest.fixture(scope="module")
def folkscope_result(world):
    config = FolkScopeConfig(
        seed=11,
        world=TINY_WORLD,
        cobuy_pairs_per_domain=40,
        annotation_budget=200,
    )
    return FolkScopePipeline(config).run(world=world)


def test_covers_only_two_domains(folkscope_result):
    domains = {t.domain for t in folkscope_result.kg.triples()}
    assert domains <= set(FOLKSCOPE_DOMAINS)
    assert len(domains) >= 1


def test_cobuy_only(folkscope_result):
    behaviors = {t.behavior for t in folkscope_result.kg.triples()}
    assert behaviors == {"co-buy"}


def test_kg_edges_pass_critic(folkscope_result):
    for triple in folkscope_result.kg.triples():
        assert triple.plausibility > 0.5


def test_serving_cost_is_llm_scale(folkscope_result):
    # No student model: serving each new behavior costs whole seconds of
    # simulated teacher inference.
    assert folkscope_result.serving_cost_per_behavior() > 0.5


def test_narrower_than_cosmo(folkscope_result, pipeline_result):
    cosmo_stats = pipeline_result.kg.stats()
    folk_stats = folkscope_result.kg.stats()
    # COSMO's scale-up: 18 domains and both behaviors vs 2 domains, co-buy.
    assert cosmo_stats.domains > folk_stats.domains
    cosmo_behaviors = {t.behavior for t in pipeline_result.kg.triples()}
    assert cosmo_behaviors == {"co-buy", "search-buy"}
