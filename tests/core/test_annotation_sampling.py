"""Eq. 2 annotation re-weighting."""

import numpy as np
import pytest

from repro.behavior import simulate_cobuy, simulate_searchbuy
from repro.core.annotation_sampling import reweight_candidates, sample_for_annotation
from repro.core.generation import generate_candidates
from repro.core.sampling import sample_cobuy, sample_products, sample_searchbuy
from repro.llm import TeacherLLM


@pytest.fixture(scope="module")
def candidates(world):
    cobuy = simulate_cobuy(world, pairs_per_domain=30, seed=8)
    searchbuy = simulate_searchbuy(world, records_per_domain=40, seed=8)
    selected = sample_products(world, cobuy, searchbuy)
    samples = sample_cobuy(world, cobuy, selected) + sample_searchbuy(world, searchbuy)
    teacher = TeacherLLM(world, seed=8)
    generated = generate_candidates(world, teacher, samples, candidates_per_sample=2, seed=8)
    return generated, cobuy, searchbuy


def test_weights_are_positive_and_aligned(candidates):
    generated, cobuy, searchbuy = candidates
    weights = reweight_candidates(generated, cobuy, searchbuy)
    assert weights.shape == (len(generated),)
    assert (weights > 0).all()


def test_popular_heads_downweighted(candidates):
    generated, cobuy, searchbuy = candidates
    weights = reweight_candidates(generated, cobuy, searchbuy)
    cobuy_items = [
        (w, c) for w, c in zip(weights, generated) if c.sample.behavior == "co-buy"
    ]
    popularity = [
        cobuy.degree(c.sample.product_ids[0]) * cobuy.degree(c.sample.product_ids[1])
        for _, c in cobuy_items
    ]
    values = np.array([w for w, _ in cobuy_items])
    correlation = np.corrcoef(np.log(np.array(popularity) + 1.0), np.log(values))[0, 1]
    assert correlation < 0  # Eq. 2: weight falls with head popularity


def test_budget_respected_without_replacement(candidates):
    generated, cobuy, searchbuy = candidates
    chosen = sample_for_annotation(generated, cobuy, searchbuy, budget=50, seed=1)
    assert len(chosen) == 50
    assert len({c.candidate_id for c in chosen}) == 50


def test_budget_larger_than_pool_returns_all(candidates):
    generated, cobuy, searchbuy = candidates
    subset = generated[:10]
    chosen = sample_for_annotation(subset, cobuy, searchbuy, budget=100, seed=1)
    assert len(chosen) == 10


def test_uniform_flag_changes_distribution(candidates):
    generated, cobuy, searchbuy = candidates
    weighted = sample_for_annotation(generated, cobuy, searchbuy, budget=80, seed=1)
    uniform = sample_for_annotation(generated, cobuy, searchbuy, budget=80,
                                    uniform=True, seed=1)
    assert {c.candidate_id for c in weighted} != {c.candidate_id for c in uniform}


def test_sampling_is_deterministic(candidates):
    generated, cobuy, searchbuy = candidates
    a = sample_for_annotation(generated, cobuy, searchbuy, budget=40, seed=9)
    b = sample_for_annotation(generated, cobuy, searchbuy, budget=40, seed=9)
    assert [c.candidate_id for c in a] == [c.candidate_id for c in b]
