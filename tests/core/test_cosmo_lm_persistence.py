"""Tokenizer and COSMO-LM persistence: the deployment refresh artifact."""

import json

import pytest

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.core.cosmo_lm import CosmoLM
from repro.llm import Tokenizer


def test_tokenizer_roundtrip(tmp_path):
    tok = Tokenizer().fit(["winter camping gear", "dog leash"])
    path = tmp_path / "tok.json"
    tok.save(path)
    loaded = Tokenizer.load(path)
    assert len(loaded) == len(tok)
    text = "winter dog camping"
    assert loaded.encode(text) == tok.encode(text)


def test_tokenizer_load_validates(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "other", "tokens": []}))
    with pytest.raises(ValueError, match="not a tokenizer"):
        Tokenizer.load(path)
    path.write_text(json.dumps({"format": "cosmo-tokenizer", "tokens": ["<bad>"]}))
    with pytest.raises(ValueError, match="special tokens"):
        Tokenizer.load(path)


@pytest.fixture(scope="module")
def small_lm():
    config = PipelineConfig(
        seed=41,
        world=WorldConfig(seed=41, products_per_domain=16,
                          broad_queries_per_domain=8, specific_queries_per_domain=8),
        cobuy_pairs_per_domain=20,
        searchbuy_records_per_domain=25,
        annotation_budget=200,
        lm=CosmoLMConfig(epochs=4, hidden_dim=48),
        expand_with_lm=False,
    )
    result = CosmoPipeline(config).run()
    return result


def test_cosmo_lm_save_load_identical_generations(tmp_path, small_lm):
    lm = small_lm.cosmo_lm
    world = small_lm.world
    directory = tmp_path / "cosmo-lm"
    lm.save(directory)
    restored = CosmoLM.load(directory)

    samples = small_lm.samples[:10]
    prompts = [lm.prompt_for_sample(world, s) for s in samples]
    original = [g.text for g in lm.generate_knowledge(prompts)]
    reloaded = [g.text for g in restored.generate_knowledge(prompts)]
    assert original == reloaded


def test_cosmo_lm_save_load_preserves_classifier(tmp_path, small_lm):
    lm = small_lm.cosmo_lm
    world = small_lm.world
    directory = tmp_path / "cosmo-lm"
    lm.save(directory)
    restored = CosmoLM.load(directory)
    sample = small_lm.samples[0]
    prompt = lm.prompt_for_sample(world, sample)
    assert (restored.predict_typicality(prompt, "it is used for camping")
            == lm.predict_typicality(prompt, "it is used for camping"))


def test_save_before_finetune_raises(tmp_path):
    with pytest.raises(RuntimeError, match="finetune"):
        CosmoLM().save(tmp_path / "x")
