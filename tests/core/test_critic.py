"""Critic classifiers: training, scoring, threshold population."""

import numpy as np
import pytest

from repro.annotation.schema import AnnotationResult
from repro.core.critic import CriticClassifier, CriticConfig
from repro.core.relations import Relation
from repro.core.triples import BehaviorSample, KnowledgeCandidate
from repro.embeddings import TextEncoder


def _make_candidates(n=200, seed=0):
    """Separable synthetic data: plausible tails overlap their context."""
    rng = np.random.default_rng(seed)
    words = ["camping", "hiking", "fishing", "yoga", "tennis", "baking", "sewing"]
    candidates, annotations = [], []
    for i in range(n):
        topic = words[int(rng.integers(len(words)))]
        plausible = bool(rng.random() < 0.5)
        tail = f"{topic} trip" if plausible else f"{words[int(rng.integers(len(words)))]} unrelated"
        sample = BehaviorSample(
            sample_id=f"s{i}",
            behavior="search-buy",
            domain="Sports & Outdoors",
            product_ids=("p1",),
            query_id="q1",
            head_text=f"{topic} gear ||| brand {topic} item",
            intent_id=None,
        )
        candidates.append(
            KnowledgeCandidate(
                candidate_id=f"c{i}",
                sample=sample,
                text=f"it is used for {tail}.",
                relation=Relation.USED_FOR_FUNC,
                tail=tail,
            )
        )
        annotations.append(
            AnnotationResult(
                candidate_id=f"c{i}",
                answers={"complete": True, "relevant": plausible,
                         "informative": True, "plausible": plausible,
                         "typical": plausible},
            )
        )
    return candidates, annotations


@pytest.fixture(scope="module")
def trained_critic():
    candidates, annotations = _make_candidates()
    critic = CriticClassifier(TextEncoder(seed=0), CriticConfig(epochs=40), seed=0)
    losses = critic.fit(candidates[:150], annotations[:150])
    return critic, candidates, annotations, losses


def test_training_reduces_loss(trained_critic):
    _, _, _, losses = trained_critic
    assert losses[-1] < losses[0]


def test_heldout_accuracy_on_separable_data(trained_critic):
    critic, candidates, annotations, _ = trained_critic
    accuracy = critic.accuracy(candidates[150:], annotations[150:])
    assert accuracy["plausibility"] > 0.8


def test_scores_are_probabilities(trained_critic):
    critic, candidates, _, _ = trained_critic
    scores = critic.score(candidates[:20])
    assert scores.shape == (20, 2)
    assert ((scores >= 0) & (scores <= 1)).all()


def test_populate_sets_scores_and_thresholds(trained_critic):
    critic, candidates, annotations, _ = trained_critic
    kept = critic.populate(candidates[150:])
    for candidate in candidates[150:]:
        assert candidate.plausibility_score is not None
        assert candidate.typicality_score is not None
    for candidate in kept:
        assert candidate.plausibility_score > critic.config.keep_threshold


def test_score_before_fit_raises():
    critic = CriticClassifier(TextEncoder(seed=1), seed=1)
    with pytest.raises(RuntimeError):
        critic.score([])


def test_fit_rejects_misaligned_inputs():
    candidates, annotations = _make_candidates(10)
    critic = CriticClassifier(TextEncoder(seed=1), seed=1)
    with pytest.raises(ValueError):
        critic.fit(candidates, annotations[:5])


def test_empty_score_returns_empty(trained_critic):
    critic, _, _, _ = trained_critic
    assert critic.score([]).shape == (0, 2)
