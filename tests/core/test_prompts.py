"""QA prompt construction (Figure 3)."""

import pytest

from repro.core.prompts import cobuy_prompt, searchbuy_prompt


def test_searchbuy_prompt_contents():
    prompt = searchbuy_prompt(
        "winter camping gear", "acme tent", "Sports & Outdoors",
        product_id="p1", query_id="q1", seed_relation="capableOf",
    )
    text = prompt.render()
    assert "winter camping gear" in text
    assert "acme tent" in text
    assert "Sports & Outdoors" in text
    assert text.rstrip().endswith("1.")  # the list-marker trick
    assert "capable" in text.lower()
    assert prompt.behavior == "search-buy"
    assert prompt.product_ids == ("p1",)


def test_cobuy_prompt_contents():
    prompt = cobuy_prompt(
        "camera case", "screen protector", "Electronics",
        product_ids=("p1", "p2"),
    )
    text = prompt.render()
    assert "camera case" in text and "screen protector" in text
    assert "bought them together because" in text
    assert prompt.behavior == "co-buy"
    assert prompt.seed_relation is None


def test_default_question_without_seed_relation():
    prompt = searchbuy_prompt("q", "p", "Electronics", "p1", "q1")
    assert "Why did the customer" in prompt.render()


def test_invalid_seed_relation_rejected():
    with pytest.raises(ValueError):
        searchbuy_prompt("q", "p", "Electronics", "p1", "q1", seed_relation="madeUp")


def test_head_text_joins_parts():
    prompt = cobuy_prompt("title a", "title b", "Electronics", ("p1", "p2"))
    assert prompt.head_text == "title a ||| title b"
