"""Instruction-data construction (§3.4): 5 tasks, templates, coverage."""

import pytest

from repro.core.instructions import TASKS, build_instruction_dataset


@pytest.fixture(scope="module")
def dataset(pipeline_result):
    return pipeline_result.instruction_dataset


def test_five_task_types(dataset):
    assert set(TASKS) == {
        "generation", "plausibility", "typicality", "copurchase", "search_relevance",
    }
    assert set(dataset.task_distribution()) == set(TASKS)


def test_coverage_scaleup(dataset):
    coverage = dataset.coverage()
    assert coverage["domains"] == 18
    assert coverage["relations"] >= 12
    assert coverage["tasks"] == 5
    assert coverage["examples"] > 0


def test_task_marker_at_prompt_end(dataset):
    for example in dataset.examples[:200]:
        assert " task: " in example.prompt
        marker = example.prompt.rsplit(" task: ", 1)[1]
        assert example.task.replace("_", " ").startswith(marker.split()[0])


def test_generation_targets_are_knowledge_text(dataset):
    from repro.core.relations import parse_predicate

    generation = dataset.for_task("generation")
    assert generation
    parseable = sum(parse_predicate(e.target + ".") is not None for e in generation)
    assert parseable / len(generation) > 0.9


def test_label_tasks_have_yes_no_targets(dataset):
    for task in ("plausibility", "typicality", "copurchase", "search_relevance"):
        for example in dataset.for_task(task):
            assert example.target in ("yes", "no")


def test_label_tasks_have_both_classes(dataset):
    for task in ("plausibility", "typicality"):
        targets = {e.target for e in dataset.for_task(task)}
        assert targets == {"yes", "no"}


def test_generation_oversampling(pipeline_result):
    base = build_instruction_dataset(
        pipeline_result.world,
        pipeline_result.annotated_candidates,
        pipeline_result.annotations,
        generation_oversample=1,
        seed=0,
    )
    oversampled = build_instruction_dataset(
        pipeline_result.world,
        pipeline_result.annotated_candidates,
        pipeline_result.annotations,
        generation_oversample=3,
        seed=0,
    )
    assert len(oversampled.for_task("generation")) == 3 * len(base.for_task("generation"))


def test_pairs_alignment(dataset):
    pairs = dataset.pairs()
    assert len(pairs) == len(dataset)
    assert pairs[0] == (dataset.examples[0].prompt, dataset.examples[0].target)


def test_misaligned_inputs_rejected(pipeline_result):
    with pytest.raises(ValueError):
        build_instruction_dataset(
            pipeline_result.world,
            pipeline_result.annotated_candidates,
            pipeline_result.annotations[:3],
        )
