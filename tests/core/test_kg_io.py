"""KG serialization round trips and validation."""

import json

import pytest

from repro.core.kg import KnowledgeGraph
from repro.core.kg_io import load_kg, record_to_triple, save_kg, triple_to_record
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple


def _triple(tail="camping", support=2):
    return KnowledgeTriple(
        head="winter camping gear ||| acme tent",
        relation=Relation.USED_FOR_EVE,
        tail=tail,
        domain="Sports & Outdoors",
        behavior="search-buy",
        plausibility=0.91,
        typicality=0.55,
        support=support,
        head_ids=("p1",),
    )


def test_record_roundtrip():
    triple = _triple()
    assert record_to_triple(triple_to_record(triple)) == triple


def test_save_load_roundtrip(tmp_path):
    kg = KnowledgeGraph()
    kg.add(_triple("camping"))
    kg.add(_triple("hiking", support=1))
    path = tmp_path / "kg.jsonl"
    written = save_kg(kg, path)
    assert written == 2
    loaded = load_kg(path)
    assert len(loaded) == 2
    assert {t.tail for t in loaded.triples()} == {"camping", "hiking"}
    original = {t.key: t for t in kg.triples()}
    for triple in loaded.triples():
        assert original[triple.key] == triple


def test_pipeline_kg_roundtrip(tmp_path, pipeline_result):
    path = tmp_path / "pipeline_kg.jsonl"
    save_kg(pipeline_result.kg, path)
    loaded = load_kg(path)
    assert loaded.stats() == pipeline_result.kg.stats()


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": "other"}) + "\n")
    with pytest.raises(ValueError, match="not a cosmo-kg"):
        load_kg(path)


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": "cosmo-kg", "version": 99, "edges": 0}) + "\n")
    with pytest.raises(ValueError, match="unsupported version"):
        load_kg(path)


def test_load_rejects_truncated_file(tmp_path):
    kg = KnowledgeGraph()
    kg.add(_triple())
    path = tmp_path / "kg.jsonl"
    save_kg(kg, path)
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n")  # drop the edge line
    with pytest.raises(ValueError, match="promises"):
        load_kg(path)


def test_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_kg(path)
