"""KG serialization round trips and validation."""

import json

import numpy as np
import pytest

from repro.core.kg import KnowledgeGraph
from repro.core.kg_io import (load_kg, load_kg_columnar, record_to_triple,
                              save_kg, save_kg_columnar, triple_to_record)
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple


def _triple(tail="camping", support=2):
    return KnowledgeTriple(
        head="winter camping gear ||| acme tent",
        relation=Relation.USED_FOR_EVE,
        tail=tail,
        domain="Sports & Outdoors",
        behavior="search-buy",
        plausibility=0.91,
        typicality=0.55,
        support=support,
        head_ids=("p1",),
    )


def test_record_roundtrip():
    triple = _triple()
    assert record_to_triple(triple_to_record(triple)) == triple


def test_save_load_roundtrip(tmp_path):
    kg = KnowledgeGraph()
    kg.add(_triple("camping"))
    kg.add(_triple("hiking", support=1))
    path = tmp_path / "kg.jsonl"
    written = save_kg(kg, path)
    assert written == 2
    loaded = load_kg(path)
    assert len(loaded) == 2
    assert {t.tail for t in loaded.triples()} == {"camping", "hiking"}
    original = {t.key: t for t in kg.triples()}
    for triple in loaded.triples():
        assert original[triple.key] == triple


def test_pipeline_kg_roundtrip(tmp_path, pipeline_result):
    path = tmp_path / "pipeline_kg.jsonl"
    save_kg(pipeline_result.kg, path)
    loaded = load_kg(path)
    assert loaded.stats() == pipeline_result.kg.stats()


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": "other"}) + "\n")
    with pytest.raises(ValueError, match="not a cosmo-kg"):
        load_kg(path)


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"format": "cosmo-kg", "version": 99, "edges": 0}) + "\n")
    with pytest.raises(ValueError, match="unsupported version"):
        load_kg(path)


def test_load_rejects_truncated_file(tmp_path):
    kg = KnowledgeGraph()
    kg.add(_triple())
    path = tmp_path / "kg.jsonl"
    save_kg(kg, path)
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n")  # drop the edge line
    with pytest.raises(ValueError, match="promises"):
        load_kg(path)


def test_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_kg(path)


# ----------------------------------------------------------------------
# Columnar archive validation: a truncated or hand-edited npz must fail
# with a ValueError naming the inconsistency, never a numpy IndexError
# mid-replay.

def _columnar_path(tmp_path):
    kg = KnowledgeGraph()
    kg.add(_triple("camping"))
    kg.add(_triple("hiking", support=1))
    path = tmp_path / "kg.npz"
    save_kg_columnar(kg, path)
    return path


def _tampered(tmp_path, path, **overrides):
    """Rewrite the archive with some arrays replaced (or dropped)."""
    with np.load(path, allow_pickle=False) as archive:
        payload = {name: archive[name] for name in archive.files}
    for name, value in overrides.items():
        if value is None:
            payload.pop(name)
        else:
            payload[name] = value
    out = tmp_path / "tampered.npz"
    with out.open("wb") as handle:
        np.savez_compressed(handle, **payload)
    return out


def test_columnar_rejects_missing_columns(tmp_path):
    path = _tampered(tmp_path, _columnar_path(tmp_path), plausibility=None)
    with pytest.raises(ValueError, match="missing columns.*plausibility"):
        load_kg_columnar(path)


def test_columnar_rejects_truncated_numeric_column(tmp_path):
    source = _columnar_path(tmp_path)
    with np.load(source, allow_pickle=False) as archive:
        short = archive["tail"][:-1]
    path = _tampered(tmp_path, source, tail=short)
    with pytest.raises(ValueError, match="'tail' has 1 values for 2 edges"):
        load_kg_columnar(path)


def test_columnar_rejects_truncated_lengths(tmp_path):
    path = _tampered(tmp_path, _columnar_path(tmp_path),
                     head_ids_len=np.array([1], dtype=np.int32))
    with pytest.raises(ValueError, match="head_ids_len has 1 entries"):
        load_kg_columnar(path)


def test_columnar_rejects_negative_lengths(tmp_path):
    # Sum still matches the flat array (2 values), so only the explicit
    # negativity check can catch this before slicing goes quadratic.
    path = _tampered(tmp_path, _columnar_path(tmp_path),
                     head_ids_len=np.array([-1, 3], dtype=np.int32))
    with pytest.raises(ValueError, match="negative lengths"):
        load_kg_columnar(path)


def test_columnar_rejects_flat_length_mismatch(tmp_path):
    path = _tampered(tmp_path, _columnar_path(tmp_path),
                     head_ids_flat=np.array(["p1"], dtype=np.str_))
    with pytest.raises(ValueError, match="lengths disagree with flat values"):
        load_kg_columnar(path)


def test_columnar_rejects_out_of_range_intern_ids(tmp_path):
    source = _columnar_path(tmp_path)
    with np.load(source, allow_pickle=False) as archive:
        bad = archive["relation"].copy()
    bad[0] = 99
    path = _tampered(tmp_path, source, relation=bad)
    with pytest.raises(ValueError,
                       match="'relation' has ids outside the 'relations'"):
        load_kg_columnar(path)


def test_columnar_roundtrip_survives_validation(tmp_path):
    path = _columnar_path(tmp_path)
    loaded = load_kg_columnar(path)
    assert len(loaded) == 2
    assert {t.tail for t in loaded.triples()} == {"camping", "hiking"}
