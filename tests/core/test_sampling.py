"""Behavior sampling (§3.2.1): thresholds, deduplication, heuristics."""

import pytest

from repro.behavior import simulate_cobuy, simulate_searchbuy
from repro.core.sampling import (
    SamplingConfig,
    sample_cobuy,
    sample_products,
    sample_searchbuy,
)


@pytest.fixture(scope="module")
def logs(world):
    cobuy = simulate_cobuy(world, pairs_per_domain=50, seed=6)
    searchbuy = simulate_searchbuy(world, records_per_domain=60, seed=6)
    return cobuy, searchbuy


def test_product_sampling_selects_top_fraction(world, logs):
    cobuy, searchbuy = logs
    selected = sample_products(world, cobuy, searchbuy, top_fraction=0.5)
    assert 0 < len(selected) <= len(world.catalog)
    # Selected products have at least the median interaction volume.
    for domain in ("Electronics",):
        products = world.catalog.for_domain(domain)
        volumes = sorted(
            cobuy.degree(p.product_id) + searchbuy.product_degree(p.product_id)
            for p in products
        )
        median = volumes[len(volumes) // 2]
        chosen = [p for p in products if p.product_id in selected]
        assert all(
            cobuy.degree(p.product_id) + searchbuy.product_degree(p.product_id) >= 0
            for p in chosen
        )
        top = max(
            products,
            key=lambda p: cobuy.degree(p.product_id) + searchbuy.product_degree(p.product_id),
        )
        assert top.product_id in selected


def test_cobuy_sampling_excludes_same_type_pairs(world, logs):
    cobuy, searchbuy = logs
    selected = sample_products(world, cobuy, searchbuy)
    samples = sample_cobuy(world, cobuy, selected)
    for sample in samples:
        type_a = world.catalog.get(sample.product_ids[0]).product_type
        type_b = world.catalog.get(sample.product_ids[1]).product_type
        assert type_a != type_b


def test_cobuy_sampling_requires_selected_endpoint(world, logs):
    cobuy, searchbuy = logs
    selected = sample_products(world, cobuy, searchbuy, top_fraction=0.3)
    samples = sample_cobuy(world, cobuy, selected)
    for sample in samples:
        assert sample.product_ids[0] in selected or sample.product_ids[1] in selected


def test_cobuy_sampling_no_duplicate_pairs(world, logs):
    cobuy, searchbuy = logs
    selected = sample_products(world, cobuy, searchbuy)
    samples = sample_cobuy(world, cobuy, selected)
    keys = [(s.product_ids, world.catalog.get(s.product_ids[0]).product_type) for s in samples]
    assert len(keys) == len(set(keys))


def test_singleton_type_pairs_are_dropped(world, logs):
    cobuy, searchbuy = logs
    selected = sample_products(world, cobuy, searchbuy)
    strict = sample_cobuy(
        world, cobuy, selected, SamplingConfig(min_type_pair_count=3)
    )
    loose = sample_cobuy(
        world, cobuy, selected, SamplingConfig(min_type_pair_count=1)
    )
    assert len(strict) <= len(loose)


def test_searchbuy_sampling_engagement_thresholds(world, logs):
    _, searchbuy = logs
    config = SamplingConfig(min_clicks=3, min_purchase_rate=0.3,
                            low_engagement_fraction=0.0)
    samples = sample_searchbuy(world, searchbuy, config)
    for sample in samples:
        clicks, _ = searchbuy.query_engagement(sample.query_id)
        assert clicks >= 3
        assert searchbuy.purchase_rate(sample.query_id) >= 0.3


def test_searchbuy_low_engagement_slice(world, logs):
    _, searchbuy = logs
    # An impossible purchase-rate threshold disables the engaged path,
    # leaving only the low-engagement slice.
    none_kept = sample_searchbuy(
        world, searchbuy,
        SamplingConfig(min_purchase_rate=2.0, low_engagement_fraction=0.0),
    )
    some_kept = sample_searchbuy(
        world, searchbuy,
        SamplingConfig(min_purchase_rate=2.0, low_engagement_fraction=0.2),
    )
    assert len(none_kept) == 0
    assert len(some_kept) > 0


def test_searchbuy_samples_are_unique_pairs(world, logs):
    _, searchbuy = logs
    samples = sample_searchbuy(world, searchbuy)
    keys = [(s.query_id, s.product_ids[0]) for s in samples]
    assert len(keys) == len(set(keys))
