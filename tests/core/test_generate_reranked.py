"""Sample-and-rerank generation through the CosmoLM API."""

import pytest

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.core.relations import parse_predicate


@pytest.fixture(scope="module")
def small_cosmo():
    config = PipelineConfig(
        seed=61,
        world=WorldConfig(seed=61, products_per_domain=16,
                          broad_queries_per_domain=8, specific_queries_per_domain=8),
        cobuy_pairs_per_domain=20,
        searchbuy_records_per_domain=25,
        annotation_budget=250,
        lm=CosmoLMConfig(epochs=6, hidden_dim=48),
        expand_with_lm=False,
    )
    return CosmoPipeline(config).run()


def test_reranked_returns_one_generation_per_prompt(small_cosmo):
    lm = small_cosmo.cosmo_lm
    samples = small_cosmo.samples[:8]
    prompts = [lm.prompt_for_sample(small_cosmo.world, s) for s in samples]
    winners = lm.generate_reranked(prompts, num_candidates=3)
    assert len(winners) == len(prompts)
    for winner in winners:
        assert winner.text is not None


def test_reranked_is_deterministic(small_cosmo):
    lm = small_cosmo.cosmo_lm
    sample = small_cosmo.samples[0]
    prompt = lm.prompt_for_sample(small_cosmo.world, sample)
    first = [g.text for g in lm.generate_reranked([prompt], num_candidates=3)]
    second = [g.text for g in lm.generate_reranked([prompt], num_candidates=3)]
    assert first == second


def test_reranked_costs_more_latency_than_greedy(small_cosmo):
    lm = small_cosmo.cosmo_lm
    prompts = [lm.prompt_for_sample(small_cosmo.world, s)
               for s in small_cosmo.samples[:6]]
    before = lm.latency.total_simulated_s
    lm.generate_knowledge(prompts)
    greedy_cost = lm.latency.total_simulated_s - before
    before = lm.latency.total_simulated_s
    lm.generate_reranked(prompts, num_candidates=3)
    rerank_cost = lm.latency.total_simulated_s - before
    assert rerank_cost > greedy_cost


def test_reranked_requires_seq2seq():
    from repro.core.cosmo_lm import CosmoLM

    lm = CosmoLM(config=CosmoLMConfig(architecture="lm", epochs=1))
    with pytest.raises(RuntimeError):
        lm.generate_reranked(["x"])  # not finetuned -> RuntimeError first
