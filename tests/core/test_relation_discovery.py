"""Data-driven relation discovery (§3.1): recovering Table 2 from text."""

import pytest

from repro.core.relation_discovery import RelationDiscovery
from repro.core.relations import RELATION_SPECS, Relation, TailType, verbalize


@pytest.fixture(scope="module")
def discovery():
    return RelationDiscovery(min_count=2)


def test_recovers_all_relations_from_template_corpus(discovery):
    texts = []
    for relation, spec in RELATION_SPECS.items():
        texts.extend([f"{verbalize(relation, spec.example)}."] * 3)
    mined = discovery.mine(texts)
    assert {m.relation for m in mined} == set(Relation)


def test_counts_and_ordering(discovery):
    texts = ["it is capable of hold snacks."] * 5 + ["it is used by cat owner."] * 2
    mined = discovery.mine(texts)
    assert mined[0].relation == Relation.CAPABLE_OF
    assert mined[0].count == 5
    assert mined[1].count == 2


def test_min_count_filters_rare_patterns():
    texts = ["it is capable of hold snacks."] * 3 + ["it is used by cat owner."]
    mined = RelationDiscovery(min_count=2).mine(texts)
    assert {m.relation for m in mined} == {Relation.CAPABLE_OF}


def test_used_for_splits_by_tail_type(discovery):
    # Same surface pattern, different tail types → different relations.
    texts = (
        ["it is used for dry face."] * 3            # function (Health bank)
        + ["it is used for camping."] * 3           # activity (Sports bank)
    )
    mined = discovery.mine(texts)
    relations = {m.relation for m in mined}
    assert Relation.USED_FOR_FUNC in relations
    assert Relation.USED_FOR_EVE in relations


def test_modifier_stripping_for_tail_typing(discovery):
    texts = ["it is used for winter camping."] * 3
    mined = discovery.mine(texts)
    assert mined[0].relation == Relation.USED_FOR_EVE
    assert mined[0].tail_type == TailType.ACTIVITY


def test_examples_collected_without_duplicates(discovery):
    texts = [
        "it is capable of hold snacks.",
        "it is capable of hold snacks.",
        "it is capable of keep drinks cold.",
    ]
    mined = discovery.mine(texts)
    record = mined[0]
    assert record.examples == ["hold snacks", "keep drinks cold"]


def test_pipeline_candidates_recover_most_relations(pipeline_result):
    discovery = RelationDiscovery(min_count=2)
    mined = discovery.mine_candidates(pipeline_result.candidates)
    assert len({m.relation for m in mined}) >= 12
