"""Columnar KG internals: intern tables, CSR neighbor queries, the
``.npz`` round-trip and the snapshot column digest.

Golden contract of the columnar refactor: the interned/array-backed
:class:`KnowledgeGraph` is behaviorally identical to the reference
dict-of-triples semantics — same dedup/merge rules, same ``triples()``
order, same stats — while queries run off id tables and CSR slices
instead of full scans.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kg import KnowledgeGraph
from repro.core.kg_io import load_kg_columnar, save_kg_columnar
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.refresh import build_snapshot, columnar_digest

_relations = st.sampled_from(list(Relation))
_texts = st.text(alphabet="abcde ", min_size=1, max_size=10).map(str.strip).filter(bool)


@st.composite
def triples(draw):
    return KnowledgeTriple(
        head=draw(_texts),
        relation=draw(_relations),
        tail=draw(_texts),
        domain=draw(st.sampled_from(["Electronics", "Pet Supplies"])),
        behavior=draw(st.sampled_from(["co-buy", "search-buy"])),
        plausibility=draw(st.floats(0, 1)),
        typicality=draw(st.floats(0, 1)),
        support=draw(st.integers(1, 5)),
        head_ids=tuple(draw(st.lists(st.sampled_from(["p1", "p2"]), max_size=2))),
    )


def _triple(head="q ||| p", tail="camping", relation=Relation.USED_FOR_EVE,
            domain="Sports & Outdoors", behavior="search-buy",
            plausibility=0.9, typicality=0.6):
    return KnowledgeTriple(
        head=head, relation=relation, tail=tail, domain=domain,
        behavior=behavior, plausibility=plausibility, typicality=typicality,
    )


# -- column layout ----------------------------------------------------------


def test_columns_expose_trimmed_typed_arrays():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple(tail="hiking", plausibility=0.7))
    cols = kg.columns()
    assert cols["head"].dtype == np.int32
    assert cols["plausibility"].dtype == np.float64
    assert cols["support"].dtype == np.int64
    assert len(cols["head"]) == len(kg) == 2
    assert cols["nodes"][cols["head"][0]] == "q ||| p"
    assert cols["nodes"][cols["tail"][0]] == "camping"
    assert list(cols["plausibility"]) == [0.9, 0.7]


def test_columns_grow_past_initial_capacity():
    kg = KnowledgeGraph()
    kg.extend([_triple(tail=f"tail {i:03d}") for i in range(100)])
    assert len(kg) == 100
    cols = kg.columns()
    assert len(cols["tail"]) == 100
    assert [t.tail for t in kg.triples()] == [f"tail {i:03d}" for i in range(100)]


def test_duplicate_merge_keeps_columns_compact():
    kg = KnowledgeGraph()
    kg.add(_triple(plausibility=0.5, typicality=0.4))
    kg.add(_triple(plausibility=0.8, typicality=0.1))
    cols = kg.columns()
    assert len(cols["head"]) == 1
    assert cols["plausibility"][0] == 0.8
    assert cols["typicality"][0] == 0.4
    assert cols["support"][0] == 2


def test_nodes_interned_across_heads_and_tails():
    kg = KnowledgeGraph()
    # The same string as a head of one edge and tail of another should
    # intern to a single node id (stats count it once).
    kg.add(_triple(head="camping", tail="warmth"))
    kg.add(_triple(head="boots", tail="camping"))
    assert kg.stats().nodes == 3


# -- CSR neighbor queries ---------------------------------------------------


def test_neighbors_returns_triples_for_one_head():
    kg = KnowledgeGraph()
    kg.add(_triple(head="h1", tail="a"))
    kg.add(_triple(head="h2", tail="b"))
    kg.add(_triple(head="h1", tail="c", relation=Relation.X_WANT))
    neighbors = kg.neighbors("h1")
    assert {t.tail for t in neighbors} == {"a", "c"}
    assert all(t.head == "h1" for t in neighbors)
    assert kg.neighbors("missing") == []


def test_tails_of_is_sorted_and_unique():
    kg = KnowledgeGraph()
    kg.add(_triple(head="h", tail="zebra"))
    kg.add(_triple(head="h", tail="apple", relation=Relation.X_WANT))
    kg.add(_triple(head="h", tail="apple", relation=Relation.CAPABLE_OF))
    assert kg.tails_of("h") == ["apple", "zebra"]


def test_csr_rebuilds_after_new_edges():
    kg = KnowledgeGraph()
    kg.add(_triple(head="h", tail="a"))
    assert kg.tails_of("h") == ["a"]
    kg.add(_triple(head="h", tail="b", relation=Relation.X_WANT))
    assert kg.tails_of("h") == ["a", "b"]


@given(st.lists(triples(), max_size=40))
@settings(max_examples=40, deadline=None)
def test_csr_neighbors_match_linear_scan(batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    reference = kg.triples()
    for head in {t.head for t in reference}:
        expected = [t for t in reference if t.head == head]
        got = kg.neighbors(head)
        assert sorted(t.key for t in got) == sorted(t.key for t in expected)
        assert kg.tails_of(head) == sorted({t.tail for t in expected})


@given(st.lists(triples(), max_size=40))
@settings(max_examples=40, deadline=None)
def test_intern_tables_round_trip_every_string(batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    cols = kg.columns()
    nodes, relations = cols["nodes"], cols["relations"]
    domains, behaviors = cols["domains"], cols["behaviors"]
    for row, triple in enumerate(kg.triples()):
        assert nodes[cols["head"][row]] == triple.head
        assert nodes[cols["tail"][row]] == triple.tail
        assert relations[cols["relation"][row]] == triple.relation.value
        assert domains[cols["domain"][row]] == triple.domain
        assert behaviors[cols["behavior"][row]] == triple.behavior
    # Interning is bijective: no dangling or duplicated table entries.
    assert len(set(nodes)) == len(nodes)
    assert len(set(relations)) == len(relations)


# -- columnar (de)serialization --------------------------------------------


def test_columnar_npz_round_trip(tmp_path):
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(KnowledgeTriple(
        head="q2 ||| boots", relation=Relation.X_WANT, tail="warm feet",
        domain="Electronics", behavior="co-buy", plausibility=0.75,
        typicality=0.5, support=3, head_ids=("p1", "p2"),
    ))
    path = tmp_path / "kg.npz"
    written = save_kg_columnar(kg, path)
    assert written == 2
    restored = load_kg_columnar(path)
    assert restored.triples() == kg.triples()
    assert restored.stats() == kg.stats()


@given(st.lists(triples(), max_size=30))
@settings(max_examples=25, deadline=None)
def test_columnar_round_trip_any_graph(tmp_path_factory, batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    path = tmp_path_factory.mktemp("kgcol") / "kg.npz"
    save_kg_columnar(kg, path)
    restored = load_kg_columnar(path)
    assert restored.triples() == kg.triples()


def test_columnar_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez_compressed(path, data=np.arange(3))
    with pytest.raises(ValueError):
        load_kg_columnar(path)


# -- snapshot column digest -------------------------------------------------


def _graph():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple(tail="hiking", relation=Relation.X_WANT))
    return kg


def test_columnar_digest_is_deterministic_and_content_sensitive():
    digest_a = columnar_digest(_graph())
    digest_b = columnar_digest(_graph())
    assert digest_a == digest_b

    changed = _graph()
    changed.add(_triple(tail="sailing"))
    assert columnar_digest(changed) != digest_a


def test_build_snapshot_stamps_digest_without_changing_version():
    graph = _graph()
    entries = {"q": "knowledge"}
    with_graph = build_snapshot(entries, graph.triples(), graph=graph)
    without = build_snapshot(entries, graph.triples())
    # The digest is an integrity witness, not part of snapshot identity:
    # the same content hashes to the same version either way.
    assert with_graph.manifest.version == without.manifest.version
    assert with_graph.manifest.columnar_digest == columnar_digest(graph)
    assert without.manifest.columnar_digest == ""
    assert with_graph.manifest.as_dict()["columnar_digest"] != ""
