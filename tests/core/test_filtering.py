"""Refinement cascade (§3.3.1): each stage removes its failure mode."""

import pytest

from repro.core.filtering import FilterConfig, KnowledgeFilter, build_reference_lm
from repro.core.relations import Relation
from repro.core.triples import BehaviorSample, KnowledgeCandidate
from repro.embeddings import TextEncoder


def _sample(behavior="search-buy", head="winter camping gear ||| acme brand camping tent"):
    return BehaviorSample(
        sample_id="s1",
        behavior=behavior,
        domain="Sports & Outdoors",
        product_ids=("p1",) if behavior == "search-buy" else ("p1", "p2"),
        query_id="q1" if behavior == "search-buy" else None,
        head_text=head,
        intent_id=None,
    )


def _candidate(text, relation=Relation.USED_FOR_EVE, tail=None, sample=None, cid="c"):
    return KnowledgeCandidate(
        candidate_id=cid,
        sample=sample or _sample(),
        text=text,
        relation=relation,
        tail=tail,
    )


@pytest.fixture(scope="module")
def knowledge_filter():
    return KnowledgeFilter(TextEncoder(seed=0))


def test_unparseable_candidates_dropped(knowledge_filter):
    candidate = _candidate("random words with no template.", relation=None, tail=None)
    survivors, report = knowledge_filter.apply([candidate])
    assert not survivors
    assert report.dropped["completeness"] == 1


def test_incomplete_sentence_dropped(knowledge_filter):
    candidate = _candidate("it is used for", tail="")
    survivors, _ = knowledge_filter.apply([candidate])
    assert not survivors


def test_well_formed_knowledge_survives(knowledge_filter):
    candidate = _candidate(
        "it can be used when they winter camping.", tail="winter camping"
    )
    survivors, report = knowledge_filter.apply([candidate])
    assert survivors == [candidate]
    assert report.kept == 1


def test_query_overlap_is_not_a_paraphrase(knowledge_filter):
    # Tail contained in the QUERY is the semantic bridge — must survive.
    candidate = _candidate(
        "it is used for winter camping.", relation=Relation.USED_FOR_FUNC,
        tail="winter camping",
    )
    survivors, _ = knowledge_filter.apply([candidate])
    assert survivors


def test_product_title_paraphrase_dropped(knowledge_filter):
    candidate = _candidate(
        "it is a type of camping tent.", relation=Relation.IS_A, tail="camping tent"
    )
    survivors, report = knowledge_filter.apply([candidate])
    assert not survivors
    assert report.dropped["context_overlap"] == 1


def test_generic_tail_detection():
    config = FilterConfig(generic_min_heads=3, generic_min_entropy=0.5)
    knowledge_filter = KnowledgeFilter(TextEncoder(seed=0), config=config)
    candidates = [
        _candidate(
            "it is used for the same reason.",
            relation=Relation.USED_FOR_FUNC,
            tail="the same reason",
            sample=_sample(head=f"query {i} ||| product {i}"),
            cid=f"c{i}",
        )
        for i in range(5)
    ]
    survivors, report = knowledge_filter.apply(candidates)
    assert not survivors
    assert report.dropped["generic"] == 5


def test_stage_toggles():
    config = FilterConfig(
        enable_completeness=False,
        enable_context_overlap=False,
        enable_generic=False,
        enable_similarity=False,
    )
    knowledge_filter = KnowledgeFilter(TextEncoder(seed=0), config=config)
    junk = _candidate("it is used for", relation=None, tail=None)
    survivors, report = knowledge_filter.apply([junk])
    assert survivors == [junk]
    assert report.drop_rate == 0.0


def test_report_accounting(knowledge_filter):
    good = _candidate("it can be used when they winter camping.", tail="winter camping")
    bad = _candidate("gibberish.", relation=None, tail=None, cid="c2")
    survivors, report = knowledge_filter.apply([good, bad])
    assert report.input_count == 2
    assert report.kept == 1
    assert report.drop_rate == pytest.approx(0.5)


def test_reference_lm_prefers_template_sentences():
    lm = build_reference_lm()
    assert lm.perplexity("it is used for dry face.") < lm.perplexity("face used it dry for")
