"""Knowledge graph container: dedup, stats, hierarchy, export."""

import pytest

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple


def _triple(head="q ||| p", tail="camping", relation=Relation.USED_FOR_EVE,
            domain="Sports & Outdoors", behavior="search-buy",
            plausibility=0.9, typicality=0.6):
    return KnowledgeTriple(
        head=head, relation=relation, tail=tail, domain=domain,
        behavior=behavior, plausibility=plausibility, typicality=typicality,
    )


def test_add_and_len():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple(tail="hiking"))
    assert len(kg) == 2


def test_duplicate_merges_support_and_max_scores():
    kg = KnowledgeGraph()
    kg.add(_triple(plausibility=0.6, typicality=0.2))
    kg.add(_triple(plausibility=0.9, typicality=0.1))
    assert len(kg) == 1
    merged = kg.triples()[0]
    assert merged.support == 2
    assert merged.plausibility == 0.9
    assert merged.typicality == 0.2


def test_edges_for_counts_unique_edges():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple())  # duplicate: not a new edge
    kg.add(_triple(tail="hiking"))
    assert kg.edges_for("Sports & Outdoors", "search-buy") == 2
    assert kg.edges_for("Sports & Outdoors", "co-buy") == 0


def test_stats():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple(head="q2 ||| p2", tail="hiking", relation=Relation.X_WANT,
                   domain="Electronics", behavior="co-buy"))
    stats = kg.stats()
    assert stats.edges == 2
    assert stats.nodes == 4
    assert stats.relations == 2
    assert stats.domains == 2


def test_relation_and_domain_lookup():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple(tail="hiking", relation=Relation.X_WANT))
    assert len(kg.by_relation(Relation.X_WANT)) == 1
    assert len(kg.for_domain("Sports & Outdoors")) == 2
    assert kg.tails() == ["camping", "hiking"]


def test_to_networkx_roundtrip():
    kg = KnowledgeGraph()
    kg.add(_triple())
    graph = kg.to_networkx()
    assert graph.number_of_nodes() == 2
    assert graph.number_of_edges() == 1
    _, _, data = next(iter(graph.edges(data=True)))
    assert data["relation"] == Relation.USED_FOR_EVE.value


def test_tail_hierarchy_nests_modified_tails():
    kg = KnowledgeGraph()
    kg.add(_triple(tail="camping"))
    kg.add(_triple(head="q2 ||| brand two winter boots", tail="winter camping"))
    kg.add(_triple(tail="hiking"))
    roots = kg.tail_hierarchy()
    labels = {node.label for node in roots}
    assert labels == {"camping", "hiking"}
    camping = next(node for node in roots if node.label == "camping")
    assert [child.label for child in camping.children] == ["winter camping"]
    winter = camping.children[0]
    assert "winter boots" in winter.product_concepts
    assert camping.depth() == 2


def test_tail_hierarchy_domain_filter():
    kg = KnowledgeGraph()
    kg.add(_triple())
    kg.add(_triple(domain="Electronics", tail="streaming"))
    roots = kg.tail_hierarchy(domain="Electronics")
    assert [node.label for node in roots] == ["streaming"]


def test_pipeline_kg_invariants(pipeline_result):
    kg = pipeline_result.kg
    stats = kg.stats()
    assert stats.edges == len(kg)
    assert stats.domains == 18
    assert stats.relations >= 10
    for triple in kg.triples()[:100]:
        assert triple.plausibility > 0.5  # critic threshold applied
