"""Property-based invariants of the knowledge-graph container."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple

_relations = st.sampled_from(list(Relation))
_texts = st.text(alphabet="abcde ", min_size=1, max_size=10).map(str.strip).filter(bool)


@st.composite
def triples(draw):
    return KnowledgeTriple(
        head=draw(_texts),
        relation=draw(_relations),
        tail=draw(_texts),
        domain=draw(st.sampled_from(["Electronics", "Pet Supplies"])),
        behavior=draw(st.sampled_from(["co-buy", "search-buy"])),
        plausibility=draw(st.floats(0, 1)),
        typicality=draw(st.floats(0, 1)),
        support=draw(st.integers(1, 5)),
    )


@given(st.lists(triples(), max_size=30))
@settings(max_examples=50, deadline=None)
def test_size_equals_distinct_keys(batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    assert len(kg) == len({t.key for t in batch})


@given(st.lists(triples(), max_size=30))
@settings(max_examples=50, deadline=None)
def test_support_is_conserved(batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    assert sum(t.support for t in kg.triples()) == sum(t.support for t in batch)


@given(st.lists(triples(), max_size=30))
@settings(max_examples=50, deadline=None)
def test_merge_keeps_max_scores(batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    best = {}
    for triple in batch:
        current = best.get(triple.key, 0.0)
        best[triple.key] = max(current, triple.plausibility)
    for triple in kg.triples():
        assert triple.plausibility == best[triple.key]


@given(st.lists(triples(), max_size=30))
@settings(max_examples=50, deadline=None)
def test_insertion_order_invariance(batch):
    forward = KnowledgeGraph()
    forward.extend(batch)
    backward = KnowledgeGraph()
    backward.extend(list(reversed(batch)))
    assert {t.key: (t.support, t.plausibility) for t in forward.triples()} == {
        t.key: (t.support, t.plausibility) for t in backward.triples()
    }


@given(st.lists(triples(), max_size=30))
@settings(max_examples=30, deadline=None)
def test_stats_consistent_with_contents(batch):
    kg = KnowledgeGraph()
    kg.extend(batch)
    stats = kg.stats()
    assert stats.edges == len(kg)
    assert stats.relations == len({t.relation for t in kg.triples()})
    assert stats.domains == len({t.domain for t in kg.triples()})
    per_domain_behavior = sum(
        kg.edges_for(domain, behavior)
        for domain in ("Electronics", "Pet Supplies")
        for behavior in ("co-buy", "search-buy")
    )
    assert per_domain_behavior == stats.edges
