"""End-to-end pipeline invariants (no LM finetuning; see integration tests
for the full run including COSMO-LM)."""

import math

import pytest


def test_artifacts_present(pipeline_result):
    assert pipeline_result.samples
    assert pipeline_result.candidates
    assert pipeline_result.filtered
    assert pipeline_result.annotated_candidates
    assert len(pipeline_result.annotations) == len(pipeline_result.annotated_candidates)
    assert len(pipeline_result.kg) > 0


def test_annotation_budget_split(pipeline_result):
    budget = pipeline_result.config.annotation_budget
    assert len(pipeline_result.annotated_candidates) <= budget
    by_behavior = {}
    for candidate in pipeline_result.annotated_candidates:
        by_behavior.setdefault(candidate.sample.behavior, []).append(candidate)
    for behavior, group in by_behavior.items():
        assert len(group) <= budget // 2 + 1


def test_table4_shape(pipeline_result):
    ratios = pipeline_result.quality_ratios
    assert set(ratios) == {"co-buy", "search-buy"}
    for behavior, values in ratios.items():
        assert 0.0 <= values["typicality"] <= values["plausibility"] <= 1.0
    # The paper's shape: search-buy clearly more typical than co-buy.
    assert ratios["search-buy"]["typicality"] > ratios["co-buy"]["typicality"]


def test_audit_accuracy_above_90(pipeline_result):
    assert pipeline_result.audit.accuracy > 0.9


def test_filter_report_consistency(pipeline_result):
    report = pipeline_result.filter_report
    assert report.input_count == len(pipeline_result.candidates)
    assert report.kept == len(pipeline_result.filtered)
    assert report.kept + sum(report.dropped.values()) == report.input_count


def test_critic_accuracy_beats_chance(pipeline_result):
    accuracy = pipeline_result.critic_accuracy
    assert accuracy["plausibility"] > 0.5 or math.isnan(accuracy["plausibility"])


def test_kg_edges_pass_critic_threshold(pipeline_result):
    threshold = pipeline_result.config.critic.keep_threshold
    for triple in pipeline_result.kg.triples():
        assert triple.plausibility > threshold


def test_table3_bookkeeping(pipeline_result):
    pair_counts = pipeline_result.behavior_pair_counts()
    annotation_counts = pipeline_result.annotation_counts()
    assert sum(pair_counts.values()) == len(pipeline_result.samples)
    assert sum(annotation_counts.values()) == len(pipeline_result.annotated_candidates)
    # Annotations only for sampled behaviors.
    for key in annotation_counts:
        assert key in pair_counts


def test_kg_covers_all_domains(pipeline_result):
    assert pipeline_result.kg.stats().domains == 18


def test_teacher_latency_tracked(pipeline_result):
    total = pipeline_result.teacher_latency.total_simulated_s
    assert total > 0
    per_candidate = total / len(pipeline_result.candidates)
    # A 30B-parameter model at ~0.45 s/token: whole seconds per candidate.
    assert per_candidate > 0.5
