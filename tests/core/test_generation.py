"""Candidate harvesting: prompts, parsing, rotation."""

import pytest

from repro.core.generation import build_prompt, generate_candidates
from repro.core.relations import SEED_RELATIONS
from repro.llm import TeacherLLM


def test_build_prompt_dispatches_by_behavior(world, pipeline_result):
    samples = pipeline_result.samples
    cobuy = next(s for s in samples if s.behavior == "co-buy")
    searchbuy = next(s for s in samples if s.behavior == "search-buy")
    assert build_prompt(world, cobuy).behavior == "co-buy"
    assert build_prompt(world, searchbuy).behavior == "search-buy"


def test_candidates_per_sample(pipeline_result, world):
    samples = pipeline_result.samples[:10]
    teacher = TeacherLLM(world, seed=1)
    candidates = generate_candidates(world, teacher, samples, candidates_per_sample=4, seed=1)
    assert len(candidates) == 40


def test_most_candidates_parse(pipeline_result):
    parsed = sum(c.parsed for c in pipeline_result.candidates)
    assert parsed / len(pipeline_result.candidates) > 0.7


def test_candidate_ids_unique(pipeline_result):
    ids = [c.candidate_id for c in pipeline_result.candidates]
    assert len(ids) == len(set(ids))


def test_seed_relation_rotation(world, pipeline_result):
    samples = pipeline_result.samples[: len(SEED_RELATIONS)]
    prompts = [
        build_prompt(world, sample, seed_relation=SEED_RELATIONS[i % 4])
        for i, sample in enumerate(samples)
    ]
    questions = {p.prompt_text.split("Question: ")[1].split("\n")[0] for p in prompts}
    assert len(questions) == 4


def test_truth_preserved_on_candidates(pipeline_result):
    for candidate in pipeline_result.candidates[:100]:
        assert candidate.truth is not None
        assert candidate.truth.quality
