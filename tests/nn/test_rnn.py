"""GRU correctness: shapes, masking, and gradient flow through time."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, Tensor
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(0, "rnn-test")


def test_cell_output_shape_and_range(rng):
    cell = GRUCell(4, 6, rng)
    h = cell(Tensor(np.ones((3, 4))), Tensor(np.zeros((3, 6))))
    assert h.shape == (3, 6)
    # A GRU state is a convex combination of h and a tanh candidate.
    assert (np.abs(h.numpy()) <= 1.0).all()


def test_gru_sequence_shapes(rng):
    gru = GRU(4, 6, rng)
    seq, final = gru(Tensor(np.random.default_rng(1).normal(size=(2, 5, 4))))
    assert seq.shape == (2, 5, 6)
    assert final.shape == (2, 6)
    assert np.allclose(seq.numpy()[:, -1, :], final.numpy())


def test_mask_freezes_state_at_padding(rng):
    gru = GRU(3, 4, rng)
    inputs = np.random.default_rng(2).normal(size=(1, 4, 3))
    mask = np.array([[True, True, False, False]])
    seq, final = gru(Tensor(inputs), mask=mask)
    # After the mask turns off, the state must stay constant.
    assert np.allclose(seq.numpy()[0, 1], seq.numpy()[0, 2])
    assert np.allclose(seq.numpy()[0, 2], seq.numpy()[0, 3])
    assert np.allclose(final.numpy()[0], seq.numpy()[0, 1])


def test_masked_prefix_equals_shorter_sequence(rng):
    gru = GRU(3, 4, rng)
    inputs = np.random.default_rng(3).normal(size=(1, 5, 3))
    full_mask = np.array([[True, True, True, False, False]])
    _, padded_final = gru(Tensor(inputs), mask=full_mask)
    _, short_final = gru(Tensor(inputs[:, :3, :]))
    assert np.allclose(padded_final.numpy(), short_final.numpy())


def test_gradients_flow_through_time(rng):
    gru = GRU(2, 3, rng)
    x = Tensor(np.random.default_rng(4).normal(size=(1, 6, 2)), requires_grad=True)
    _, final = gru(x)
    final.sum().backward()
    # The first timestep must receive gradient through the recurrence.
    assert np.abs(x.grad[0, 0]).sum() > 0


def test_gru_numerical_gradient(rng):
    gru = GRU(2, 3, rng)
    x_data = np.random.default_rng(5).normal(size=(1, 3, 2))

    def loss_value():
        _, final = gru(Tensor(x_data))
        return final.sum().item()

    param = gru.cell.w_ih
    _, final = gru(Tensor(x_data))
    final.sum().backward()
    analytic = param.grad[0, 0]
    eps = 1e-6
    original = param.data[0, 0]
    param.data[0, 0] = original + eps
    up = loss_value()
    param.data[0, 0] = original - eps
    down = loss_value()
    param.data[0, 0] = original
    assert abs((up - down) / (2 * eps) - analytic) < 1e-5
