"""Autograd engine correctness: analytic vs numerical gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad, vocab_scatter


def numerical_grad(fn, array, index, eps=1e-6):
    """Central-difference derivative of fn() w.r.t. array[index]."""
    original = array[index]
    array[index] = original + eps
    up = fn()
    array[index] = original - eps
    down = fn()
    array[index] = original
    return (up - down) / (2 * eps)


def check_gradient(build_loss, tensor, indices):
    tensor.grad = None  # isolate from earlier checks on the same tensor
    loss = build_loss()
    loss.backward()
    analytic = tensor.grad.copy()
    for index in indices:
        numeric = numerical_grad(lambda: build_loss().item(), tensor.data, index)
        assert abs(numeric - analytic[index]) < 1e-5, (index, numeric, analytic[index])


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_add_mul_gradients(rng):
    x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    y = rng.normal(size=(3, 4))
    check_gradient(lambda: ((x * y + x) * x).sum(), x, [(0, 0), (2, 3), (1, 2)])


def test_broadcast_add_gradient(rng):
    x = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
    other = rng.normal(size=(3, 4))
    check_gradient(lambda: (x + other).sum(), x, [(0, 0), (0, 3)])
    # Gradient of a broadcast add sums over the expanded axis.
    x.grad = None
    loss = (x + other).sum()
    loss.backward()
    assert np.allclose(x.grad, np.full((1, 4), 3.0))


def test_matmul_gradients(rng):
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    check_gradient(lambda: (a @ b.detach()).sum(), a, [(0, 0), (2, 3)])
    check_gradient(lambda: (a.detach() @ b).sum(), b, [(0, 0), (3, 1)])


def test_batched_matmul_gradient(rng):
    a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = rng.normal(size=(2, 4, 5))
    check_gradient(lambda: (a @ b).sum(), a, [(0, 0, 0), (1, 2, 3)])


def test_nonlinearity_gradients(rng):
    x = Tensor(rng.normal(size=(5,)), requires_grad=True)
    check_gradient(lambda: (x.tanh() + x.sigmoid() + x.relu()).sum(), x, [(0,), (3,)])


def test_exp_log_gradients(rng):
    x = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
    check_gradient(lambda: (x.exp().log() * x).sum(), x, [(1,), (3,)])


def test_reduction_gradients(rng):
    x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    check_gradient(lambda: x.mean(axis=1).sum() + x.sum(axis=0).sum(), x, [(0, 0), (2, 2)])


def test_max_gradient_routes_to_argmax():
    x = Tensor(np.array([[1.0, 5.0, 3.0]]), requires_grad=True)
    x.max(axis=1).sum().backward()
    assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])


def test_getitem_gradient(rng):
    x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    check_gradient(lambda: (x[1:3, :2] * 2.0).sum(), x, [(1, 0), (2, 1), (0, 0)])


def test_concat_and_stack_gradients(rng):
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
    check_gradient(lambda: Tensor.concat([a, b.detach()], axis=1).sum(), a, [(0, 0)])
    check_gradient(lambda: Tensor.concat([a.detach(), b], axis=1).sum(), b, [(1, 1)])
    c = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    frozen = Tensor(c.data.copy())  # independent constant copy
    check_gradient(lambda: (Tensor.stack([c, frozen], axis=0) ** 2).sum(), c, [(1, 2)])


def test_transpose_and_reshape_gradients(rng):
    x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    check_gradient(lambda: (x.T @ x).sum(), x, [(0, 0), (1, 2)])
    check_gradient(lambda: (x.reshape(3, 2) * 1.5).sum(), x, [(1, 1)])


def test_vocab_scatter_forward_and_backward():
    weights = Tensor(np.array([[0.2, 0.3, 0.5], [1.0, 0.0, 0.0]]), requires_grad=True)
    ids = np.array([[1, 1, 2], [0, 3, 3]])
    out = vocab_scatter(weights, ids, vocab_size=4)
    assert np.allclose(out.data, [[0.0, 0.5, 0.5, 0.0], [1.0, 0.0, 0.0, 0.0]])
    grad_out = np.array([[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]])
    out.backward(grad_out)
    assert np.allclose(weights.grad, [[2.0, 2.0, 3.0], [5.0, 8.0, 8.0]])


def test_no_grad_blocks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * 2.0).sum()
    assert not y.requires_grad


def test_backward_requires_scalar_or_grad():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2).backward()


def test_backward_on_non_grad_tensor_raises():
    x = Tensor(np.ones(3))
    with pytest.raises(RuntimeError):
        x.backward()


@given(st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_elementwise_grad_matches_numeric_for_random_shapes(rows, cols):
    rng = np.random.default_rng(rows * 10 + cols)
    x = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    y = rng.normal(size=(rows, cols))

    def loss():
        return ((x * y).tanh() + x.sigmoid()).sum()

    loss_val = loss()
    loss_val.backward()
    analytic = x.grad[0, 0]
    numeric = numerical_grad(lambda: loss().item(), x.data, (0, 0))
    assert abs(analytic - numeric) < 1e-5
