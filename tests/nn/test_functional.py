"""Functional ops: softmax/cross-entropy/BCE correctness and stability."""

import numpy as np
import pytest

from repro.nn import Tensor, binary_cross_entropy_with_logits, cross_entropy, mse_loss, softmax
from repro.nn.functional import dropout, log_softmax


def test_softmax_rows_sum_to_one():
    logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
    probs = softmax(logits).numpy()
    assert np.allclose(probs.sum(axis=-1), 1.0)
    assert (probs >= 0).all()


def test_softmax_handles_large_logits():
    probs = softmax(Tensor(np.array([[1e4, 0.0, -1e4]]))).numpy()
    assert np.isfinite(probs).all()
    assert probs[0, 0] == pytest.approx(1.0)


def test_log_softmax_matches_log_of_softmax():
    logits = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
    assert np.allclose(log_softmax(logits).numpy(), np.log(softmax(logits).numpy()))


def test_cross_entropy_matches_manual():
    logits_arr = np.array([[2.0, 0.5, -1.0], [0.0, 0.0, 0.0]])
    targets = np.array([0, 2])
    expected = -np.mean(
        [
            np.log(np.exp(2.0) / np.exp(logits_arr[0]).sum()),
            np.log(1.0 / 3.0),
        ]
    )
    loss = cross_entropy(Tensor(logits_arr), targets)
    assert loss.item() == pytest.approx(expected)


def test_cross_entropy_ignore_index_masks_positions():
    logits = Tensor(np.random.default_rng(2).normal(size=(2, 3, 5)))
    targets = np.array([[1, 2, 0], [0, 0, 0]])
    weights_loss = cross_entropy(logits, targets, ignore_index=0)
    # Only positions (0,0) and (0,1) contribute.
    manual = cross_entropy(
        Tensor(logits.numpy()[0, :2][None]), targets[0, :2][None]
    )
    assert weights_loss.item() == pytest.approx(manual.item())


def test_cross_entropy_weights():
    logits = Tensor(np.zeros((2, 2)))
    targets = np.array([0, 1])
    unweighted = cross_entropy(logits, targets)
    weighted = cross_entropy(logits, targets, weights=np.array([1.0, 0.0]))
    assert unweighted.item() == pytest.approx(np.log(2))
    assert weighted.item() == pytest.approx(np.log(2))


def test_bce_with_logits_matches_manual_and_is_stable():
    logits = Tensor(np.array([[0.0], [100.0], [-100.0]]))
    targets = np.array([[1.0], [1.0], [0.0]])
    loss = binary_cross_entropy_with_logits(logits, targets)
    assert np.isfinite(loss.item())
    assert loss.item() == pytest.approx(np.log(2) / 3, abs=1e-6)


def test_mse_loss():
    pred = Tensor(np.array([1.0, 2.0]))
    assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)


def test_dropout_identity_when_eval_or_zero_rate():
    rng = np.random.default_rng(3)
    x = Tensor(np.ones((4, 4)))
    assert np.array_equal(dropout(x, 0.5, rng, training=False).numpy(), x.numpy())
    assert np.array_equal(dropout(x, 0.0, rng, training=True).numpy(), x.numpy())


def test_dropout_preserves_expectation():
    rng = np.random.default_rng(4)
    x = Tensor(np.ones((200, 200)))
    dropped = dropout(x, 0.3, rng, training=True).numpy()
    assert dropped.mean() == pytest.approx(1.0, abs=0.02)
