"""Optimizers actually optimize; gradient clipping scales correctly."""

import numpy as np
import pytest

from repro.nn import MLP, SGD, Adam, AdamW, Tensor, clip_grad_norm, cross_entropy
from repro.utils.rng import spawn_rng


def _train(optimizer_factory, steps=120):
    rng = spawn_rng(0, "optim-test")
    model = MLP([4, 8, 3], rng)
    gen = np.random.default_rng(1)
    x = gen.normal(size=(16, 4))
    y = gen.integers(0, 3, size=16)
    optimizer = optimizer_factory(model.parameters())
    first = cross_entropy(model(Tensor(x)), y).item()
    for _ in range(steps):
        loss = cross_entropy(model(Tensor(x)), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return first, cross_entropy(model(Tensor(x)), y).item()


def test_sgd_reduces_loss():
    first, last = _train(lambda params: SGD(params, lr=0.5))
    assert last < first * 0.5


def test_sgd_momentum_reduces_loss():
    first, last = _train(lambda params: SGD(params, lr=0.2, momentum=0.9))
    assert last < first * 0.5


def test_adam_reduces_loss():
    first, last = _train(lambda params: Adam(params, lr=1e-2))
    assert last < first * 0.2


def test_adamw_reduces_loss_with_decay():
    first, last = _train(lambda params: AdamW(params, lr=1e-2, weight_decay=1e-3))
    assert last < first * 0.2


def test_adamw_decay_shrinks_unused_weights():
    rng = spawn_rng(2, "decay")
    model = MLP([2, 2], rng)
    optimizer = AdamW(model.parameters(), lr=1e-2, weight_decay=0.1)
    before = np.abs(model.parameters()[0].data).sum()
    for _ in range(50):
        # No gradients: only the decoupled decay acts.
        optimizer.zero_grad()
        for param in model.parameters():
            param.grad = np.zeros_like(param.data)
        optimizer.step()
    after = np.abs(model.parameters()[0].data).sum()
    assert after < before


def test_clip_grad_norm_scales_down():
    rng = spawn_rng(3, "clip")
    model = MLP([3, 3], rng)
    for param in model.parameters():
        param.grad = np.full_like(param.data, 10.0)
    norm_before = clip_grad_norm(model.parameters(), max_norm=1.0)
    assert norm_before > 1.0
    total = sum(float(np.sum(p.grad**2)) for p in model.parameters())
    assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)


def test_clip_grad_norm_noop_below_threshold():
    rng = spawn_rng(4, "clip2")
    model = MLP([2, 2], rng)
    for param in model.parameters():
        param.grad = np.full_like(param.data, 1e-4)
    grads_before = [p.grad.copy() for p in model.parameters()]
    clip_grad_norm(model.parameters(), max_norm=10.0)
    for before, param in zip(grads_before, model.parameters()):
        assert np.array_equal(before, param.grad)


def test_optimizer_skips_parameters_without_grad():
    rng = spawn_rng(5, "skip")
    model = MLP([2, 2], rng)
    optimizer = Adam(model.parameters(), lr=0.1)
    data_before = [p.data.copy() for p in model.parameters()]
    optimizer.step()  # no gradients computed
    for before, param in zip(data_before, model.parameters()):
        assert np.array_equal(before, param.data)
