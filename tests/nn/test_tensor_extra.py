"""Additional autograd coverage: division, power, numerical stability."""

import numpy as np
import pytest

from repro.nn import Tensor


def _numeric(fn, array, index, eps=1e-6):
    original = array[index]
    array[index] = original + eps
    up = fn()
    array[index] = original - eps
    down = fn()
    array[index] = original
    return (up - down) / (2 * eps)


def test_division_gradients_both_operands():
    rng = np.random.default_rng(0)
    a = Tensor(rng.uniform(1, 2, size=(3,)), requires_grad=True)
    b = Tensor(rng.uniform(1, 2, size=(3,)), requires_grad=True)
    (a / b).sum().backward()
    for tensor, other, numer in ((a, b, True), (b, a, False)):
        grad = tensor.grad.copy()
        tensor.grad = None
        numeric = _numeric(lambda: (a / b).sum().item(), tensor.data, (1,))
        assert abs(grad[1] - numeric) < 1e-6


def test_rtruediv_and_rsub():
    x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
    y = (1.0 / x).sum() + (10.0 - x).sum()
    y.backward()
    expected = -1.0 / x.data**2 - 1.0
    assert np.allclose(x.grad, expected)


def test_pow_gradient():
    x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
    (x**3).sum().backward()
    assert np.allclose(x.grad, 3 * x.data**2)


def test_sqrt_via_pow():
    x = Tensor(np.array([4.0, 9.0]), requires_grad=True)
    x.sqrt().sum().backward()
    assert np.allclose(x.grad, 0.5 / np.sqrt(x.data))


def test_sigmoid_extreme_inputs_stay_finite():
    x = Tensor(np.array([-500.0, 0.0, 500.0]), requires_grad=True)
    out = x.sigmoid()
    assert np.isfinite(out.numpy()).all()
    out.sum().backward()
    assert np.isfinite(x.grad).all()


def test_grad_accumulates_across_backward_calls():
    x = Tensor(np.ones(2), requires_grad=True)
    (x * 2).sum().backward()
    (x * 3).sum().backward()
    assert np.allclose(x.grad, [5.0, 5.0])


def test_detach_breaks_graph_but_shares_data():
    x = Tensor(np.ones(2), requires_grad=True)
    d = x.detach()
    assert not d.requires_grad
    assert d.data is x.data


def test_item_and_len():
    scalar = Tensor(np.array(3.5))
    assert scalar.item() == 3.5
    vector = Tensor(np.zeros(4))
    assert len(vector) == 4


def test_same_tensor_used_twice_accumulates_within_one_backward():
    x = Tensor(np.array([2.0]), requires_grad=True)
    (x * x).sum().backward()  # d/dx x^2 = 2x
    assert np.allclose(x.grad, [4.0])
