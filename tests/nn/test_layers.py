"""Layers, module traversal, and state (de)serialization."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear, Sequential, Tensor
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(0, "layers-test")


def test_linear_shapes_and_bias(rng):
    layer = Linear(5, 3, rng)
    out = layer(Tensor(np.ones((2, 5))))
    assert out.shape == (2, 3)
    no_bias = Linear(5, 3, rng, bias=False)
    assert no_bias.bias is None
    assert len(no_bias.parameters()) == 1


def test_embedding_padding_row_is_zero(rng):
    emb = Embedding(10, 4, rng, padding_idx=0)
    assert np.allclose(emb.weight.data[0], 0.0)
    out = emb(np.array([[0, 3], [5, 0]]))
    assert out.shape == (2, 2, 4)
    assert np.allclose(out.numpy()[0, 0], 0.0)


def test_embedding_gradient_accumulates_per_row(rng):
    emb = Embedding(6, 3, rng)
    out = emb(np.array([2, 2, 4]))
    out.sum().backward()
    assert np.allclose(emb.weight.grad[2], 2.0)
    assert np.allclose(emb.weight.grad[4], 1.0)
    assert np.allclose(emb.weight.grad[1], 0.0)


def test_layernorm_normalizes_last_axis():
    ln = LayerNorm(8)
    x = Tensor(np.random.default_rng(1).normal(3.0, 5.0, size=(4, 8)))
    out = ln(x).numpy()
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_mlp_structure_and_forward(rng):
    mlp = MLP([6, 4, 2], rng)
    out = mlp(Tensor(np.ones((3, 6))))
    assert out.shape == (3, 2)
    with pytest.raises(ValueError):
        MLP([5], rng)


def test_sequential_runs_in_order(rng):
    model = Sequential(Linear(4, 4, rng), Linear(4, 2, rng))
    assert model(Tensor(np.ones((1, 4)))).shape == (1, 2)


def test_named_parameters_recurse_through_containers(rng):
    model = Sequential(Linear(3, 3, rng), MLP([3, 2], rng))
    names = [name for name, _ in model.named_parameters()]
    assert any("modules.0.weight" in name for name in names)
    assert any("modules.1.net" in name for name in names)


def test_num_parameters_counts_scalars(rng):
    layer = Linear(4, 3, rng)
    assert layer.num_parameters() == 4 * 3 + 3


def test_state_dict_roundtrip(rng):
    model = MLP([4, 3, 2], rng)
    state = model.state_dict()
    clone = MLP([4, 3, 2], spawn_rng(99, "other"))
    before = clone(Tensor(np.ones((1, 4)))).numpy().copy()
    clone.load_state_dict(state)
    after = clone(Tensor(np.ones((1, 4)))).numpy()
    reference = model(Tensor(np.ones((1, 4)))).numpy()
    assert not np.allclose(before, reference)
    assert np.allclose(after, reference)


def test_load_state_dict_validates_keys_and_shapes(rng):
    model = Linear(3, 2, rng)
    state = model.state_dict()
    state["extra"] = np.zeros(1)
    with pytest.raises(KeyError):
        model.load_state_dict(state)
    bad = model.state_dict()
    bad["weight"] = np.zeros((5, 5))
    with pytest.raises(ValueError):
        model.load_state_dict(bad)


def test_save_load_npz(tmp_path, rng):
    model = MLP([3, 3], rng)
    path = str(tmp_path / "model.npz")
    model.save(path)
    other = MLP([3, 3], spawn_rng(123, "fresh"))
    other.load(path)
    x = Tensor(np.ones((1, 3)))
    assert np.allclose(model(x).numpy(), other(x).numpy())


def test_train_eval_propagates_to_submodules(rng):
    model = Sequential(Dropout(0.5, rng), MLP([2, 2], rng, dropout_rate=0.5))
    model.eval()
    assert not model.modules[0].training
    model.train()
    assert model.modules[0].training


def test_zero_grad_clears_all(rng):
    model = MLP([3, 2], rng)
    out = model(Tensor(np.ones((1, 3)))).sum()
    out.backward()
    assert any(p.grad is not None for p in model.parameters())
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())
