"""Attention blocks: shapes, masking, residuals."""

import numpy as np
import pytest

from repro.nn import AdditiveAttention, SelfAttention, Tensor, scaled_dot_product_attention
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(0, "attention-test")


def test_scaled_dot_product_shapes():
    gen = np.random.default_rng(1)
    q = Tensor(gen.normal(size=(2, 4, 8)))
    k = Tensor(gen.normal(size=(2, 4, 8)))
    v = Tensor(gen.normal(size=(2, 4, 8)))
    out = scaled_dot_product_attention(q, k, v)
    assert out.shape == (2, 4, 8)


def test_masked_positions_get_no_weight():
    gen = np.random.default_rng(2)
    q = Tensor(gen.normal(size=(1, 2, 4)))
    k = Tensor(gen.normal(size=(1, 3, 4)))
    # Distinctive values in the masked position: if it leaked, output moves.
    v_data = gen.normal(size=(1, 3, 4))
    v_data[0, 2] = 1e3
    mask = np.array([[[True, True, False], [True, True, False]]])
    out = scaled_dot_product_attention(q, k, Tensor(v_data), mask=mask)
    assert np.abs(out.numpy()).max() < 100


def test_self_attention_residual_and_shape(rng):
    block = SelfAttention(6, rng)
    x = Tensor(np.random.default_rng(3).normal(size=(2, 5, 6)))
    out = block(x)
    assert out.shape == (2, 5, 6)
    # Residual: zero projections would return x; with random init the
    # output must stay correlated with the input.
    corr = np.corrcoef(out.numpy().ravel(), x.numpy().ravel())[0, 1]
    assert corr > 0.5


def test_additive_attention_pools_to_context_shape(rng):
    attention = AdditiveAttention(6, rng)
    sequence = Tensor(np.random.default_rng(4).normal(size=(3, 4, 6)))
    context = Tensor(np.random.default_rng(5).normal(size=(3, 6)))
    pooled = attention(sequence, context)
    assert pooled.shape == (3, 6)


def test_additive_attention_mask_zeroes_padded_steps(rng):
    attention = AdditiveAttention(4, rng)
    gen = np.random.default_rng(6)
    sequence_data = gen.normal(size=(1, 3, 4))
    sequence_data[0, 2] = 1e3  # poison the padded position
    context = Tensor(gen.normal(size=(1, 4)))
    mask = np.array([[True, True, False]])
    pooled = attention(Tensor(sequence_data), context, mask=mask)
    assert np.abs(pooled.numpy()).max() < 100
