"""N-gram LM: perplexity ordering is what the completeness filter needs."""

import pytest

from repro.llm import NGramLanguageModel

CORPUS = [
    "it is used for camping.",
    "it is used for walking the dog.",
    "it is capable of holding snacks.",
    "it is a type of smart watch.",
    "it is used in the bedroom.",
]


@pytest.fixture(scope="module")
def model():
    return NGramLanguageModel().fit(CORPUS)


def test_unfitted_model_raises():
    with pytest.raises(RuntimeError):
        NGramLanguageModel().perplexity("anything")


def test_training_sentences_score_low(model):
    for sentence in CORPUS:
        assert model.perplexity(sentence) < 10.0


def test_incomplete_scores_higher_than_complete(model):
    complete = model.perplexity("it is used for camping")
    truncated = model.perplexity("it is used for")
    assert truncated > complete


def test_word_salad_scores_higher_than_grammatical(model):
    grammatical = model.perplexity("it is used for holding snacks")
    salad = model.perplexity("snacks for it used holding")
    assert salad > grammatical


def test_empty_text_is_infinite(model):
    assert model.perplexity("") == float("inf")


def test_log_prob_is_negative(model):
    assert model.log_prob("it is used for camping") < 0


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        NGramLanguageModel(order=3, interpolation=(0.5, 0.5))
    with pytest.raises(ValueError):
        NGramLanguageModel(order=2, interpolation=(0.5, 0.6))
