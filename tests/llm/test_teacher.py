"""Teacher LLM: quality mix, oracle consistency, latency accounting."""

from collections import Counter

import pytest

from repro.core.generation import build_prompt
from repro.core.relations import parse_predicate
from repro.core.sampling import sample_cobuy, sample_products, sample_searchbuy
from repro.behavior import simulate_cobuy, simulate_searchbuy
from repro.llm import TeacherLLM


@pytest.fixture(scope="module")
def setup(world):
    cobuy = simulate_cobuy(world, pairs_per_domain=40, seed=2)
    searchbuy = simulate_searchbuy(world, records_per_domain=50, seed=2)
    selected = sample_products(world, cobuy, searchbuy)
    samples = sample_cobuy(world, cobuy, selected) + sample_searchbuy(world, searchbuy)
    teacher = TeacherLLM(world, seed=2)
    return teacher, samples


def _generate(world, teacher, samples, behavior, n=150):
    picked = [s for s in samples if s.behavior == behavior][:n]
    outputs = []
    for sample in picked:
        prompt = build_prompt(world, sample)
        outputs.extend(teacher.generate_for(prompt, num_candidates=2))
    return outputs


def test_quality_mix_shape(world, setup):
    teacher, samples = setup
    sb = _generate(world, teacher, samples, "search-buy")
    cb = _generate(world, teacher, samples, "co-buy")
    sb_typical = sum(g.truth.quality == "typical" for g in sb) / len(sb)
    cb_typical = sum(g.truth.quality == "typical" for g in cb) / len(cb)
    # Table 4 shape: search-buy notably more typical than co-buy.
    assert sb_typical > cb_typical
    assert 0.12 < sb_typical < 0.5


def test_typical_generations_verbalize_the_true_intent(world, setup):
    teacher, samples = setup
    for generation in _generate(world, teacher, samples, "search-buy"):
        if generation.truth.quality != "typical":
            continue
        parsed = parse_predicate(generation.text)
        assert parsed is not None
        _, tail = parsed
        intent = world.intents.get(generation.truth.intent_id)
        assert tail.lower() == intent.tail.lower()


def test_implausible_comes_from_foreign_domain(world, setup):
    teacher, samples = setup
    for generation in _generate(world, teacher, samples, "co-buy"):
        if generation.truth.quality != "implausible":
            continue
        intent = world.intents.get(generation.truth.intent_id)
        # The sample's domain differs from the knowledge's domain.
        assert intent.domain != "__none__"


def test_incomplete_generations_lack_terminal_period(world, setup):
    teacher, samples = setup
    incompletes = [
        g for g in _generate(world, teacher, samples, "search-buy")
        if g.truth.quality == "incomplete"
    ]
    assert incompletes
    for generation in incompletes:
        assert not generation.text.endswith(".")


def test_latency_accumulates(world, setup):
    teacher, samples = setup
    before = teacher.latency.total_simulated_s
    outputs = _generate(world, teacher, samples, "search-buy", n=5)
    assert teacher.latency.total_simulated_s > before
    for generation in outputs:
        assert generation.latency_s > 0
        assert generation.tokens >= 1


def test_quality_classes_are_known(world, setup):
    from repro.annotation.schema import TRUTH_TABLE

    teacher, samples = setup
    qualities = Counter(
        g.truth.quality
        for g in _generate(world, teacher, samples, "co-buy")
    )
    assert set(qualities) <= set(TRUTH_TABLE)
