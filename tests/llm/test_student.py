"""Plain GRU student LM (the architecture-ablation baseline)."""

import numpy as np
import pytest

from repro.llm import StudentLM, Tokenizer


def _toy_pairs():
    rng = np.random.default_rng(0)
    colors = ["red", "blue", "green"]
    pairs = []
    for i in range(240):
        color = colors[int(rng.integers(3))]
        pairs.append((f"object {i % 5} color {color} task: say", f"it is {color}"))
        pairs.append((f"object {i % 5} color {color} task: judge",
                      "yes" if color == "red" else "no"))
    return pairs


@pytest.fixture(scope="module")
def trained():
    pairs = _toy_pairs()
    tok = Tokenizer().fit([p for p, _ in pairs] + [t for _, t in pairs])
    model = StudentLM(tok, seed=0)
    losses = model.fit(pairs, epochs=10, batch_size=32, lr=4e-3)
    return model, losses


def test_training_reduces_loss(trained):
    _, losses = trained
    assert losses[-1] < losses[0] * 0.3


def test_generation_conditions_on_task_token(trained):
    model, _ = trained
    outputs = model.decode_batch(
        ["object 1 color blue task: say", "object 1 color blue task: judge"]
    )
    assert outputs[0].text.startswith("it is")
    assert outputs[1].text.rstrip(".") in ("yes", "no")


def test_generation_conditions_on_content(trained):
    model, _ = trained
    outputs = model.decode_batch(
        [f"object 2 color {color} task: say" for color in ("red", "blue", "green")]
    )
    texts = [o.text for o in outputs]
    assert len(set(texts)) >= 2  # not mode-collapsed


def test_classify_learns_rule(trained):
    model, _ = trained
    assert model.classify("object 4 color red task: judge") == "yes"
    assert model.classify("object 4 color green task: judge") == "no"


def test_sequence_logprob_is_negative_and_ranks(trained):
    model, _ = trained
    good = model.sequence_logprob("object 1 color red task: say", "it is red")
    bad = model.sequence_logprob("object 1 color red task: say", "it is blue")
    assert good < 0
    assert good > bad


def test_generate_batch_empty():
    tok = Tokenizer().fit(["a"])
    model = StudentLM(tok, seed=0)
    assert model.decode_batch([]) == []


def test_latency_charged_per_generation(trained):
    model, _ = trained
    before = model.latency.total_simulated_s
    model.decode_batch(["object 0 color red task: say"])
    assert model.latency.total_simulated_s > before
