"""Latency model and generation records."""

import pytest

from repro.llm import Generation, GenerationTruth, LatencyModel


def test_latency_scales_with_parameters_and_tokens():
    model = LatencyModel()
    small = model.charge(parameter_count=10_000_000, tokens=10)
    large = model.charge(parameter_count=30_000_000_000, tokens=10)
    assert large > small * 100


def test_latency_accumulates_and_resets():
    model = LatencyModel()
    model.charge(1_000_000_000, 5)
    model.charge(1_000_000_000, 5)
    assert model.total_simulated_s > 0
    model.reset()
    assert model.total_simulated_s == 0.0


def test_latency_overhead_floor():
    model = LatencyModel(overhead_s=0.002)
    tiny = model.charge(parameter_count=1, tokens=1)
    assert tiny >= 0.002


def test_30b_model_costs_seconds_per_generation():
    model = LatencyModel()
    latency = model.charge(parameter_count=30_000_000_000, tokens=10)
    # The regime that makes direct online serving infeasible (§1).
    assert latency > 1.0


def test_generation_records_are_frozen():
    generation = Generation(text="x", tokens=1, latency_s=0.1,
                            truth=GenerationTruth(quality="typical"))
    with pytest.raises(AttributeError):
        generation.text = "y"
    assert generation.truth.quality == "typical"
