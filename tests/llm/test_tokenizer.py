"""Tokenizer: vocabulary, round trips, special tokens."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import Tokenizer
from repro.utils.textproc import tokenize_words


def test_specials_present_and_first():
    tok = Tokenizer()
    assert len(tok) == len(Tokenizer.SPECIALS)
    assert tok.pad_id == 0
    assert tok.token(tok.eos_id) == Tokenizer.EOS


def test_fit_and_encode_known_words():
    tok = Tokenizer().fit(["the cat sat", "the dog ran"])
    ids = tok.encode("the cat ran")
    assert tok.unk_id not in ids
    assert tok.decode(ids) == "the cat ran"


def test_unknown_words_map_to_unk():
    tok = Tokenizer().fit(["hello world"])
    ids = tok.encode("hello mars")
    assert ids[1] == tok.unk_id


def test_add_eos_flag():
    tok = Tokenizer().fit(["a b"])
    assert tok.encode("a", add_eos=True)[-1] == tok.eos_id


def test_decode_skips_specials_by_default():
    tok = Tokenizer().fit(["x y"])
    ids = [tok.bos_id, *tok.encode("x y"), tok.eos_id]
    assert tok.decode(ids) == "x y"
    assert Tokenizer.BOS in tok.decode(ids, skip_special=False)


def test_min_count_and_max_vocab():
    corpus = ["a a a b b c"]
    tok = Tokenizer().fit(corpus, min_count=2)
    assert "a" in tok and "b" in tok and "c" not in tok
    tok2 = Tokenizer().fit(corpus, max_vocab=len(Tokenizer.SPECIALS) + 1)
    assert "a" in tok2 and "b" not in tok2


def test_id_of_raises_for_unknown():
    tok = Tokenizer().fit(["a"])
    with pytest.raises(KeyError):
        tok.id_of("zzz")


@given(st.text(alphabet="abc def", min_size=0, max_size=30))
@settings(max_examples=50, deadline=None)
def test_roundtrip_for_in_vocab_text(text):
    tok = Tokenizer().fit([text])
    assert tok.decode(tok.encode(text)) == " ".join(tokenize_words(text))
