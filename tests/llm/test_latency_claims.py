"""End-to-end inference-efficiency claims at the substrate level."""

import numpy as np

from repro.llm import LatencyModel, Seq2SeqLM, StudentLM, Tokenizer


def test_student_models_report_true_parameter_counts():
    tok = Tokenizer().fit(["some small corpus of words"])
    seq2seq = Seq2SeqLM(tok, embed_dim=16, hidden_dim=24)
    plain = StudentLM(tok, embed_dim=16, hidden_dim=24)
    for model in (seq2seq, plain):
        manual = sum(p.size for p in model.parameters())
        assert model.parameter_count == manual


def test_teacher_to_student_cost_ratio_is_orders_of_magnitude():
    latency = LatencyModel()
    teacher_cost = latency.charge(30_000_000_000, tokens=10)
    tok = Tokenizer().fit(["a b c"])
    student = Seq2SeqLM(tok, embed_dim=8, hidden_dim=8)
    student_cost = latency.charge(student.parameter_count, tokens=10)
    # The per-request overhead floors the student's cost; the gap is
    # still three orders of magnitude.
    assert teacher_cost / student_cost > 1_000


def test_generation_latency_scales_with_output_length():
    tok = Tokenizer().fit(["word " * 50])
    model = Seq2SeqLM(tok, embed_dim=8, hidden_dim=8)
    short = model.decode_batch(["word"], max_new_tokens=1)[0]
    long = model.decode_batch(["word"], max_new_tokens=14)[0]
    # Latency is charged per produced token (floor of one).
    assert long.latency_s >= short.latency_s
