"""Pointer-generator seq2seq: the copy mechanism and classification."""

import numpy as np
import pytest

from repro.llm import Seq2SeqLM, Tokenizer


def _copy_pairs(n=800, n_words=120, train_targets=100):
    rng = np.random.default_rng(0)
    words = [f"w{i}" for i in range(n_words)]
    pairs = []
    for _ in range(n):
        filler = [words[int(rng.integers(n_words))] for _ in range(5)]
        target = words[int(rng.integers(train_targets))]
        position = int(rng.integers(3))
        tokens = filler[:position] + ["marker", target] + filler[position:]
        pairs.append((" ".join(tokens), f"it is {target}"))
    return pairs, words, train_targets


@pytest.fixture(scope="module")
def copy_model():
    pairs, words, train_targets = _copy_pairs()
    tok = Tokenizer().fit([p for p, _ in pairs] + [t for _, t in pairs] + words)
    model = Seq2SeqLM(tok, hidden_dim=48, seed=0)
    losses = model.fit(pairs, epochs=4, lr=4e-3)
    return model, words, train_targets, losses


def test_training_converges(copy_model):
    _, _, _, losses = copy_model
    assert losses[-1] < losses[0] * 0.2


def test_copies_unseen_targets(copy_model):
    model, words, train_targets, _ = copy_model
    rng = np.random.default_rng(1)
    correct = total = 0
    for index in range(train_targets, len(words)):
        filler = [words[int(rng.integers(len(words)))] for _ in range(5)]
        prompt = f"{filler[0]} {filler[1]} marker {words[index]} {filler[2]}"
        output = model.decode_batch([prompt])[0].text
        correct += int(output == f"it is {words[index]}.")
        total += 1
    # Pointer copying must generalize to words never seen as targets.
    assert correct / total > 0.8


def test_generate_batch_order_and_shapes(copy_model):
    model, words, _, _ = copy_model
    prompts = [f"a b marker {words[3]} c", f"a b marker {words[7]} c"]
    outputs = model.decode_batch(prompts)
    assert len(outputs) == 2
    assert words[3] in outputs[0].text
    assert words[7] in outputs[1].text


def test_sequence_logprob_prefers_copied_target(copy_model):
    model, words, _, _ = copy_model
    prompt = f"x y marker {words[5]} z"
    good = model.sequence_logprob(prompt, f"it is {words[5]}")
    bad = model.sequence_logprob(prompt, f"it is {words[9]}")
    assert good > bad


def test_classify_uses_likelihood():
    pairs = []
    rng = np.random.default_rng(2)
    for i in range(300):
        flag = "hot" if rng.random() < 0.5 else "cold"
        pairs.append((f"item {i % 7} is {flag} task: judge",
                      "yes" if flag == "hot" else "no"))
    tok = Tokenizer().fit([p for p, _ in pairs] + [t for _, t in pairs])
    model = Seq2SeqLM(tok, hidden_dim=32, seed=0)
    model.fit(pairs, epochs=6, lr=4e-3)
    assert model.classify("item 3 is hot task: judge") == "yes"
    assert model.classify("item 3 is cold task: judge") == "no"


def test_empty_prompt_list():
    tok = Tokenizer().fit(["a"])
    model = Seq2SeqLM(tok, seed=0)
    assert model.decode_batch([]) == []


def test_parameter_count_positive_and_latency(copy_model):
    model, _, _, _ = copy_model
    assert model.parameter_count > 1000
    before = model.latency.total_simulated_s
    model.decode_batch(["marker w1"])
    assert model.latency.total_simulated_s > before
