"""Top-k sampled decoding and sample-and-rerank generation."""

import numpy as np
import pytest

from repro.llm import Seq2SeqLM, Tokenizer
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    colors = ["red", "blue", "green", "yellow"]
    pairs = []
    for i in range(300):
        color = colors[int(rng.integers(4))]
        pairs.append((f"box {i % 6} marker {color} task: say", f"it is {color}"))
    tok = Tokenizer().fit([p for p, _ in pairs] + [t for _, t in pairs])
    lm = Seq2SeqLM(tok, hidden_dim=48, seed=0)
    lm.fit(pairs, epochs=6, lr=4e-3)
    return lm


def test_greedy_is_deterministic(model):
    a = model.decode_batch(["box 1 marker red task: say"])[0].text
    b = model.decode_batch(["box 1 marker red task: say"])[0].text
    assert a == b


def test_sampling_with_same_rng_is_reproducible(model):
    rng_a = spawn_rng(5, "s")
    rng_b = spawn_rng(5, "s")
    a = model.decode_batch(["box 1 marker red task: say"], temperature=0.8, rng=rng_a)
    b = model.decode_batch(["box 1 marker red task: say"], temperature=0.8, rng=rng_b)
    assert a[0].text == b[0].text


def test_sampling_produces_diversity(model):
    rng = spawn_rng(6, "s")
    prompts = ["box 2 marker blue task: say"] * 12
    outputs = model.decode_batch(prompts, temperature=1.5, top_k=12, rng=rng)
    assert len({o.text for o in outputs}) > 1


def test_high_temperature_still_mostly_well_formed(model):
    rng = spawn_rng(7, "s")
    outputs = model.decode_batch(
        [f"box {i % 6} marker green task: say" for i in range(10)],
        temperature=0.7, rng=rng,
    )
    well_formed = sum(o.text.startswith("it is") for o in outputs)
    assert well_formed >= 6
