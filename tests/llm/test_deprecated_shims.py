"""Tombstone: the deprecated ``generate_knowledge`` surface.

The batch-first redesign made ``generate_batch`` (returning a
:class:`~repro.llm.interface.GenerationBatch`) the one
:class:`~repro.llm.interface.KnowledgeGenerator` entrypoint.  Every
generator keeps ``generate_knowledge`` only as a thin shim over
``generate_batch`` for offline/pipeline callers.  These tests pin the
shim contract — same outputs, no independent code path — so the
deprecated method cannot quietly grow back into a second entrypoint.
"""

import ast
import pathlib

import pytest

from repro.refresh import build_snapshot
from repro.refresh.rollout import SnapshotGenerator
from repro.serving import FaultInjector, FaultPlan, FlakyGenerator, SimClock
from repro.serving.chaos import ScriptedGenerator
from repro.serving.resilience import ResilientGenerator, RetriesExhausted

_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

PROMPTS = ["camping gear", "dog food"]


def test_scripted_shim_matches_generate_batch():
    via_shim = ScriptedGenerator().generate_knowledge(PROMPTS)
    via_batch = ScriptedGenerator().generate_batch(PROMPTS).require()
    assert via_shim == via_batch


def test_snapshot_generator_shim_matches_generate_batch():
    entries = {p: f"knowledge about {p}" for p in PROMPTS}
    snapshot = build_snapshot(entries, [])
    via_shim = SnapshotGenerator(snapshot).generate_knowledge(PROMPTS)
    via_batch = SnapshotGenerator(snapshot).generate_batch(PROMPTS).require()
    assert via_shim == via_batch
    assert [g.text for g in via_shim] == [entries[p] for p in PROMPTS]


def test_flaky_generator_shim_matches_generate_batch():
    def flaky():
        injector = FaultInjector(FaultPlan(), seed=9)  # clean plan
        return FlakyGenerator(ScriptedGenerator(), injector)

    via_shim = flaky().generate_knowledge(PROMPTS)
    via_batch = flaky().generate_batch(PROMPTS).require()
    assert via_shim == via_batch


def test_resilient_shim_returns_generations_or_raises():
    healthy = ResilientGenerator(ScriptedGenerator(), clock=SimClock())
    outputs = healthy.generate_knowledge(PROMPTS)
    assert [g.text for g in outputs] == [
        ScriptedGenerator.knowledge_for(p) for p in PROMPTS]

    injector = FaultInjector(FaultPlan(error_rate=1.0), seed=9)
    broken = ResilientGenerator(
        FlakyGenerator(ScriptedGenerator(), injector), clock=SimClock())
    # The batch entrypoint reports partial failure; the deprecated
    # all-or-nothing shim converts it to the legacy exception.
    assert not broken.generate_batch(PROMPTS).ok
    with pytest.raises(RetriesExhausted):
        broken.generate_knowledge(PROMPTS)


def test_every_generate_knowledge_definition_sits_beside_generate_batch():
    """Static sweep: no class may define the deprecated shim without
    also defining the batch entrypoint it is supposed to wrap."""
    offenders = []
    for path in sorted(_SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {child.name for child in node.body
                       if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))}
            if "generate_knowledge" in methods and "generate_batch" not in methods:
                offenders.append(f"{path.relative_to(_SRC)}:{node.name}")
    assert offenders == []
