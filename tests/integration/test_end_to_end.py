"""Full-system integration: pipeline with COSMO-LM, serving, applications.

These run a genuinely finetuned (small) COSMO-LM, so they are the slowest
tests in the suite; everything trains at reduced scale.
"""

import numpy as np
import pytest

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.core.cosmo_lm import CosmoLM
from repro.core.relations import parse_predicate
from repro.serving import CosmoService, ServeRequest


def _handle(service, query):
    return service.serve(ServeRequest(query=query)).text


@pytest.fixture(scope="module")
def full_result():
    config = PipelineConfig(
        seed=21,
        world=WorldConfig(seed=21, products_per_domain=24,
                          broad_queries_per_domain=10, specific_queries_per_domain=10),
        cobuy_pairs_per_domain=30,
        searchbuy_records_per_domain=40,
        annotation_budget=400,
        lm=CosmoLMConfig(epochs=10, hidden_dim=64),
        finetune_lm=True,
        expand_with_lm=True,
    )
    return CosmoPipeline(config).run()


def test_cosmo_lm_generates_parseable_knowledge(full_result):
    lm = full_result.cosmo_lm
    samples = full_result.samples[:60]
    prompts = [lm.prompt_for_sample(full_result.world, s) for s in samples]
    generations = lm.generate_knowledge(prompts)
    parsed = sum(parse_predicate(g.text) is not None for g in generations)
    assert parsed / len(generations) > 0.6


def test_cosmo_lm_label_prediction_runs(full_result):
    lm = full_result.cosmo_lm
    sample = full_result.samples[0]
    prompt = lm.prompt_for_sample(full_result.world, sample)
    prediction = lm.predict_typicality(prompt, "it is used for camping")
    assert prediction in ("yes", "no")


def test_lm_expansion_added_edges(full_result):
    # The KG contains both refined teacher edges and LM-expanded edges.
    assert len(full_result.kg) > 0
    assert full_result.lm_latency.total_simulated_s > 0


def test_student_is_orders_of_magnitude_cheaper(full_result):
    teacher_total = full_result.teacher_latency.total_simulated_s
    teacher_per = teacher_total / len(full_result.candidates)
    lm = full_result.cosmo_lm
    before = lm.latency.total_simulated_s
    generations = lm.generate_knowledge(
        [lm.prompt_for_sample(full_result.world, s) for s in full_result.samples[:20]]
    )
    student_per = (lm.latency.total_simulated_s - before) / len(generations)
    assert teacher_per / max(student_per, 1e-9) > 100


def test_judge_generations_quality_fields(full_result):
    lm = full_result.cosmo_lm
    samples = [s for s in full_result.samples if s.behavior == "search-buy"][:50]
    texts = [g.text for g in lm.generate_knowledge(
        [lm.prompt_for_sample(full_result.world, s) for s in samples])]
    quality = CosmoLM.judge_generations(full_result.world, samples, texts)
    assert quality.total == 50
    assert 0 <= quality.typical <= quality.plausible <= quality.parsed <= 50


def test_serving_cosmo_lm_end_to_end(full_result):
    lm = full_result.cosmo_lm
    world = full_result.world
    query = next(
        q for q in world.queries.broad()
        if world.catalog.serving_intent(q.intent_id)
    )
    product = world.catalog.serving_intent(query.intent_id)[0]

    def prompt_builder(query_text):
        return lm.searchbuy_prompt(query_text, product.title, product.domain,
                                   product_type=product.product_type)

    service = CosmoService(lm, prompt_builder=prompt_builder)
    assert _handle(service, query.text) == ""
    service.run_batch()
    response = _handle(service, query.text)
    assert response  # now cached
    assert service.cache.stats.hit_rate > 0
    record = service.features.get(query.text)
    assert record is not None


def test_pipeline_reproducible_with_same_seed():
    config = PipelineConfig(
        seed=33,
        world=WorldConfig(seed=33, products_per_domain=12,
                          broad_queries_per_domain=6, specific_queries_per_domain=6),
        cobuy_pairs_per_domain=10,
        searchbuy_records_per_domain=12,
        annotation_budget=80,
        finetune_lm=False,
        expand_with_lm=False,
    )
    first = CosmoPipeline(config).run()
    second = CosmoPipeline(config).run()
    assert len(first.kg) == len(second.kg)
    assert first.quality_ratios == second.quality_ratios
    assert [c.text for c in first.candidates[:50]] == [c.text for c in second.candidates[:50]]
