"""CLI: argument parsing and the KG build/inspect flow."""

import pytest

from repro.cli import build_parser, main
from repro.core.kg_io import load_kg


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_build_kg_writes_file(tmp_path, capsys):
    out = tmp_path / "kg.jsonl"
    code = main([
        "build-kg", "--seed", "3", "--scale", "0.12",
        "--lm-epochs", "1", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    kg = load_kg(out)
    assert len(kg) > 0
    captured = capsys.readouterr().out
    assert "nodes" in captured and "Annotated quality" in captured


def test_inspect_kg(tmp_path, capsys):
    out = tmp_path / "kg.jsonl"
    main(["build-kg", "--seed", "3", "--scale", "0.12", "--lm-epochs", "1",
          "--out", str(out)])
    capsys.readouterr()
    code = main(["inspect-kg", str(out), "--sample", "2"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Edges per domain" in captured


def test_generate_requires_arguments():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["generate", "--query", "x"])  # missing required


def test_obs_artifacts_valid_nested_and_deterministic(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace, validate_snapshot

    def run(tag):
        trace = tmp_path / f"trace-{tag}.json"
        metrics = tmp_path / f"metrics-{tag}.json"
        code = main([
            "obs", "--seed", "3", "--scale", "0.12", "--lm-epochs", "1",
            "--requests", "120", "--out-trace", str(trace),
            "--out-metrics", str(metrics),
        ])
        assert code == 0
        return trace.read_bytes(), metrics.read_bytes()

    trace_a, metrics_a = run("a")
    trace_b, metrics_b = run("b")
    # Simulated-time artifacts replay byte-identically for a fixed seed.
    assert trace_a == trace_b
    assert metrics_a == metrics_b

    trace = json.loads(trace_a)
    validate_chrome_trace(trace)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_name = {e["name"]: e for e in events}
    root = by_name["pipeline.run"]
    assert root["args"]["parent_id"] == -1
    # Stage spans nest under the pipeline root.
    stage = by_name["pipeline.teacher_generation"]
    assert stage["args"]["parent_id"] == root["args"]["span_id"]
    assert "serving.run_batch" in by_name

    validate_snapshot(json.loads(metrics_a))
    out = capsys.readouterr().out
    assert "request accounting" in out and "OK" in out
    assert "wall-clock profile" in out


def test_cluster_artifacts_valid_and_deterministic(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace, validate_snapshot

    def run(tag):
        trace = tmp_path / f"trace-{tag}.json"
        metrics = tmp_path / f"metrics-{tag}.json"
        code = main([
            "cluster", "--seed", "3", "--replicas", "3", "--requests", "400",
            "--n-queries", "60", "--fault-rate", "0.1",
            "--out-trace", str(trace), "--out-metrics", str(metrics),
        ])
        assert code == 0
        return trace.read_bytes(), metrics.read_bytes()

    trace_a, metrics_a = run("a")
    trace_b, metrics_b = run("b")
    # Everything runs on simulated clocks, so artifacts are byte-stable.
    assert trace_a == trace_b
    assert metrics_a == metrics_b

    trace = json.loads(trace_a)
    validate_chrome_trace(trace)
    # Cluster spans and every replica's serving spans share the merged
    # timeline, split by process name.
    processes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M"}
    assert {"cluster", "cluster-r0", "cluster-r1", "cluster-r2"} <= processes

    snap = json.loads(metrics_a)
    validate_snapshot(snap)
    families = {metric["name"] for metric in snap["metrics"]}
    assert "cluster_requests_total" in families
    assert "cluster_batch_flushes_total" in families
    out = capsys.readouterr().out
    assert "request accounting" in out and "OK" in out


def test_cluster_rejects_bad_fault_rate(capsys):
    assert main(["cluster", "--fault-rate", "1.5", "--requests", "1"]) == 2
    assert "--fault-rate" in capsys.readouterr().out


def test_trace_artifacts_valid_and_deterministic(tmp_path, capsys):
    import json

    from repro.obs import (
        validate_chrome_trace,
        validate_events,
        validate_trace_summary,
    )

    def run(tag):
        trace = tmp_path / f"trace-{tag}.json"
        summary = tmp_path / f"summary-{tag}.json"
        events = tmp_path / f"events-{tag}.jsonl"
        code = main([
            "trace", "--seed", "5", "--replicas", "2", "--requests", "200",
            "--n-queries", "60", "--fault-rate", "0.2",
            "--out-trace", str(trace), "--out-summary", str(summary),
            "--out-events", str(events),
        ])
        assert code == 0
        return trace.read_bytes(), summary.read_bytes(), events.read_bytes()

    first = run("a")
    second = run("b")
    # Simulated clocks + deterministic trace ids: byte-stable artifacts.
    assert first == second

    trace = json.loads(first[0])
    validate_chrome_trace(trace)
    flows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]
    assert flows, "expected cross-tracer flow links in the Chrome trace"

    summary = json.loads(first[1])
    validate_trace_summary(summary)
    assert summary["traces"], "expected retained traces in the summary"
    assert all(t["connected"] for t in summary["traces"])
    # Fault injection on: at least one degraded/fallback trace survives
    # tail sampling (flagged traces are always retained).
    assert any(t["outcome"] in ("degraded", "fallback")
               for t in summary["traces"])

    events_text = first[2].decode()
    validate_events(events_text)
    assert '"trace_id"' in events_text

    out = capsys.readouterr().out
    assert "tracing invariants: OK" in out
    assert "slowest retained trace" in out


def test_trace_rejects_bad_fault_rate(capsys):
    assert main(["trace", "--fault-rate", "-0.1", "--requests", "1"]) == 2
    assert "--fault-rate" in capsys.readouterr().out


def test_monitor_chaos_fires_and_correlates_alerts(tmp_path, capsys):
    import json

    from repro.obs import validate_alert_report, validate_events, validate_timeline

    def run(tag):
        timeline = tmp_path / f"timeline-{tag}.json"
        alerts = tmp_path / f"alerts-{tag}.json"
        events = tmp_path / f"events-{tag}.jsonl"
        code = main([
            "monitor", "--seed", "0", "--scenario", "chaos",
            "--out-timeline", str(timeline), "--out-alerts", str(alerts),
            "--out-events", str(events),
        ])
        # Fired alerts make the run exit non-zero even though they resolved.
        assert code == 1
        return timeline.read_bytes(), alerts.read_bytes(), events.read_bytes()

    first = run("a")
    second = run("b")
    # Simulated clocks end to end: artifacts are byte-stable.
    assert first == second

    validate_timeline(json.loads(first[0]))
    report = json.loads(first[1])
    validate_alert_report(report)
    assert report["fired"] is True
    availability = next(o for o in report["objectives"]
                        if o["name"] == "availability")
    (alert,) = availability["alerts"]
    assert alert["state"] == "resolved"
    assert alert["pending_ts"] < alert["firing_ts"] < alert["resolved_ts"]

    events = validate_events(first[2].decode())
    kinds = {e["kind"] for e in events}
    assert {"breaker.open", "router.drain", "router.restore",
            "service.degraded_entry", "service.degraded_exit"} <= kinds
    # The resolved alert cross-references the operational transitions
    # that explain it.
    by_id = {e["event_id"]: e for e in events}
    correlated = {by_id[i]["kind"] for i in alert["event_ids"] if i in by_id}
    assert "breaker.open" in correlated and "router.drain" in correlated
    out = capsys.readouterr().out
    assert "request accounting" in out and "OK" in out


def test_monitor_clean_scenario_stays_quiet(tmp_path, capsys):
    import json

    timeline = tmp_path / "timeline.json"
    alerts = tmp_path / "alerts.json"
    events = tmp_path / "events.jsonl"
    code = main([
        "monitor", "--seed", "0", "--scenario", "clean",
        "--requests-per-phase", "200",
        "--out-timeline", str(timeline), "--out-alerts", str(alerts),
        "--out-events", str(events),
    ])
    assert code == 0
    report = json.loads(alerts.read_text())
    assert report["fired"] is False
    assert all(not o["alerts"] for o in report["objectives"])
    capsys.readouterr()


def test_lint_subcommand_delegates_to_cosmolint(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("import numpy as np\nr = np.random.default_rng(1)\n")
    assert main(["lint", str(dirty)]) == 1
    assert "[unscoped-rng]" in capsys.readouterr().out

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0


def test_rollout_healthy_completes_and_is_deterministic(tmp_path, capsys):
    import json

    from repro.obs import validate_alert_report, validate_events, validate_timeline

    def run(tag):
        timeline = tmp_path / f"timeline-{tag}.json"
        alerts = tmp_path / f"alerts-{tag}.json"
        events = tmp_path / f"events-{tag}.jsonl"
        code = main([
            "rollout", "--seed", "0", "--scenario", "healthy",
            "--out-timeline", str(timeline), "--out-alerts", str(alerts),
            "--out-events", str(events),
        ])
        assert code == 0
        return timeline.read_bytes(), alerts.read_bytes(), events.read_bytes()

    first = run("a")
    second = run("b")
    # Simulated clocks end to end: artifacts are byte-stable.
    assert first == second

    validate_timeline(json.loads(first[0]))
    report = json.loads(first[1])
    validate_alert_report(report)
    assert report["fired"] is False

    events = validate_events(first[2].decode())
    kinds = [e["kind"] for e in events]
    assert "rollout.start" in kinds
    assert "rollout.complete" in kinds
    assert "rollout.rollback_start" not in kinds
    # One atomic swap per replica (default --replicas 3).
    assert kinds.count("rollout.swap") == 3
    out = capsys.readouterr().out
    assert "Rollout state" in out and "complete" in out
    assert "request accounting" in out and "OK" in out
    assert "no alerts fired" in out


def test_rollout_poisoned_rolls_back_and_redrives(tmp_path, capsys):
    import json

    from repro.obs import validate_events

    timeline = tmp_path / "timeline.json"
    alerts = tmp_path / "alerts.json"
    events_path = tmp_path / "events.jsonl"
    code = main([
        "rollout", "--seed", "0", "--scenario", "poisoned",
        "--out-timeline", str(timeline), "--out-alerts", str(alerts),
        "--out-events", str(events_path),
    ])
    # Accounting holds and nothing mixed-version leaked, so the exit is
    # clean even though the rollout aborted: the guard doing its job is
    # not an operator error.
    assert code == 0

    events = validate_events(events_path.read_text())
    kinds = [e["kind"] for e in events]
    assert "rollout.rollback_start" in kinds
    assert "rollout.rollback_complete" in kinds
    assert "rollout.complete" not in kinds
    assert "service.redrive" in kinds
    start = next(e for e in events if e["kind"] == "rollout.rollback_start")
    assert start["attrs"]["objective"] in ("availability", "latency-p99")

    # The rollback lands while the alert is still pending, so nothing
    # ever fires: the guard acted before the page would have gone out.
    report = json.loads(alerts.read_text())
    assert report["fired"] is False
    out = capsys.readouterr().out
    assert "rolled_back" in out
    assert "rollback: objective" in out
    assert "request accounting" in out and "OK" in out


# -- kghealth drive --------------------------------------------------------
_KGHEALTH_ARGS = [
    "kghealth", "--seed", "0", "--replicas", "2", "--n-queries", "48",
    "--requests-per-phase", "400",
]


def test_kghealth_healthy_promotes_and_is_deterministic(tmp_path, capsys):
    import json

    from repro.obs import validate_events, validate_kg_health

    def run(tag):
        health = tmp_path / f"health-{tag}.json"
        events = tmp_path / f"events-{tag}.jsonl"
        code = main(_KGHEALTH_ARGS + [
            "--scenario", "healthy",
            "--out-health", str(health), "--out-events", str(events),
        ])
        assert code == 0
        return health.read_bytes(), events.read_bytes()

    first = run("a")
    second = run("b")
    # Simulated clocks and arithmetic triples: artifacts are byte-stable.
    assert first == second

    doc = json.loads(first[0])
    validate_kg_health(doc)
    assert len(doc["snapshots"]) == 2       # parent + candidate lineage
    assert len(doc["drift"]) == 1
    (gate,) = doc["gates"]
    assert gate["promote"] is True and gate["breaches"] == []
    assert doc["drift"][0]["breaches"] == []

    events = validate_events(first[1].decode())
    kinds = [e["kind"] for e in events]
    assert "rollout.gate_pass" in kinds
    assert "rollout.gate_block" not in kinds
    assert "rollout.start" in kinds and "rollout.complete" in kinds

    out = capsys.readouterr().out
    assert "gate verdict: PROMOTE" in out
    assert "no alerts fired" in out
    assert "request accounting" in out and "OK" in out


def test_kghealth_poisoned_blocks_before_first_swap(tmp_path, capsys):
    import json

    from repro.obs import validate_events, validate_kg_health

    health = tmp_path / "health.json"
    events_path = tmp_path / "events.jsonl"
    code = main(_KGHEALTH_ARGS + [
        "--scenario", "poisoned",
        "--out-health", str(health), "--out-events", str(events_path),
    ])
    # Exit 1 distinguishes "gate tripped" from exit 2 "accounting broke".
    assert code == 1

    doc = json.loads(health.read_text())
    validate_kg_health(doc)
    (gate,) = doc["gates"]
    assert gate["promote"] is False
    assert gate["breaches"]
    assert any(b.startswith("relation-mix-shift") for b in gate["breaches"])

    events = validate_events(events_path.read_text())
    kinds = [e["kind"] for e in events]
    assert "rollout.gate_block" in kinds
    assert "rollout.blocked" in kinds
    assert "rollout.start" not in kinds     # never touched a replica
    assert "rollout.swap" not in kinds

    out = capsys.readouterr().out
    assert "gate verdict: BLOCK" in out
    assert "drift breach: " in out
    # The poisoned snapshot serves perfectly — the SLO guard sees nothing.
    assert "no alerts fired" in out
    assert "blocked" in out
