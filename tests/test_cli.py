"""CLI: argument parsing and the KG build/inspect flow."""

import pytest

from repro.cli import build_parser, main
from repro.core.kg_io import load_kg


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_build_kg_writes_file(tmp_path, capsys):
    out = tmp_path / "kg.jsonl"
    code = main([
        "build-kg", "--seed", "3", "--scale", "0.12",
        "--lm-epochs", "1", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    kg = load_kg(out)
    assert len(kg) > 0
    captured = capsys.readouterr().out
    assert "nodes" in captured and "Annotated quality" in captured


def test_inspect_kg(tmp_path, capsys):
    out = tmp_path / "kg.jsonl"
    main(["build-kg", "--seed", "3", "--scale", "0.12", "--lm-epochs", "1",
          "--out", str(out)])
    capsys.readouterr()
    code = main(["inspect-kg", str(out), "--sample", "2"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Edges per domain" in captured


def test_generate_requires_arguments():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["generate", "--query", "x"])  # missing required


def test_lint_subcommand_delegates_to_cosmolint(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("import numpy as np\nr = np.random.default_rng(1)\n")
    assert main(["lint", str(dirty)]) == 1
    assert "[unscoped-rng]" in capsys.readouterr().out

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
