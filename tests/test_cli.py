"""CLI: argument parsing and the KG build/inspect flow."""

import pytest

from repro.cli import build_parser, main
from repro.core.kg_io import load_kg


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_build_kg_writes_file(tmp_path, capsys):
    out = tmp_path / "kg.jsonl"
    code = main([
        "build-kg", "--seed", "3", "--scale", "0.12",
        "--lm-epochs", "1", "--out", str(out),
    ])
    assert code == 0
    assert out.exists()
    kg = load_kg(out)
    assert len(kg) > 0
    captured = capsys.readouterr().out
    assert "nodes" in captured and "Annotated quality" in captured


def test_inspect_kg(tmp_path, capsys):
    out = tmp_path / "kg.jsonl"
    main(["build-kg", "--seed", "3", "--scale", "0.12", "--lm-epochs", "1",
          "--out", str(out)])
    capsys.readouterr()
    code = main(["inspect-kg", str(out), "--sample", "2"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Edges per domain" in captured


def test_generate_requires_arguments():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["generate", "--query", "x"])  # missing required


def test_obs_artifacts_valid_nested_and_deterministic(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace, validate_snapshot

    def run(tag):
        trace = tmp_path / f"trace-{tag}.json"
        metrics = tmp_path / f"metrics-{tag}.json"
        code = main([
            "obs", "--seed", "3", "--scale", "0.12", "--lm-epochs", "1",
            "--requests", "120", "--out-trace", str(trace),
            "--out-metrics", str(metrics),
        ])
        assert code == 0
        return trace.read_bytes(), metrics.read_bytes()

    trace_a, metrics_a = run("a")
    trace_b, metrics_b = run("b")
    # Simulated-time artifacts replay byte-identically for a fixed seed.
    assert trace_a == trace_b
    assert metrics_a == metrics_b

    trace = json.loads(trace_a)
    validate_chrome_trace(trace)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_name = {e["name"]: e for e in events}
    root = by_name["pipeline.run"]
    assert root["args"]["parent_id"] == -1
    # Stage spans nest under the pipeline root.
    stage = by_name["pipeline.teacher_generation"]
    assert stage["args"]["parent_id"] == root["args"]["span_id"]
    assert "serving.run_batch" in by_name

    validate_snapshot(json.loads(metrics_a))
    out = capsys.readouterr().out
    assert "request accounting" in out and "OK" in out
    assert "wall-clock profile" in out


def test_cluster_artifacts_valid_and_deterministic(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace, validate_snapshot

    def run(tag):
        trace = tmp_path / f"trace-{tag}.json"
        metrics = tmp_path / f"metrics-{tag}.json"
        code = main([
            "cluster", "--seed", "3", "--replicas", "3", "--requests", "400",
            "--n-queries", "60", "--fault-rate", "0.1",
            "--out-trace", str(trace), "--out-metrics", str(metrics),
        ])
        assert code == 0
        return trace.read_bytes(), metrics.read_bytes()

    trace_a, metrics_a = run("a")
    trace_b, metrics_b = run("b")
    # Everything runs on simulated clocks, so artifacts are byte-stable.
    assert trace_a == trace_b
    assert metrics_a == metrics_b

    trace = json.loads(trace_a)
    validate_chrome_trace(trace)
    # Cluster spans and every replica's serving spans share the merged
    # timeline, split by process name.
    processes = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M"}
    assert {"cluster", "cluster-r0", "cluster-r1", "cluster-r2"} <= processes

    snap = json.loads(metrics_a)
    validate_snapshot(snap)
    families = {metric["name"] for metric in snap["metrics"]}
    assert "cluster_requests_total" in families
    assert "cluster_batch_flushes_total" in families
    out = capsys.readouterr().out
    assert "request accounting" in out and "OK" in out


def test_cluster_rejects_bad_fault_rate(capsys):
    assert main(["cluster", "--fault-rate", "1.5", "--requests", "1"]) == 2
    assert "--fault-rate" in capsys.readouterr().out


def test_lint_subcommand_delegates_to_cosmolint(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text("import numpy as np\nr = np.random.default_rng(1)\n")
    assert main(["lint", str(dirty)]) == 1
    assert "[unscoped-rng]" in capsys.readouterr().out

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
