"""End-to-end request tracing through the sharded serving stack."""

import pytest

from repro.obs import EventLog, MetricsRegistry, TailSampler, TraceAnalyzer
from repro.obs.tracing import TRACE_ID_ATTR, TraceContext, chrome_trace, \
    validate_chrome_trace
from repro.serving import ClusterConfig, CosmoCluster, ServeOutcome, \
    ServeRequest
from repro.serving.chaos import ScriptedGenerator
from repro.serving.faults import GeneratorFault


class BrokenGenerator:
    """Always faults; inherits ScriptedGenerator's latency accounting."""

    def __init__(self):
        self.inner = ScriptedGenerator()
        self.latency = self.inner.latency
        self.parameter_count = self.inner.parameter_count

    def generate_batch(self, prompts):
        self.latency.charge(self.parameter_count, 1)
        raise GeneratorFault("scripted outage")


def _tracers(cluster):
    return [(cluster.config.name, cluster.tracer)] + [
        (replica_id, service.tracer)
        for replica_id, service in cluster.services.items()
    ]


def _build(generator_factory, **config_kwargs):
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    sampler = TailSampler(slowest_k=1, window_s=60.0, head_every=0)
    cluster = CosmoCluster(
        generator_factory,
        config=ClusterConfig(n_replicas=2, max_batch_size=1,
                             max_batch_delay_s=0.5, **config_kwargs),
        registry=registry, event_log=event_log, sampler=sampler,
    )
    return cluster, sampler, event_log


def test_degraded_request_produces_one_connected_flagged_trace():
    """The acceptance scenario: one request against a dead generator.

    The miss walks the whole stack — routing, cache fetch, fallback
    serve, the batch flush it triggers, the resilient generator's
    failing attempts — and every hop must land in ONE connected trace
    that is tail-retained (degraded ⇒ flagged), stamped on the result,
    the event log, and the latency histogram's exemplars.
    """
    cluster, sampler, event_log = _build(lambda i: BrokenGenerator())
    result = cluster.handle(ServeRequest(query="unseen query"))
    cluster.flush()
    sampler.flush()

    assert result.outcome is ServeOutcome.FALLBACK
    assert result.trace_id is not None

    analyzer = TraceAnalyzer(_tracers(cluster))
    assert analyzer.trace_ids() == [result.trace_id]
    assert analyzer.is_connected(result.trace_id)
    assert sampler.decisions["flagged"] == 1

    names = {node.name for node in analyzer.spans_for(result.trace_id)}
    assert "cluster.request" in names
    assert "serving.request" in names
    assert "cache.fetch" in names
    assert "serving.fallback_serve" in names
    assert "cluster.flush" in names        # max_batch_size=1: in-request
    assert "serving.run_batch" in names
    assert "resilience.attempt" in names   # the failing generator calls
    assert "resilience.backoff" in names   # ...and the retries between

    # The stage breakdown accounts for exactly the charged latency.
    breakdown = analyzer.stage_breakdown(result.trace_id)
    assert sum(breakdown.values()) == pytest.approx(result.latency_s)
    assert analyzer.duration_s(result.trace_id) == pytest.approx(
        result.latency_s)

    # Mid-request events carry the trace id.
    tagged = [e for e in event_log.events()
              if e.attrs.get(TRACE_ID_ATTR) == result.trace_id]
    assert tagged, "no event was stamped with the trace id"

    # The latency exemplar leads back to this trace.
    exemplars = cluster._latency.exemplars()
    assert any(trace_id == result.trace_id for _, trace_id, _ in exemplars)

    # And the merged export is valid, flow links included.
    payload = chrome_trace(_tracers(cluster))
    validate_chrome_trace(payload)
    flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
    assert flows, "no cross-tracer flow events in the export"


def test_result_trace_ids_are_deterministic_and_distinct():
    def build():
        return _build(lambda i: ScriptedGenerator())[0]

    first = build()
    second = build()
    ids_a = [first.handle(f"query {i}").trace_id for i in range(3)]
    ids_b = [second.handle(f"query {i}").trace_id for i in range(3)]
    assert ids_a == ids_b          # same drive, same ids
    assert len(set(ids_a)) == 3    # distinct per request


def test_caller_supplied_context_propagates_to_the_result():
    cluster, _, _ = _build(lambda i: ScriptedGenerator())
    context = TraceContext("feedbeeffeedbeef")
    result = cluster.handle(ServeRequest(query="q", trace=context))
    assert result.trace_id == "feedbeeffeedbeef"


def test_bare_and_traced_paths_account_identically():
    def drive(trace_requests):
        cluster, sampler, _ = _build(lambda i: BrokenGenerator(),
                                     trace_requests=trace_requests)
        for i in range(10):
            cluster.handle(ServeRequest(query=f"query {i % 4}"))
            cluster.clock.advance(0.01)
        cluster.flush()
        sampler.flush()
        return cluster

    traced, bare = drive(True), drive(False)
    assert traced.metrics_totals() == bare.metrics_totals()
    assert traced.availability == bare.availability
    assert traced.percentile(99) == bare.percentile(99)
    # Tracing off: no per-request spans, nothing trace-tagged (batch
    # flush spans remain — they attribute async work, not requests).
    bare_names = {s.name for s in bare.tracer.spans()}
    assert "cluster.request" not in bare_names
    assert all(s.trace_id is None for s in bare.tracer.spans())


def test_untraced_requests_set_no_trace_id():
    cluster, _, _ = _build(lambda i: ScriptedGenerator(),
                           trace_requests=False)
    result = cluster.handle(ServeRequest(query="q"))
    assert result.trace_id is None
