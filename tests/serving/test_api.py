"""Structured serving API: envelope contents, removed shims, generator protocol."""

from repro.llm import KnowledgeGenerator, StudentLM, Tokenizer
from repro.serving import (
    CosmoService,
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    ResilientGenerator,
    ServeOutcome,
    ServeRequest,
    ServeResult,
    SimClock,
)
from repro.serving.api import (
    SOURCE_CACHE_DAILY,
    SOURCE_CACHE_YEARLY,
    SOURCE_DIRECT,
    SOURCE_FALLBACK,
    SOURCE_FEATURE_STORE,
    SOURCE_LAST_GOOD,
)
from repro.serving.chaos import ScriptedGenerator


def _service(**kwargs) -> CosmoService:
    return CosmoService(ScriptedGenerator(), fallback_response="(down)",
                        name="svc", **kwargs)


# -- envelope per degradation stage ----------------------------------------
def test_serve_reports_yearly_and_daily_cache_sources():
    service = _service()
    service.cache.preload_yearly({"hot": "hot answer."})
    result = service.serve(ServeRequest(query="hot"))
    assert result == ServeResult(query="hot", text="hot answer.",
                                 outcome=ServeOutcome.FRESH,
                                 source=SOURCE_CACHE_YEARLY,
                                 latency_s=result.latency_s, replica="svc")
    assert result.served

    service.serve(ServeRequest(query="cold"))  # miss → pending
    service.run_batch()
    daily = service.serve(ServeRequest(query="cold"))
    assert daily.outcome is ServeOutcome.FRESH
    assert daily.source == SOURCE_CACHE_DAILY


def test_serve_reports_degraded_sources_and_fallback():
    service = _service()
    first = service.serve(ServeRequest(query="q"))
    assert first.outcome is ServeOutcome.FALLBACK
    assert first.source == SOURCE_FALLBACK
    assert first.text == "(down)"
    assert not first.served

    service.run_batch()
    service.clock.advance_days(1)  # daily layer expires; features survive
    stale = service.serve(ServeRequest(query="q"))
    assert stale.outcome is ServeOutcome.DEGRADED
    assert stale.source == SOURCE_FEATURE_STORE
    assert stale.text == "it is used for q."

    service.features._records.clear()
    service.clock.advance_days(1)
    last_good = service.serve(ServeRequest(query="q"))
    assert last_good.outcome is ServeOutcome.DEGRADED
    assert last_good.source == SOURCE_LAST_GOOD


def test_serve_direct_reports_source_and_measured_latency():
    service = _service()
    result = service.serve(ServeRequest(query="q", direct=True))
    assert result.outcome is ServeOutcome.FRESH
    assert result.source == SOURCE_DIRECT
    assert result.latency_s > 0.0
    assert result.replica == "svc"


def test_serve_without_enqueue_skips_the_pending_queue():
    service = _service()
    shed = service.serve(ServeRequest(query="q"), allow_enqueue=False)
    assert shed.outcome is ServeOutcome.FALLBACK
    assert service.cache.pending_size == 0  # not queued, still counted
    assert service.metrics.requests == 1


# -- removed shims (tombstone) ---------------------------------------------
def test_string_shims_are_gone():
    """The deprecated ``handle_request``/``handle_request_direct`` string
    shims were removed after a full deprecation cycle; ``serve()`` with a
    :class:`ServeRequest` is the only entry point."""
    assert not hasattr(CosmoService, "handle_request")
    assert not hasattr(CosmoService, "handle_request_direct")


def test_no_in_repo_caller_resurrects_the_shims():
    """No code under src/, benchmarks/, examples/, or tests/ calls the
    removed string shims; everything goes through serve()."""
    import ast
    from pathlib import Path

    import repro

    repo_root = Path(repro.__file__).resolve().parents[2]
    shimmed = {"handle_request", "handle_request_direct"}
    offenders = []
    for tree_root in ("src", "benchmarks", "examples", "tests"):
        for path in sorted((repo_root / tree_root).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in shimmed):
                    offenders.append(f"{path.relative_to(repo_root)}:"
                                     f"{node.lineno}")
    assert offenders == []


# -- KnowledgeGenerator protocol -------------------------------------------
def test_serving_generators_satisfy_knowledge_generator_protocol():
    scripted = ScriptedGenerator()
    flaky = FlakyGenerator(scripted, FaultInjector(FaultPlan(), seed=0))
    resilient = ResilientGenerator(scripted, SimClock())
    tokenizer = Tokenizer().fit(["winter tent camping gear"])
    student = StudentLM(tokenizer, seed=0)
    for generator in (scripted, flaky, resilient, student):
        assert isinstance(generator, KnowledgeGenerator)
        assert hasattr(generator, "latency")


def test_student_generate_knowledge_matches_generate_batch():
    tokenizer = Tokenizer().fit(["winter tent camping gear"])
    student = StudentLM(tokenizer, seed=0)
    prompts = ["winter tent"]
    batch = student.generate_batch(prompts)
    knowledge = student.generate_knowledge(prompts)
    assert [g.text for g in knowledge] == [g.text for g in batch.generations]
