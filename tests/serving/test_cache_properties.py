"""Property-based invariants of the two-layer cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import AsyncCacheStore, SimClock

_queries = st.sampled_from([f"q{i}" for i in range(12)])


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["lookup", "batch", "day", "preload"]))
        if kind in ("lookup", "preload"):
            ops.append((kind, draw(_queries)))
        else:
            ops.append((kind, None))
    return ops


@given(operations())
@settings(max_examples=80, deadline=None)
def test_cache_invariants_under_arbitrary_operations(ops):
    clock = SimClock()
    cache = AsyncCacheStore(clock)
    lookups = 0
    for kind, query in ops:
        if kind == "lookup":
            cache.lookup(query)
            lookups += 1
        elif kind == "preload":
            cache.preload_yearly({query: "answer"})
        elif kind == "batch":
            cache.apply_batch({q: "answer" for q in cache.pending_queries()})
        elif kind == "day":
            clock.advance_days(1)
    stats = cache.stats
    # Accounting: every lookup is exactly one of hit or miss.
    assert stats.layer1_hits + stats.layer2_hits + stats.misses == lookups
    assert 0.0 <= stats.hit_rate <= 1.0
    # A batched query is no longer pending.
    cache.apply_batch({q: "a" for q in cache.pending_queries()})
    assert cache.pending_queries() == []


@given(st.lists(_queries, min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_second_lookup_after_batch_always_hits(queries):
    cache = AsyncCacheStore(SimClock())
    for query in queries:
        cache.lookup(query)
    cache.apply_batch({q: "answer" for q in cache.pending_queries()})
    for query in queries:
        assert cache.lookup(query) == "answer"
