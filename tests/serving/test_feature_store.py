"""FeatureStore: structuring, versioning, and staleness observability."""

from repro.obs.metrics import MetricsRegistry
from repro.serving.clock import SimClock
from repro.serving.feature_store import FeatureStore


def test_structure_parses_relation_tail_and_strong_intent():
    record = FeatureStore.structure("tent", "it is used for camping.", refreshed_day=0)
    assert record.relation == "USED_FOR_FUNC"
    assert record.tail == "camping"
    assert record.tail_type
    assert record.strong_intent
    assert record.refreshed_day == 0


def test_structure_handles_unparseable_text():
    record = FeatureStore.structure("x", "complete gibberish", refreshed_day=2)
    assert record.relation is None and record.tail is None
    assert not record.strong_intent
    assert record.knowledge_text == "complete gibberish"


def test_put_get_roundtrip_and_containment():
    store = FeatureStore(SimClock())
    record = store.put("tent", "it is used for camping.", extras={"src": "lm"})
    assert store.get("tent") == record
    assert "tent" in store and "other" not in store
    assert len(store) == 1
    assert record.extras == {"src": "lm"}
    assert store.get("missing") is None


def test_reads_and_writes_counted_through_the_registry():
    registry = MetricsRegistry()
    store = FeatureStore(SimClock(), registry=registry, name="svc")
    store.put("a", "it is used for x.")
    store.put("b", "it is used for y.")
    store.get("a")
    store.get("nope")
    assert store.writes == 2
    assert store.reads == 2
    ops = registry.get("feature_store_ops_total")
    assert ops.labels(store="svc", op="write").value == 2
    assert ops.labels(store="svc", op="read").value == 2
    assert registry.get("feature_store_entries").labels(store="svc").value == 2


def test_records_version_by_refresh_day():
    clock = SimClock()
    store = FeatureStore(clock)
    store.put("a", "it is used for x.")
    clock.advance_days(3)
    store.put("a", "it is used for z.")  # refresh overwrites the version
    assert store.get("a").refreshed_day == 3


def test_stale_keys_and_staleness_gauge():
    clock = SimClock()
    registry = MetricsRegistry()
    store = FeatureStore(clock, registry=registry, name="svc")
    store.put("old", "it is used for x.")
    clock.advance_days(2)
    store.put("fresh", "it is used for y.")

    stale_gauge = registry.get("feature_store_stale_entries").labels(store="svc")
    assert store.stale_keys(max_age_days=1) == ["old"]
    assert stale_gauge.value == 1
    # A refresh clears the staleness, and the gauge follows.
    store.put("old", "it is used for x.")
    assert store.stale_keys(max_age_days=1) == []
    assert stale_gauge.value == 0


def test_boundary_age_is_not_stale():
    clock = SimClock()
    store = FeatureStore(clock)
    store.put("edge", "it is used for x.")
    clock.advance_days(1)
    assert store.stale_keys(max_age_days=1) == []  # age == max is still fresh
    clock.advance_days(1)
    assert store.stale_keys(max_age_days=1) == ["edge"]


def test_two_stores_share_a_registry_without_colliding():
    registry = MetricsRegistry()
    clock = SimClock()
    a = FeatureStore(clock, registry=registry, name="a")
    b = FeatureStore(clock, registry=registry, name="b")
    a.put("k", "it is used for x.")
    assert a.writes == 1
    assert b.writes == 0
