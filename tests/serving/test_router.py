"""Consistent-hash router: determinism, drain stability, failover order."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ConsistentHashRouter

KEYS = [f"key {i:03d}" for i in range(200)]


def _replica_ids(n: int) -> list[str]:
    return [f"r{i}" for i in range(n)]


# -- construction ----------------------------------------------------------
def test_router_rejects_empty_and_duplicate_replicas():
    with pytest.raises(ValueError):
        ConsistentHashRouter([])
    with pytest.raises(ValueError):
        ConsistentHashRouter(["a", "a"])
    with pytest.raises(ValueError):
        ConsistentHashRouter(["a"], vnodes=0)


def test_router_rejects_unknown_replica():
    router = ConsistentHashRouter(_replica_ids(2))
    with pytest.raises(KeyError):
        router.drain("nope")
    with pytest.raises(KeyError):
        router.is_drained("nope")


def test_cannot_drain_last_active_replica():
    router = ConsistentHashRouter(_replica_ids(2))
    router.drain("r0")
    with pytest.raises(ValueError):
        router.drain("r1")
    router.drain("r0")  # already drained: a no-op, not an error


# -- determinism (property) ------------------------------------------------
@given(
    st.integers(2, 6),
    st.integers(1, 32),
    st.integers(0, 10_000),
    st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_routing_deterministic_for_fixed_seed(n, vnodes, seed, keys):
    a = ConsistentHashRouter(_replica_ids(n), vnodes=vnodes, seed=seed)
    b = ConsistentHashRouter(_replica_ids(n), vnodes=vnodes, seed=seed)
    for key in keys:
        assert a.route(key) == b.route(key)
        assert a.preference(key) == b.preference(key)


def test_different_seeds_shard_differently():
    a = ConsistentHashRouter(_replica_ids(4), seed=0)
    b = ConsistentHashRouter(_replica_ids(4), seed=1)
    assert any(a.route(k) != b.route(k) for k in KEYS)


# -- drain stability (property) --------------------------------------------
@given(st.integers(2, 6), st.integers(0, 5), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_drain_remaps_only_the_drained_replicas_keys(n, victim_index, seed):
    router = ConsistentHashRouter(_replica_ids(n), seed=seed)
    victim = f"r{victim_index % n}"
    before = {key: router.route(key) for key in KEYS}
    router.drain(victim)
    for key, owner in before.items():
        if owner == victim:
            assert router.route(key) != victim
        else:
            assert router.route(key) == owner  # untouched
    router.restore(victim)
    assert {key: router.route(key) for key in KEYS} == before


def test_route_always_lands_on_an_active_replica():
    router = ConsistentHashRouter(_replica_ids(4), seed=3)
    router.drain("r1")
    for key in KEYS:
        assert router.route(key) in router.active
        assert "r1" not in router.preference(key)


# -- failover order --------------------------------------------------------
def test_preference_lists_each_active_replica_once_in_stable_order():
    router = ConsistentHashRouter(_replica_ids(4), seed=5)
    for key in KEYS[:50]:
        order = router.preference(key)
        assert sorted(order) == sorted(router.active)
        assert order[0] == router.route(key)
        assert router.preference(key, limit=2) == order[:2]


def test_preference_skips_drained_but_keeps_relative_order():
    router = ConsistentHashRouter(_replica_ids(4), seed=5)
    full = {key: router.preference(key) for key in KEYS[:50]}
    router.drain("r2")
    for key, order in full.items():
        expected = [r for r in order if r != "r2"]
        assert router.preference(key) == expected


# -- idempotent drain/restore (warned no-ops) ------------------------------
def _logged_router(n=3):
    from repro.obs import EventLog

    log = EventLog()
    clock = iter(float(i) for i in range(1000))
    router = ConsistentHashRouter(_replica_ids(n))
    router.attach_event_log(log, lambda: next(clock), component="test")
    return router, log


def test_double_drain_is_a_warned_noop():
    router, log = _logged_router()
    router.drain("r0")
    assignments = {key: router.route(key) for key in KEYS[:50]}
    router.drain("r0")  # rollout loops may retry a step
    assert router.is_drained("r0")
    assert {key: router.route(key) for key in KEYS[:50]} == assignments
    kinds = [e.kind for e in log.events()]
    assert kinds == ["router.drain", "router.drain_noop"]
    assert log.events()[-1].attrs["replica"] == "r0"


def test_restore_of_never_drained_replica_is_a_warned_noop():
    router, log = _logged_router()
    router.restore("r1")
    assert not router.is_drained("r1")
    assert [e.kind for e in log.events()] == ["router.restore_noop"]


def test_double_restore_warns_on_the_second_call():
    router, log = _logged_router()
    router.drain("r2")
    router.restore("r2")
    router.restore("r2")
    kinds = [e.kind for e in log.events()]
    assert kinds == ["router.drain", "router.restore", "router.restore_noop"]


def test_noop_events_still_require_a_known_replica():
    router, log = _logged_router()
    with pytest.raises(KeyError):
        router.restore("ghost")
    assert log.events() == []
