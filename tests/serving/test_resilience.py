"""Retry/backoff math, circuit-breaker state machine, resilient generation."""

import pytest

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.serving import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    ResilientGenerator,
    RetriesExhausted,
    RetryPolicy,
    SimClock,
)
from repro.utils.rng import spawn_rng


class Scripted:
    parameter_count = 1_000_000

    def __init__(self):
        self.latency = LatencyModel()

    def generate_batch(self, prompts):
        return GenerationBatch(generations=[
            Generation(text=f"it is used for {p}.", tokens=8,
                       latency_s=self.latency.charge(self.parameter_count, 8))
            for p in prompts
        ])


def _flaky(plan, seed=0):
    return FlakyGenerator(Scripted(), FaultInjector(plan, seed=seed))


# -- retry policy ----------------------------------------------------------
def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(base_backoff_s=0.05, backoff_multiplier=2.0,
                         max_backoff_s=0.3, jitter=0.0)
    assert policy.backoff_s(1) == pytest.approx(0.05)
    assert policy.backoff_s(2) == pytest.approx(0.10)
    assert policy.backoff_s(3) == pytest.approx(0.20)
    assert policy.backoff_s(4) == pytest.approx(0.30)  # capped
    assert policy.backoff_s(9) == pytest.approx(0.30)


def test_backoff_jitter_stays_within_bounds():
    policy = RetryPolicy(base_backoff_s=0.1, jitter=0.25)
    rng = spawn_rng(5, "jitter-test")
    for _ in range(100):
        backoff = policy.backoff_s(1, rng)
        assert 0.075 <= backoff <= 0.125


def test_deadline_and_attempt_budgets():
    policy = RetryPolicy(max_attempts=3, deadline_s=1.0)
    assert policy.allows(1, 0.5)
    assert not policy.allows(3, 0.5)   # attempts exhausted
    assert not policy.allows(1, 1.0)   # deadline spent
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# -- circuit breaker -------------------------------------------------------
def test_breaker_trips_at_failure_threshold():
    clock = SimClock()
    breaker = CircuitBreaker(clock, failure_threshold=0.5, window=10, min_calls=4)
    for _ in range(2):
        breaker.record_success()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED  # 1/3 failures, below min_calls
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN    # 2/4 >= 0.5
    assert breaker.opens == 1
    assert not breaker.allow()
    assert breaker.refusals == 1


def test_breaker_half_open_probe_cycle():
    clock = SimClock()
    breaker = CircuitBreaker(clock, failure_threshold=0.5, window=4, min_calls=2,
                             cooldown_s=60.0, half_open_probes=2)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    clock.advance(60.0)
    assert breaker.allow()
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success()
    assert breaker.state is BreakerState.HALF_OPEN  # one probe is not enough
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.closes == 1


def test_breaker_reopens_on_failed_probe():
    clock = SimClock()
    breaker = CircuitBreaker(clock, failure_threshold=0.5, window=4, min_calls=2,
                             cooldown_s=60.0)
    breaker.record_failure()
    breaker.record_failure()
    clock.advance(60.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 2
    # Cooldown restarts from the failed probe.
    clock.advance(30.0)
    assert not breaker.allow()
    clock.advance(30.0)
    assert breaker.allow()


def test_breaker_transitions_carry_sim_time():
    clock = SimClock()
    breaker = CircuitBreaker(clock, window=4, min_calls=2, cooldown_s=10.0)
    clock.advance(5.0)
    breaker.record_failure()
    breaker.record_failure()
    clock.advance(10.0)
    breaker.allow()
    assert [(t, s) for t, s in breaker.transitions] == [
        (5.0, BreakerState.OPEN), (15.0, BreakerState.HALF_OPEN)]


# -- resilient generator ---------------------------------------------------
def test_retries_recover_from_transient_errors():
    class FailsTwice:
        parameter_count = 1_000_000

        def __init__(self):
            self.latency = LatencyModel()
            self.calls = 0

        def generate_batch(self, prompts):
            self.calls += 1
            if self.calls <= 2:
                from repro.serving import GeneratorError
                raise GeneratorError("transient")
            return GenerationBatch(generations=[
                Generation(text=f"it is used for {p}.", tokens=8,
                           latency_s=self.latency.charge(self.parameter_count, 8))
                for p in prompts])

    clock = SimClock()
    policy = RetryPolicy(max_attempts=4, base_backoff_s=0.05,
                         backoff_multiplier=2.0, jitter=0.0)
    resilient = ResilientGenerator(FailsTwice(), clock, retry=policy)
    outcome = resilient.generate_batch(["q"])
    assert outcome.ok
    assert outcome.attempts == 3
    assert outcome.retries == 2
    assert outcome.errors == 2
    # Both backoffs (0.05 + 0.10) were charged to the simulated clock.
    assert outcome.wait_s == pytest.approx(0.15)
    assert clock.now() >= 0.15


def test_retries_exhausted_raises_and_deadline_is_respected():
    clock = SimClock()
    policy = RetryPolicy(max_attempts=10, deadline_s=4.0, base_backoff_s=2.0,
                         max_backoff_s=2.0, jitter=0.0)
    resilient = ResilientGenerator(
        _flaky(FaultPlan(error_rate=1.0)), clock, retry=policy)
    outcome = resilient.generate_batch(["q"])
    assert not outcome.ok
    # Deadline (4s) cuts the 10-attempt budget short: 2s backoff per retry.
    assert outcome.attempts < 10
    with pytest.raises(RetriesExhausted):
        resilient.generate_knowledge(["q"])


def test_garbage_generations_are_retried_per_prompt():
    class GarbageOnce:
        parameter_count = 1_000_000

        def __init__(self):
            self.latency = LatencyModel()
            self.calls = 0

        def generate_batch(self, prompts):
            self.calls += 1
            texts = [f"it is used for {p}." for p in prompts]
            if self.calls == 1:
                texts = ["" for _ in prompts[:1]] + texts[1:]
            self.latency.charge(self.parameter_count, 8)
            return GenerationBatch(generations=[
                Generation(text=t, tokens=8, latency_s=0.0) for t in texts])

    inner = GarbageOnce()
    resilient = ResilientGenerator(inner, SimClock(),
                                   retry=RetryPolicy(jitter=0.0))
    outcome = resilient.generate_batch(["a", "b", "c"])
    assert outcome.ok
    assert outcome.rejected == 1
    assert inner.calls == 2  # only the corrupted prompt was re-sent


def test_open_breaker_fails_fast():
    clock = SimClock()
    breaker = CircuitBreaker(clock, window=4, min_calls=2, cooldown_s=1000.0)
    breaker.record_failure()
    breaker.record_failure()
    resilient = ResilientGenerator(Scripted(), clock, breaker=breaker)
    outcome = resilient.generate_batch(["q"])
    assert outcome.breaker_refused
    assert outcome.attempts == 0
    with pytest.raises(CircuitOpenError):
        resilient.generate_knowledge(["q"])


def test_no_wall_clock_sleeps():
    """Retrying through seconds of simulated backoff finishes instantly."""
    import time

    clock = SimClock()
    policy = RetryPolicy(max_attempts=6, base_backoff_s=2.0, max_backoff_s=60.0,
                         deadline_s=1e9, jitter=0.0)
    resilient = ResilientGenerator(
        _flaky(FaultPlan(error_rate=1.0)), clock, retry=policy,
        breaker=CircuitBreaker(clock, min_calls=100))
    started = time.monotonic()
    outcome = resilient.generate_batch(["q"])
    wall = time.monotonic() - started
    assert not outcome.ok
    assert outcome.wait_s > 60.0   # over a simulated minute of backoff
    assert wall < 1.0              # ...in well under a wall-clock second


def test_attribute_passthrough_to_inner():
    inner = Scripted()
    resilient = ResilientGenerator(inner, SimClock())
    assert resilient.parameter_count == inner.parameter_count
    assert resilient.latency is inner.latency
