"""SimClock unit tests: monotonicity errors and sleep_until arithmetic."""

import pytest

from repro.serving.clock import SECONDS_PER_DAY, SimClock


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(1.5) == 1.5
    assert clock.now() == 1.5


def test_advance_rejects_negative_seconds():
    clock = SimClock(start=10.0)
    with pytest.raises(ValueError, match="time cannot move backwards"):
        clock.advance(-0.001)
    assert clock.now() == 10.0  # the failed advance must not move time


def test_sleep_until_advances_to_absolute_time():
    clock = SimClock(start=5.0)
    assert clock.sleep_until(12.0) == 12.0
    assert clock.now() == 12.0


def test_sleep_until_now_is_a_noop():
    clock = SimClock(start=7.0)
    assert clock.sleep_until(7.0) == 7.0


def test_sleep_until_rejects_past_timestamps():
    clock = SimClock(start=100.0)
    with pytest.raises(ValueError, match="cannot sleep until"):
        clock.sleep_until(99.9)
    assert clock.now() == 100.0


def test_next_day_start_boundary_arithmetic():
    clock = SimClock()
    assert clock.next_day_start() == SECONDS_PER_DAY
    clock.advance(SECONDS_PER_DAY + 123.0)  # a bit into day 1
    assert clock.day == 1
    assert clock.next_day_start() == 2 * SECONDS_PER_DAY
    clock.sleep_until(clock.next_day_start())
    assert clock.day == 2
    assert clock.now() == 2 * SECONDS_PER_DAY


def test_advance_days_and_day_property():
    clock = SimClock()
    clock.advance_days(2.5)
    assert clock.day == 2
    assert clock.now() == 2.5 * SECONDS_PER_DAY
