"""Serving substrate: clock, two-layer cache, feature store, service flow."""

import numpy as np
import pytest

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.serving import (
    AsyncCacheStore,
    CosmoService,
    FeatureStore,
    ServeRequest,
    SimClock,
)


def _handle(service, query):
    return service.serve(ServeRequest(query=query)).text


def _direct(service, query):
    return service.serve(ServeRequest(query=query, direct=True)).text


class FakeGenerator:
    """Deterministic stand-in for COSMO-LM in serving tests."""

    def __init__(self):
        self.latency = LatencyModel()
        self.parameter_count = 1_000_000
        self.calls = 0

    def generate_batch(self, prompts):
        self.calls += 1
        outputs = []
        for prompt in prompts:
            latency = self.latency.charge(self.parameter_count, 8)
            outputs.append(
                Generation(text=f"it is used for {prompt}.", tokens=8, latency_s=latency)
            )
        return GenerationBatch(generations=outputs)


# -- clock ---------------------------------------------------------------
def test_clock_advances_and_days():
    clock = SimClock()
    assert clock.day == 0
    clock.advance_days(1.5)
    assert clock.day == 1
    with pytest.raises(ValueError):
        clock.advance(-1)


# -- cache ---------------------------------------------------------------
def test_cache_layers_and_pending_queue():
    clock = SimClock()
    cache = AsyncCacheStore(clock)
    cache.preload_yearly({"hot query": "yearly answer"})
    assert cache.lookup("hot query") == "yearly answer"
    assert cache.stats.layer1_hits == 1
    assert cache.lookup("cold query") is None
    assert cache.stats.misses == 1
    assert cache.pending_queries() == ["cold query"]
    cache.apply_batch({"cold query": "batched answer"})
    assert cache.lookup("cold query") == "batched answer"
    assert cache.stats.layer2_hits == 1
    assert cache.pending_queries() == []


def test_daily_layer_resets_on_day_rollover():
    clock = SimClock()
    cache = AsyncCacheStore(clock)
    cache.lookup("q")
    cache.apply_batch({"q": "answer"})
    assert cache.daily_size == 1
    clock.advance_days(1)
    assert cache.lookup("q") is None  # daily layer cleared
    assert cache.daily_size == 0


def test_daily_capacity_respected():
    cache = AsyncCacheStore(SimClock(), daily_capacity=2)
    installed = cache.apply_batch({f"q{i}": "a" for i in range(5)})
    assert installed == 2
    assert cache.daily_size == 2


def test_promote_frequent_moves_hot_entries_to_yearly():
    cache = AsyncCacheStore(SimClock())
    for _ in range(12):
        cache.lookup("popular")
    cache.apply_batch({"popular": "answer"})
    promoted = cache.promote_frequent(min_requests=10)
    assert promoted == 1
    assert cache.yearly_size == 1


def test_hit_rate():
    cache = AsyncCacheStore(SimClock())
    cache.preload_yearly({"a": "1"})
    cache.lookup("a")
    cache.lookup("b")
    assert cache.stats.hit_rate == pytest.approx(0.5)


# -- feature store ---------------------------------------------------------
def test_feature_store_structures_responses():
    clock = SimClock()
    store = FeatureStore(clock)
    record = store.put("camping gear", "it can be used when they winter camping.")
    assert record.relation == "USED_FOR_EVE"
    assert record.tail == "winter camping"
    assert record.strong_intent
    assert store.get("camping gear") is record


def test_feature_store_unparseable_response():
    store = FeatureStore(SimClock())
    record = store.put("q", "nonsense text")
    assert record.relation is None
    assert not record.strong_intent


def test_feature_store_staleness():
    clock = SimClock()
    store = FeatureStore(clock)
    store.put("old", "it is used for camping.")
    clock.advance_days(3)
    store.put("fresh", "it is used for hiking.")
    assert store.stale_keys(max_age_days=1) == ["old"]


# -- full service flow -------------------------------------------------------
def test_request_miss_then_batch_then_hit():
    generator = FakeGenerator()
    service = CosmoService(generator, fallback_response="(no knowledge yet)")
    first = _handle(service, "camping tent")
    assert first == "(no knowledge yet)"
    assert service.metrics.fallbacks == 1
    installed = service.run_batch()
    assert installed == 1
    assert len(service.features) == 1
    second = _handle(service, "camping tent")
    assert "camping tent" in second


def test_cached_latency_far_below_direct():
    generator = FakeGenerator()
    service = CosmoService(generator)
    direct = _direct(service, "q1")
    assert direct
    service.run_batch()
    _handle(service, "q1")
    # The direct call dominates the latency distribution's max; the cache
    # lookup sits at its min.
    direct_latency = service.metrics.latency.max
    cache_latency = service.metrics.latency.min
    assert cache_latency < direct_latency


def test_daily_refresh_promotes_and_refreshes():
    generator = FakeGenerator()
    service = CosmoService(generator)
    for _ in range(12):
        _handle(service, "hot")
    service.run_batch()
    service.clock.advance_days(2)  # make the feature stale
    report = service.daily_refresh()
    assert report["refreshed"] == 1
    assert service.clock.day >= 3


def test_percentiles_monotone():
    generator = FakeGenerator()
    service = CosmoService(generator)
    for i in range(20):
        _handle(service, f"q{i}")
    assert service.metrics.p50 <= service.metrics.p99


# -- feedback loop ------------------------------------------------------------
def test_feedback_loop_on_plain_generator_is_ignored():
    service = CosmoService(FakeGenerator())
    service.record_feedback("q", "it is used for x.", helpful=True)
    assert service.pending_feedback == 1
    assert service.apply_feedback() == 0
    assert service.pending_feedback == 0


def test_feedback_loop_finetunes_cosmo_classifier():
    from repro.behavior import WorldConfig
    from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig

    result = CosmoPipeline(PipelineConfig(
        seed=51,
        world=WorldConfig(seed=51, products_per_domain=12,
                          broad_queries_per_domain=6, specific_queries_per_domain=6),
        cobuy_pairs_per_domain=12,
        searchbuy_records_per_domain=15,
        annotation_budget=120,
        lm=CosmoLMConfig(epochs=3, hidden_dim=48),
        expand_with_lm=False,
    )).run()
    lm = result.cosmo_lm
    service = CosmoService(lm)
    # Teach the judge that a specific knowledge string is unhelpful.
    for _ in range(30):
        service.record_feedback("some query", "it is used for zzzz", helpful=False)
    consumed = service.apply_feedback(epochs=3)
    assert consumed == 30
    prediction = lm.predict_typicality(
        "domain: X search query: some query type: thing task: generation",
        "it is used for zzzz",
    )
    assert prediction == "no"


def test_run_batch_respects_max_queries():
    service = CosmoService(FakeGenerator())
    for i in range(10):
        _handle(service, f"q{i}")
    installed = service.run_batch(max_queries=4)
    assert installed == 4
    assert len(service.cache.pending_queries()) == 6


def test_run_batch_with_no_pending_is_noop():
    service = CosmoService(FakeGenerator())
    assert service.run_batch() == 0
    assert service.metrics.batch_runs == 0


def test_flash_sale_staleness_mechanism():
    """Unit-level version of the §3.5.3 limitation bench."""

    class Stateful(FakeGenerator):
        mode = "before"

        def generate_batch(self, prompts):
            outs = super().generate_batch(prompts).generations
            return GenerationBatch(generations=[
                Generation(text=f"{o.text} {self.mode}", tokens=o.tokens,
                           latency_s=o.latency_s) for o in outs])

    generator = Stateful()
    service = CosmoService(generator)
    _handle(service, "deal")
    service.run_batch()
    generator.mode = "after"  # the world changed
    assert "before" in _handle(service, "deal")  # stale until refresh
    service.clock.advance_days(1)
    # Daily layer cleared: a cache miss now serves the stale feature-store
    # entry (degraded) instead of failing outright.
    degraded = _handle(service, "deal")
    assert "before" in degraded
    assert service.metrics.degraded_serves == 1
    service.run_batch()
    assert "after" in _handle(service, "deal")
