"""Graceful degradation, dead-letter queue, and availability accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.serving import (
    CircuitBreaker,
    CosmoService,
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    RetryPolicy,
    ServeRequest,
    SimClock,
)


def _handle(service, query):
    return service.serve(ServeRequest(query=query)).text


def _direct(service, query):
    return service.serve(ServeRequest(query=query, direct=True)).text


class Scripted:
    parameter_count = 1_000_000

    def __init__(self):
        self.latency = LatencyModel()

    def generate_batch(self, prompts):
        return GenerationBatch(generations=[
            Generation(text=f"it is used for {p}.", tokens=8,
                       latency_s=self.latency.charge(self.parameter_count, 8))
            for p in prompts
        ])


def _service(plan=None, seed=0, **kwargs):
    injector = FaultInjector(plan or FaultPlan(), seed=seed)
    flaky = FlakyGenerator(Scripted(), injector)
    clock = SimClock()
    service = CosmoService(flaky, clock=clock, fallback_response="(down)",
                           seed=seed, **kwargs)
    return service, injector


# -- degradation chain -----------------------------------------------------
def test_degradation_chain_feature_store_then_fallback():
    service, _ = _service()
    assert _handle(service, "q") == "(down)"  # nothing known yet
    assert service.metrics.fallbacks == 1
    service.run_batch()
    assert _handle(service, "q") == "it is used for q."
    assert service.metrics.served_fresh == 1
    service.clock.advance_days(1)  # daily layer expires; features survive
    assert _handle(service, "q") == "it is used for q."
    assert service.metrics.degraded_serves == 1


def test_degradation_uses_last_known_good_without_feature_record():
    service, _ = _service()
    _handle(service, "q")
    service.run_batch()
    # Simulate a lost feature record; the last-good map still covers it.
    service.features._records.clear()
    service.clock.advance_days(1)
    assert _handle(service, "q") == "it is used for q."
    assert service.metrics.degraded_serves == 1


def test_resilience_off_restores_legacy_fallback_behavior():
    service, _ = _service(resilience=False)
    _handle(service, "q")
    service.run_batch()
    service.clock.advance_days(1)
    assert _handle(service, "q") == "(down)"  # no degraded serving
    assert service.metrics.degraded_serves == 0


def test_direct_request_degrades_on_failure():
    service, injector = _service()
    assert _direct(service, "q") == "it is used for q."
    injector.plan = FaultPlan(error_rate=1.0)
    response = _direct(service, "q")
    assert response == "it is used for q."  # last known good
    assert service.metrics.degraded_serves == 1
    assert service.metrics.generator_failures >= 1


def test_direct_request_without_resilience_falls_back():
    service, injector = _service(resilience=False)
    injector.plan = FaultPlan(error_rate=1.0)
    assert _direct(service, "q") == "(down)"
    assert service.metrics.fallbacks == 1


# -- dead-letter queue -----------------------------------------------------
def test_exhausted_retries_dead_letter_and_daily_refresh_redrives():
    service, injector = _service(
        retry=RetryPolicy(max_attempts=2, jitter=0.0),
        breaker=CircuitBreaker(SimClock(), min_calls=100),  # effectively off
    )
    injector.plan = FaultPlan(error_rate=1.0)
    _handle(service, "q1")
    _handle(service, "q2")
    assert service.run_batch() == 0
    assert service.metrics.dead_lettered == 2
    assert [letter.query for letter in service.dead_letters] == ["q1", "q2"]
    assert service.cache.pending_size == 0  # moved off the pending queue
    # The outage ends; the daily refresh re-drives the queue.
    injector.plan = FaultPlan()
    report = service.daily_refresh(refresh_stale=False)
    assert report["redriven"] == 2
    assert not service.dead_letters
    assert _handle(service, "q1") == "it is used for q1."


def test_redrive_failure_requeues_with_bumped_attempts():
    service, injector = _service(
        retry=RetryPolicy(max_attempts=2, jitter=0.0),
        breaker=CircuitBreaker(SimClock(), min_calls=100),
    )
    injector.plan = FaultPlan(error_rate=1.0)
    _handle(service, "q")
    service.run_batch()
    first_attempts = service.dead_letters[0].attempts
    service.daily_refresh(refresh_stale=False)  # still failing
    assert len(service.dead_letters) == 1
    assert service.dead_letters[0].attempts == first_attempts + 1


def test_breaker_refusal_leaves_queries_pending():
    breaker = CircuitBreaker(SimClock(), window=4, min_calls=2, cooldown_s=1e9)
    breaker.record_failure()
    breaker.record_failure()
    service, _ = _service(breaker=breaker)
    _handle(service, "q")
    assert service.run_batch() == 0
    assert service.metrics.breaker_refusals == 1
    assert service.metrics.dead_lettered == 0
    assert service.cache.pending_size == 1  # retried next cycle, not dropped


# -- pending queue bounds --------------------------------------------------
def test_pending_capacity_evicts_oldest():
    from repro.serving import AsyncCacheStore

    clock = SimClock()
    cache = AsyncCacheStore(clock, pending_capacity=3)
    for i in range(5):
        cache.lookup(f"q{i}")
    assert cache.pending_size == 3
    assert cache.stats.pending_evictions == 2
    assert "q0" not in cache.pending_queries()


def test_pending_age_eviction_on_day_roll():
    from repro.serving import AsyncCacheStore

    clock = SimClock()
    cache = AsyncCacheStore(clock, pending_max_age_days=1)
    cache.lookup("old")
    clock.advance_days(3)
    cache.lookup("new")  # rolls the daily layer, ages out "old"
    assert cache.pending_queries() == ["new"]
    assert cache.stats.pending_evictions == 1


# -- availability accounting (property) ------------------------------------
@st.composite
def fault_schedules(draw):
    ops = []
    for _ in range(draw(st.integers(5, 50))):
        kind = draw(st.sampled_from(["request", "request", "request", "batch",
                                     "day", "refresh", "plan"]))
        if kind == "request":
            ops.append((kind, draw(st.sampled_from([f"q{i}" for i in range(8)]))))
        elif kind == "plan":
            ops.append((kind, draw(st.floats(0.0, 1.0))))
        else:
            ops.append((kind, None))
    return ops


@given(fault_schedules(), st.booleans(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_availability_accounting_consistent_under_random_faults(ops, resilient, seed):
    service, injector = _service(resilience=resilient, seed=seed)
    requests = 0
    for kind, arg in ops:
        if kind == "request":
            _handle(service, arg)
            requests += 1
        elif kind == "batch":
            service.run_batch()
        elif kind == "day":
            service.clock.advance_days(1)
        elif kind == "refresh":
            service.daily_refresh()
        elif kind == "plan":
            injector.plan = FaultPlan.mixed(arg)
    metrics = service.metrics
    # Every request is exactly one of fresh / degraded / fallback.
    assert metrics.served_fresh + metrics.degraded_serves + metrics.fallbacks \
        == requests == metrics.requests
    assert metrics.latency.count == requests
    assert 0.0 <= metrics.availability <= 1.0
    assert 0.0 <= metrics.fallback_rate <= 1.0
    if not resilient:
        assert metrics.degraded_serves == 0
