"""Serving components publish lifecycle transitions into the event log."""

from repro.obs import EventLog
from repro.serving import (
    CircuitBreaker,
    ClusterConfig,
    CosmoCluster,
    CosmoService,
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    RetryPolicy,
    ServeRequest,
    SimClock,
)
from repro.serving.chaos import ScriptedGenerator, _response_ok


def _flaky_service(event_log, plan=None, seed=0, **kwargs):
    injector = FaultInjector(plan or FaultPlan(), seed=seed)
    generator = FlakyGenerator(ScriptedGenerator(), injector)
    service = CosmoService(generator, clock=SimClock(),
                           fallback_response="(down)", seed=seed,
                           event_log=event_log, **kwargs)
    return service, injector


def test_breaker_transitions_become_events():
    clock = SimClock()
    log = EventLog()
    breaker = CircuitBreaker(clock, window=4, min_calls=2, cooldown_s=1.0,
                             half_open_probes=1)
    breaker.attach_event_log(log, component="svc-r0")
    breaker.record_failure()
    breaker.record_failure()       # rate 1.0 over min_calls: trips OPEN
    clock.advance(1.5)
    assert breaker.allow()         # cooldown elapsed: HALF_OPEN probe
    breaker.record_success()       # one probe closes it
    assert [e.kind for e in log.events()] == [
        "breaker.open", "breaker.half-open", "breaker.closed"]
    opened = log.events()[0]
    assert opened.component == "svc-r0"
    assert opened.attrs["opens"] == 1


def test_service_degradation_events_mark_edges_not_requests():
    log = EventLog()
    service, _ = _flaky_service(log)
    service.serve(ServeRequest(query="q"))    # cold: fallback -> entry
    service.serve(ServeRequest(query="q2"))   # still degraded: no new event
    service.run_batch()
    service.serve(ServeRequest(query="q"))    # fresh again -> exit
    kinds = [e.kind for e in log.events()]
    assert kinds == ["service.degraded_entry", "service.degraded_exit"]
    entry, exit_ = log.events()
    assert entry.component == "cosmo"
    assert entry.attrs["outcome"] == "fallback"
    assert exit_.ts >= entry.ts


def test_dead_letter_and_redrive_events():
    log = EventLog()
    service, injector = _flaky_service(
        log,
        retry=RetryPolicy(max_attempts=2, jitter=0.0),
        breaker=CircuitBreaker(SimClock(), min_calls=100),  # effectively off
    )
    injector.plan = FaultPlan(error_rate=1.0)
    service.serve(ServeRequest(query="q1"))
    service.serve(ServeRequest(query="q2"))
    assert service.run_batch() == 0
    injector.plan = FaultPlan()               # outage ends
    service.daily_refresh()
    dead = next(e for e in log.events() if e.kind == "service.dead_letter")
    assert dead.attrs == {"count": 2, "attempts": 2}
    redrive = next(e for e in log.events() if e.kind == "service.redrive")
    assert redrive.attrs["redriven"] == 2
    assert redrive.attrs["requeued"] == 0


def test_cluster_drain_restore_and_flush_events():
    log = EventLog()
    config = ClusterConfig(n_replicas=2, seed=0, max_batch_size=2,
                           max_batch_delay_s=5.0)
    cluster = CosmoCluster(lambda index: ScriptedGenerator(), config=config,
                           response_validator=_response_ok, event_log=log)
    cluster.drain("cluster-r1")
    cluster.restore("cluster-r1")
    cluster.restore("cluster-r1")             # idempotent: no second event
    for i in range(4):
        cluster.handle(ServeRequest(query=f"query {i}"))
        cluster.clock.advance(0.01)
    cluster.handle(ServeRequest(query="query tail"))
    cluster.flush()
    events = log.events()
    drain = next(e for e in events if e.kind == "router.drain")
    assert drain.component == "cluster"
    assert drain.attrs == {"replica": "cluster-r1", "active": 1}
    assert sum(e.kind == "router.restore" for e in events) == 1
    flushes = [e for e in events if e.kind == "cluster.flush"]
    assert flushes
    assert {e.attrs["trigger"] for e in flushes} <= {"size", "deadline", "forced"}
    assert "forced" in {e.attrs["trigger"] for e in flushes}
    assert all(e.attrs["replica"].startswith("cluster-r") for e in flushes)
    # Every event is timestamped on a simulated clock and ids are ordered.
    assert [e.event_id for e in events] == sorted(e.event_id for e in events)


def test_no_event_log_attached_is_silent_and_harmless():
    service, _ = _flaky_service(None)
    service.serve(ServeRequest(query="q"))
    service.run_batch()
    assert service.event_log is None
