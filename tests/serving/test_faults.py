"""Fault injection: determinism, failure modes, latency accounting."""

import pytest

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.serving import (
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    GeneratorError,
    GeneratorFault,
    GeneratorTimeout,
)


class Scripted:
    parameter_count = 1_000_000

    def __init__(self):
        self.latency = LatencyModel()
        self.calls = 0

    def generate_batch(self, prompts):
        self.calls += 1
        return GenerationBatch(generations=[
            Generation(text=f"it is used for {p}.", tokens=8,
                       latency_s=self.latency.charge(self.parameter_count, 8))
            for p in prompts
        ])

    def generate_knowledge(self, prompts):
        return self.generate_batch(prompts).require()


def _drive(generator, prompts, n):
    """Run ``n`` calls, recording outcome signatures."""
    trace = []
    for _ in range(n):
        try:
            outs = generator.generate_knowledge(prompts)
            trace.append(tuple(g.text for g in outs))
        except GeneratorFault as exc:
            trace.append(type(exc).__name__)
    return trace


# -- plan validation -------------------------------------------------------
def test_fault_plan_validates_rates():
    with pytest.raises(ValueError):
        FaultPlan(error_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(error_rate=0.6, timeout_rate=0.6)


def test_mixed_plan_splits_headline_rate():
    plan = FaultPlan.mixed(0.2)
    assert plan.error_rate + plan.timeout_rate + plan.slow_rate + plan.garbage_rate \
        == pytest.approx(0.2)


# -- determinism -----------------------------------------------------------
def test_same_seed_replays_identical_fault_schedule():
    prompts = ["a", "b", "c"]
    plan = FaultPlan.mixed(0.6)
    traces = []
    for _ in range(2):
        flaky = FlakyGenerator(Scripted(), FaultInjector(plan, seed=13))
        traces.append(_drive(flaky, prompts, 40))
    assert traces[0] == traces[1]
    # And a different seed produces a different schedule.
    other = FlakyGenerator(Scripted(), FaultInjector(plan, seed=14))
    assert _drive(other, prompts, 40) != traces[0]


# -- failure modes ---------------------------------------------------------
def test_error_mode_raises_and_charges_overhead():
    flaky = FlakyGenerator(Scripted(), FaultInjector(FaultPlan(error_rate=1.0)))
    with pytest.raises(GeneratorError):
        flaky.generate_knowledge(["q"])
    assert flaky.failed_calls == 1
    assert flaky.latency.total_simulated_s == pytest.approx(flaky.latency.overhead_s)


def test_timeout_mode_charges_full_timeout():
    plan = FaultPlan(timeout_rate=1.0, timeout_s=7.5)
    flaky = FlakyGenerator(Scripted(), FaultInjector(plan))
    with pytest.raises(GeneratorTimeout):
        flaky.generate_knowledge(["q"])
    assert flaky.latency.total_simulated_s == pytest.approx(7.5)


def test_slow_mode_inflates_latency_but_succeeds():
    inner = Scripted()
    plan = FaultPlan(slow_rate=1.0, slow_factor=10.0)
    flaky = FlakyGenerator(inner, FaultInjector(plan))
    outs = flaky.generate_knowledge(["q"])
    assert outs[0].text == "it is used for q."
    baseline = Scripted()
    baseline.generate_knowledge(["q"])
    assert flaky.latency.total_simulated_s == pytest.approx(
        10.0 * baseline.latency.total_simulated_s)


def test_garbage_mode_corrupts_generations():
    plan = FaultPlan(garbage_rate=1.0)
    flaky = FlakyGenerator(Scripted(), FaultInjector(plan, seed=3))
    texts = [g.text for g in flaky.generate_knowledge([f"q{i}" for i in range(20)])]
    # Every generation is corrupted: emptied or truncated without the
    # terminating period.
    assert all(not t.strip() or not t.rstrip().endswith(".") for t in texts)
    assert any(not t.strip() for t in texts)
    assert any(t.strip() and not t.endswith(".") for t in texts)


def test_no_faults_passes_through():
    inner = Scripted()
    flaky = FlakyGenerator(inner, FaultInjector(FaultPlan()))
    outs = flaky.generate_knowledge(["a", "b"])
    assert [g.text for g in outs] == ["it is used for a.", "it is used for b."]
    assert flaky.injector.injected == {}


def test_injected_counter_tracks_modes():
    plan = FaultPlan(error_rate=1.0)
    flaky = FlakyGenerator(Scripted(), FaultInjector(plan))
    for _ in range(3):
        with pytest.raises(GeneratorError):
            flaky.generate_knowledge(["q"])
    assert flaky.injector.injected["error"] == 3


def test_attribute_passthrough():
    inner = Scripted()
    flaky = FlakyGenerator(inner, FaultInjector(FaultPlan()))
    assert flaky.parameter_count == inner.parameter_count
    assert flaky.calls == 0  # FlakyGenerator's own counter shadows inner's
    flaky.generate_knowledge(["q"])
    assert flaky.calls == 1 and inner.calls == 1
