"""Golden equivalence: the batch-first serving path vs per-item serving.

The api_redesign contract: ``serve_batch`` without a
:class:`~repro.serving.deployment.BatchCostModel` is *observably
identical* to a per-item ``serve`` loop — byte-identical result
envelopes (modulo the batch attribution fields, which only the batch
path stamps) and byte-identical metric snapshots off the shared
registry.  With a cost model the accounting invariants still hold but
the charged latency amortizes.  The cluster's ``handle_batch`` must
count requests exactly like ``len(requests)`` ``handle`` calls.
"""

from dataclasses import replace

from repro.llm.interface import GenerationBatch
from repro.obs import MetricsRegistry, snapshot, validate_snapshot
from repro.serving import (
    BatchCostModel,
    ClusterConfig,
    CosmoCluster,
    CosmoService,
    ServeRequest,
    SimClock,
)
from repro.serving.chaos import ScriptedGenerator
from repro.utils.rng import spawn_rng

import pytest


def _zipf_traffic(n_requests: int, n_queries: int = 24, seed: int = 5) -> list[str]:
    rng = spawn_rng(seed, "batch-equivalence-traffic")
    picks = rng.integers(0, n_queries, size=n_requests)
    return [f"query {int(i):02d}" for i in picks]


def _drive_per_item(traffic, registry, name):
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3,
                           registry=registry, name=name)
    results = []
    for start in range(0, len(traffic), 8):
        results.extend(service.serve(ServeRequest(query=q))
                       for q in traffic[start:start + 8])
        service.run_batch()
    return service, results


def _drive_batched(traffic, registry, name):
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3,
                           registry=registry, name=name)
    results = []
    for start in range(0, len(traffic), 8):
        results.extend(service.serve_batch(
            [ServeRequest(query=q) for q in traffic[start:start + 8]]))
        service.run_batch()
    return service, results


def _strip_batch_fields(result):
    return replace(result, batch_id=None, batch_index=None)


def test_serve_batch_neutral_path_matches_per_item_envelopes():
    traffic = _zipf_traffic(120)
    _, per_item = _drive_per_item(traffic, MetricsRegistry(), "svc")
    _, batched = _drive_batched(traffic, MetricsRegistry(), "svc")
    assert len(per_item) == len(batched)
    for item, batch in zip(per_item, batched):
        assert item.batch_id is None and item.batch_index is None
        assert batch.batch_id is not None and batch.batch_index is not None
        assert _strip_batch_fields(batch) == item


def test_serve_batch_neutral_path_metric_snapshots_are_byte_identical():
    traffic = _zipf_traffic(120)
    registry_a = MetricsRegistry()
    registry_b = MetricsRegistry()
    _drive_per_item(traffic, registry_a, "svc")
    _drive_batched(traffic, registry_b, "svc")
    snap_a = snapshot(registry_a)
    snap_b = snapshot(registry_b)
    validate_snapshot(snap_a)
    validate_snapshot(snap_b)
    assert snap_a == snap_b


def test_serve_batch_stamps_contiguous_batch_attribution():
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3)
    first = service.serve_batch([ServeRequest(query=f"q{i}") for i in range(5)])
    second = service.serve_batch([ServeRequest(query="solo")])
    assert [r.batch_index for r in first] == [0, 1, 2, 3, 4]
    assert len({r.batch_id for r in first}) == 1
    assert second[0].batch_id != first[0].batch_id
    assert second[0].batch_index == 0


def test_serve_batch_explicit_batch_id_is_honored():
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3)
    results = service.serve_batch([ServeRequest(query="a")], batch_id="window-7")
    assert results[0].batch_id == "window-7"


def test_amortized_window_charges_one_batched_latency():
    costs = BatchCostModel(batch_overhead_s=0.002, item_cost_s=0.0002)
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3,
                           batch_costs=costs)
    queries = [f"q{i}" for i in range(8)]
    # Warm the cache through a miss window + flush.
    service.serve_batch([ServeRequest(query=q) for q in queries])
    service.run_batch()
    before = service.clock.now()
    results = service.serve_batch([ServeRequest(query=q) for q in queries])
    window = costs.window_latency_s(len(queries))
    assert service.clock.now() - before == pytest.approx(window)
    assert all(r.latency_s == pytest.approx(window) for r in results)
    # Amortized per-item cost beats the sequential per-hit charge.
    assert window / len(queries) < 0.002


def test_amortized_window_preserves_request_accounting():
    costs = BatchCostModel()
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3,
                           batch_costs=costs)
    traffic = _zipf_traffic(96)
    for start in range(0, len(traffic), 16):
        service.serve_batch(
            [ServeRequest(query=q) for q in traffic[start:start + 16]])
        service.run_batch()
    metrics = service.metrics
    assert metrics.requests == len(traffic)
    assert (metrics.served_fresh + metrics.degraded_serves
            + metrics.fallbacks == metrics.requests)


def test_direct_requests_fall_back_to_per_item_even_with_cost_model():
    """``direct=True`` bypasses the cache, so the amortized window would
    misattribute its cost; the batch path must serve such windows
    item-by-item."""
    costs = BatchCostModel()
    service = CosmoService(ScriptedGenerator(), clock=SimClock(), seed=3,
                           batch_costs=costs)
    results = service.serve_batch(
        [ServeRequest(query="a", direct=True), ServeRequest(query="b")])
    assert [r.batch_index for r in results] == [0, 1]
    assert results[0].source == "direct"


def test_generation_batch_protocol_round_trip():
    """The unified protocol type: generate_batch returns a
    GenerationBatch whose shims and helpers agree."""
    batch = ScriptedGenerator().generate_batch(["a", "b"])
    assert isinstance(batch, GenerationBatch)
    assert len(batch) == 2
    assert batch.ok and batch.failed_indices == []
    assert [g.text for g in batch.require()] == [
        "it is used for a.", "it is used for b."]


# -- cluster handle_batch ---------------------------------------------------


def _cluster(n_replicas, registry, batch_costs=None, trace=True):
    config = ClusterConfig(n_replicas=n_replicas, max_batch_size=8,
                           max_batch_delay_s=0.25, seed=11, name="eq",
                           trace_requests=trace)
    kwargs = {} if batch_costs is None else {"batch_costs": batch_costs}
    return CosmoCluster(lambda i: ScriptedGenerator(), config=config,
                        registry=registry, **kwargs)


def test_handle_batch_counts_requests_like_per_item_handling():
    traffic = _zipf_traffic(64)
    cluster = _cluster(3, MetricsRegistry())
    for start in range(0, len(traffic), 8):
        results = cluster.handle_batch(traffic[start:start + 8])
        assert len(results) == 8
        cluster.clock.advance(0.002)
    cluster.flush()
    totals = cluster.metrics_totals()
    assert totals["handled"] == len(traffic)
    assert totals["requests"] == len(traffic)
    assert (totals["served_fresh"] + totals["degraded_serves"]
            + totals["fallbacks"] == len(traffic))


def test_handle_batch_results_in_request_order_with_window_indices():
    cluster = _cluster(4, MetricsRegistry(), batch_costs=BatchCostModel())
    queries = [f"query {i:02d}" for i in range(12)]
    results = cluster.handle_batch(queries)
    assert [r.query for r in results] == queries
    assert [r.batch_index for r in results] == list(range(12))
    assert len({r.batch_id for r in results}) == 1
    # The window split across replicas, yet attribution stays unique.
    assert len({r.replica for r in results}) > 1


def test_handle_batch_empty_window_is_a_no_op():
    cluster = _cluster(2, MetricsRegistry())
    assert cluster.handle_batch([]) == []
    assert cluster.metrics_totals()["handled"] == 0


def test_handle_batch_traced_and_bare_accounting_match():
    traffic = _zipf_traffic(48)

    def run(trace):
        registry = MetricsRegistry()
        cluster = _cluster(2, registry, trace=trace)
        for start in range(0, len(traffic), 8):
            cluster.handle_batch(traffic[start:start + 8])
            cluster.clock.advance(0.002)
        cluster.flush()
        return cluster.metrics_totals(), cluster.busy_horizon_s

    traced, traced_horizon = run(True)
    bare, bare_horizon = run(False)
    assert traced == bare
    assert traced_horizon == bare_horizon
