"""Cluster serving: scheduler triggers, admission control, failover,
and the cluster-wide accounting invariant under chaos."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    AdaptiveBatchScheduler,
    ClusterConfig,
    CosmoCluster,
    FaultInjector,
    FaultPlan,
    FlakyGenerator,
    ServeOutcome,
    ServeRequest,
)
from repro.serving.chaos import ScriptedGenerator, _response_ok


def _cluster(n_replicas=3, fault_rate=0.0, seed=3, **config_kwargs) -> CosmoCluster:
    injectors = {}

    def factory(index: int):
        generator = ScriptedGenerator()
        if fault_rate <= 0.0:
            return generator
        injector = FaultInjector(FaultPlan.mixed(fault_rate), seed=seed + index)
        injectors[index] = injector
        return FlakyGenerator(generator, injector)

    options = {"max_batch_size": 8, "max_batch_delay_s": 0.5, **config_kwargs}
    config = ClusterConfig(n_replicas=n_replicas, seed=seed, **options)
    cluster = CosmoCluster(factory, config=config,
                           response_validator=_response_ok)
    cluster._test_injectors = injectors
    return cluster


# -- config validation ------------------------------------------------------
def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_replicas=0)
    with pytest.raises(ValueError):
        ClusterConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        ClusterConfig(max_batch_delay_s=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(max_queue_depth=0)


# -- adaptive batch scheduler ----------------------------------------------
def test_scheduler_size_trigger():
    scheduler = AdaptiveBatchScheduler(max_batch_size=4, max_batch_delay_s=10.0)
    scheduler.note_pending("r0", now=0.0)
    assert scheduler.should_flush("r0", pending=3, now=1.0) is None
    assert scheduler.should_flush("r0", pending=4, now=1.0) == "size"


def test_scheduler_deadline_trigger_uses_oldest_pending():
    scheduler = AdaptiveBatchScheduler(max_batch_size=100, max_batch_delay_s=5.0)
    scheduler.note_pending("r0", now=0.0)
    scheduler.note_pending("r0", now=4.9)  # window keeps the FIRST timestamp
    assert scheduler.should_flush("r0", pending=2, now=4.9) is None
    assert scheduler.should_flush("r0", pending=2, now=5.0) == "deadline"


def test_scheduler_flush_resets_the_deadline_window():
    scheduler = AdaptiveBatchScheduler(max_batch_size=100, max_batch_delay_s=5.0)
    scheduler.note_pending("r0", now=0.0)
    scheduler.flushed("r0")
    scheduler.note_pending("r0", now=7.0)
    assert scheduler.should_flush("r0", pending=1, now=8.0) is None
    assert scheduler.should_flush("r0", pending=1, now=12.0) == "deadline"


def test_scheduler_mid_window_items_keep_their_own_enqueue_ticks():
    """Regression: items enqueued mid-window used to inherit the window's
    first timestamp, so after a partial flush the survivor's deadline
    fired early (its wait was over-credited by the window age)."""
    scheduler = AdaptiveBatchScheduler(max_batch_size=100, max_batch_delay_s=5.0)
    scheduler.note_pending("r0", now=0.0, pending=1)
    scheduler.note_pending("r0", now=3.0, pending=2)  # second item joins mid-window
    # Partial flush drains the oldest item; the survivor was enqueued at 3.0.
    scheduler.flushed("r0", remaining=1)
    assert scheduler.oldest_wait_s("r0", now=7.0) == pytest.approx(4.0)
    assert scheduler.should_flush("r0", pending=1, now=7.9) is None
    assert scheduler.should_flush("r0", pending=1, now=8.0) == "deadline"


def test_scheduler_partial_flush_survivors_are_not_restamped():
    """Regression: leftovers after a partial flush used to be re-stamped
    at the flush tick, stretching a mid-window item's staleness toward
    twice ``max_batch_delay_s``."""
    scheduler = AdaptiveBatchScheduler(max_batch_size=100, max_batch_delay_s=5.0)
    scheduler.note_pending("r0", now=0.0, pending=3)
    scheduler.flushed("r0", remaining=2)  # flush at some later tick keeps 2
    # Survivors still charge from their own enqueue at t=0, not the flush.
    assert scheduler.should_flush("r0", pending=2, now=5.0) == "deadline"
    scheduler.flushed("r0")
    assert scheduler.oldest_wait_s("r0", now=9.0) == 0.0


def test_scheduler_empty_queue_clears_window():
    scheduler = AdaptiveBatchScheduler(max_batch_size=4, max_batch_delay_s=5.0)
    scheduler.note_pending("r0", now=0.0)
    assert scheduler.should_flush("r0", pending=0, now=100.0) is None
    scheduler.note_pending("r0", now=100.0)  # fresh window, not the old one
    assert scheduler.should_flush("r0", pending=1, now=101.0) is None


def test_cluster_flushes_on_size_trigger():
    cluster = _cluster(n_replicas=1)
    for i in range(8):  # max_batch_size distinct misses on one shard
        cluster.handle(f"query {i}")
    service = cluster.services["cluster-r0"]
    assert service.metrics.batch_runs >= 1  # size trigger fired inline
    assert cluster.handle("query 0").outcome is ServeOutcome.FRESH


def test_cluster_flushes_on_deadline_trigger():
    cluster = _cluster(n_replicas=1)
    cluster.handle("lonely query")  # one pending miss, far below size
    cluster.clock.advance(1.0)  # past max_batch_delay_s
    cluster.handle("other query")  # next arrival evaluates the deadline
    service = cluster.services["cluster-r0"]
    assert service.metrics.batch_runs >= 1
    assert cluster.handle("lonely query").outcome is ServeOutcome.FRESH


# -- routing and locality ---------------------------------------------------
def test_requests_for_a_key_stay_on_its_home_replica():
    cluster = _cluster(n_replicas=3)
    for _ in range(3):
        homes = {q: cluster.handle(q).replica for q in (f"q{i}" for i in range(20))}
        assert homes == {q: cluster.router.route(q) for q in homes}


def test_preload_yearly_shards_entries_to_their_home_replica():
    cluster = _cluster(n_replicas=3)
    entries = {f"q{i}": f"answer {i}." for i in range(30)}
    cluster.preload_yearly(entries)
    for query, answer in entries.items():
        result = cluster.handle(query)
        assert result.text == answer
        assert result.outcome is ServeOutcome.FRESH
        assert result.replica == cluster.router.route(query)


def test_drained_replica_receives_no_traffic():
    cluster = _cluster(n_replicas=3)
    cluster.drain("cluster-r1")
    for i in range(30):
        assert cluster.handle(f"q{i}").replica != "cluster-r1"
    cluster.restore("cluster-r1")
    assert any(cluster.handle(f"q{i}").replica == "cluster-r1"
               for i in range(30))


# -- admission control ------------------------------------------------------
def test_admission_control_sheds_without_dropping():
    cluster = _cluster(n_replicas=2, max_queue_depth=3, max_batch_size=1000,
                       max_batch_delay_s=1e9)
    for i in range(20):  # distinct misses; queue would grow to 20 unchecked
        result = cluster.handle(f"query {i:02d}")
        assert result.text is not None  # shed, never dropped
    totals = cluster.metrics_totals()
    assert totals["shed"] > 0
    assert cluster.queue_depth <= cluster.config.max_queue_depth
    assert (totals["served_fresh"] + totals["degraded_serves"]
            + totals["fallbacks"] == totals["requests"] == 20)


# -- failover ---------------------------------------------------------------
def test_forced_open_breaker_reroutes_to_ring_neighbor():
    cluster = _cluster(n_replicas=3)
    victim = "cluster-r0"
    victim_keys = [f"q{i}" for i in range(60)
                   if cluster.router.route(f"q{i}") == victim]
    assert victim_keys
    cluster.services[victim].breaker.force_open()
    for key in victim_keys:
        result = cluster.handle(key)
        assert result.replica != victim
        assert result.replica == cluster.router.preference(key)[1]
    assert cluster.metrics_totals()["failovers"] == len(victim_keys)


def test_failover_availability_beats_single_replica_degraded_baseline():
    """Acceptance: one breaker forced open through a cold sustained
    outage.  The single-replica baseline is stuck degraded — its only
    generator is fenced off, so nothing ever heals — while the cluster
    fails the fenced replica's traffic over to healthy shards that keep
    generating.  Served availability must come out at least as high, and
    every request must be answered and accounted."""
    queries = [f"q{i}" for i in range(40)]

    def outage(cluster):
        cluster.services[cluster.router.replicas[0]].breaker.force_open()
        served = [cluster.handle(q) for _ in range(4) for q in queries]
        return cluster, served

    single, single_served = outage(_cluster(n_replicas=1))
    sharded, sharded_served = outage(_cluster(n_replicas=3))

    assert len(single_served) == len(sharded_served) == 160  # nothing dropped
    assert sharded.availability >= single.availability
    assert sharded.availability > 0.5  # healthy shards keep healing
    for cluster in (single, sharded):
        totals = cluster.metrics_totals()
        assert (totals["served_fresh"] + totals["degraded_serves"]
                + totals["fallbacks"] == totals["requests"] == totals["handled"])


def test_all_breakers_open_falls_back_to_home_replica():
    cluster = _cluster(n_replicas=2)
    for service in cluster.services.values():
        service.breaker.force_open()
    result = cluster.handle("q")
    assert result.replica == cluster.router.route("q")
    assert cluster.metrics_totals()["failovers"] == 0


def test_failover_disabled_keeps_home_routing():
    cluster = _cluster(n_replicas=3, failover=False)
    victim = "cluster-r0"
    cluster.services[victim].breaker.force_open()
    keys = [f"q{i}" for i in range(60)
            if cluster.router.route(f"q{i}") == victim]
    for key in keys:
        assert cluster.handle(key).replica == victim


# -- latency model ----------------------------------------------------------
def test_queueing_delay_is_folded_into_cluster_latency():
    cluster = _cluster(n_replicas=1)
    cluster.preload_yearly({"q": "answer."})
    first = cluster.handle(ServeRequest(query="q"))
    # No arrival-clock advance: the second request arrives while the
    # replica is still busy with the first, so it queues behind it.
    second = cluster.handle(ServeRequest(query="q"))
    assert second.latency_s == pytest.approx(first.latency_s * 2)


def test_daily_refresh_barriers_all_clocks():
    cluster = _cluster(n_replicas=3)
    for i in range(10):
        cluster.handle(f"q{i}")
        cluster.clock.advance(0.01)
    cluster.daily_refresh(refresh_stale=False)
    horizons = {s.clock.now() for s in cluster.services.values()}
    assert horizons == {cluster.clock.now()}
    assert cluster.clock.day == 1


# -- accounting invariant under chaos (property) ----------------------------
@st.composite
def cluster_schedules(draw):
    ops = []
    for _ in range(draw(st.integers(5, 40))):
        kind = draw(st.sampled_from(["request", "request", "request", "gap",
                                     "flush", "refresh", "plan", "trip"]))
        if kind == "request":
            ops.append((kind, draw(st.sampled_from([f"q{i}" for i in range(12)]))))
        elif kind == "gap":
            ops.append((kind, draw(st.floats(0.0, 2.0))))
        elif kind == "plan":
            ops.append((kind, draw(st.floats(0.0, 1.0))))
        elif kind == "trip":
            ops.append((kind, draw(st.integers(0, 5))))
        else:
            ops.append((kind, None))
    return ops


@given(cluster_schedules(), st.integers(1, 4), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_cluster_accounting_invariant_under_chaos(ops, n_replicas, seed):
    cluster = _cluster(n_replicas=n_replicas, fault_rate=0.3, seed=seed)
    requests = 0
    for kind, arg in ops:
        if kind == "request":
            result = cluster.handle(arg)
            assert result.outcome in ServeOutcome
            requests += 1
        elif kind == "gap":
            cluster.clock.advance(arg)
        elif kind == "flush":
            cluster.flush()
        elif kind == "refresh":
            cluster.daily_refresh()
        elif kind == "plan":
            for injector in cluster._test_injectors.values():
                injector.plan = FaultPlan.mixed(arg)
        elif kind == "trip":
            replica_id = cluster.router.replicas[arg % n_replicas]
            cluster.services[replica_id].breaker.force_open()
    totals = cluster.metrics_totals()
    # Every request is exactly one of fresh / degraded / fallback, on
    # exactly one replica, and none is dropped or double-counted.
    assert (totals["served_fresh"] + totals["degraded_serves"]
            + totals["fallbacks"] == totals["requests"]
            == totals["handled"] == requests)
    assert cluster._latency.count == requests
    assert 0.0 <= cluster.availability <= 1.0
