"""Text-processing primitives, with property-based metric checks."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.textproc import (
    edit_distance,
    entropy,
    jaccard,
    normalize_text,
    normalized_edit_distance,
    sentence_split,
    tokenize_words,
)

_words = st.text(alphabet="abcdefgh ", min_size=0, max_size=24)


def test_normalize_collapses_whitespace_and_case():
    assert normalize_text("  Hello   WORLD \n") == "hello world"


def test_tokenize_extracts_words_with_apostrophes():
    assert tokenize_words("The baby's feet, 2 socks!") == ["the", "baby's", "feet", "2", "socks"]


def test_sentence_split_basic():
    text = "First sentence. Second one! And a fragment"
    assert sentence_split(text) == ["First sentence.", "Second one!", "And a fragment"]


def test_sentence_split_empty():
    assert sentence_split("   ") == []


def test_edit_distance_known_values():
    assert edit_distance("kitten", "sitting") == 3
    assert edit_distance("", "abc") == 3
    assert edit_distance("same", "same") == 0


@given(_words, _words)
@settings(max_examples=60, deadline=None)
def test_edit_distance_symmetry(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(_words, _words, _words)
@settings(max_examples=40, deadline=None)
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(_words, _words)
@settings(max_examples=60, deadline=None)
def test_normalized_edit_distance_in_unit_interval(a, b):
    value = normalized_edit_distance(a, b)
    assert 0.0 <= value <= 1.0


def test_entropy_uniform_is_log_n():
    assert math.isclose(entropy([5, 5, 5, 5]), math.log(4))


def test_entropy_point_mass_is_zero():
    assert entropy([10]) == 0.0
    assert entropy([10, 0, 0]) == 0.0


def test_entropy_ignores_zero_counts():
    assert math.isclose(entropy([3, 0, 3]), math.log(2))


def test_jaccard_known_values():
    assert jaccard(["a", "b"], ["b", "c"]) == 1 / 3
    assert jaccard([], []) == 1.0
    assert jaccard(["x"], ["x"]) == 1.0


@given(st.lists(st.sampled_from("abcdef"), max_size=8),
       st.lists(st.sampled_from("abcdef"), max_size=8))
@settings(max_examples=50, deadline=None)
def test_jaccard_bounded_and_symmetric(a, b):
    value = jaccard(a, b)
    assert 0.0 <= value <= 1.0
    assert value == jaccard(b, a)


def test_head_tail_cooccurrence_entropy():
    from repro.utils.textproc import head_tail_cooccurrence_entropy

    pairs = [
        ("head a", "generic tail"), ("head b", "generic tail"),
        ("head c", "generic tail"), ("head d", "generic tail"),
        ("head a", "specific tail"), ("head a", "specific tail"),
    ]
    entropies = head_tail_cooccurrence_entropy(pairs)
    # A tail spread uniformly over many heads has higher entropy than a
    # tail concentrated on one head — the generic-tail detection signal.
    assert entropies["generic tail"] > entropies["specific tail"]
    assert entropies["specific tail"] == 0.0
