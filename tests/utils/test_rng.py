"""Determinism and independence of the RNG factory."""

import numpy as np

from repro.utils.rng import RngFactory, spawn_rng


def test_same_seed_scope_is_deterministic():
    a = spawn_rng(42, "alpha").random(8)
    b = spawn_rng(42, "alpha").random(8)
    assert np.array_equal(a, b)


def test_different_scopes_differ():
    a = spawn_rng(42, "alpha").random(8)
    b = spawn_rng(42, "beta").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = spawn_rng(1, "alpha").random(8)
    b = spawn_rng(2, "alpha").random(8)
    assert not np.array_equal(a, b)


def test_empty_scope_matches_plain_seed():
    a = spawn_rng(7).random(4)
    b = spawn_rng(7, "").random(4)
    assert np.array_equal(a, b)


def test_factory_caches_streams():
    factory = RngFactory(5)
    first = factory.get("x")
    again = factory.get("x")
    assert first is again


def test_factory_fresh_restarts_stream():
    factory = RngFactory(5)
    factory.get("x").random(10)  # advance the cached stream
    fresh = factory.fresh("x").random(3)
    reference = spawn_rng(5, "x").random(3)
    assert np.array_equal(fresh, reference)


def test_child_factory_is_namespaced():
    parent = RngFactory(9)
    child_a = parent.child("sub").get("x").random(4)
    child_b = RngFactory(9).child("sub").get("x").random(4)
    assert np.array_equal(child_a, child_b)
    assert not np.array_equal(child_a, parent.get("x").random(4))
