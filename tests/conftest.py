"""Shared fixtures: one tiny world and one tiny pipeline run per session."""

from __future__ import annotations

import pytest

from repro.behavior import World, WorldConfig
from repro.core import CosmoPipeline, PipelineConfig


TINY_WORLD = WorldConfig(
    seed=11,
    products_per_domain=24,
    broad_queries_per_domain=10,
    specific_queries_per_domain=10,
)


@pytest.fixture(scope="session")
def world() -> World:
    return World(TINY_WORLD)


@pytest.fixture(scope="session")
def pipeline_result():
    """A small end-to-end pipeline run (no LM finetuning, for speed)."""
    config = PipelineConfig(
        seed=11,
        world=TINY_WORLD,
        cobuy_pairs_per_domain=30,
        searchbuy_records_per_domain=40,
        annotation_budget=300,
        finetune_lm=False,
        expand_with_lm=False,
    )
    return CosmoPipeline(config).run()
