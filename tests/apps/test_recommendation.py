"""Session recommenders: metrics, datasets, all eight models."""

import numpy as np
import pytest

from repro.apps.recommendation import (
    MODEL_NAMES,
    TrainConfig,
    build_global_graph,
    build_session_dataset,
    build_session_graphs,
    evaluate_session_model,
    hits_at_k,
    mrr_at_k,
    ndcg_at_k,
    train_session_model,
)
from repro.behavior import SessionConfig, simulate_sessions
from repro.embeddings import TextEncoder


# -- metrics -----------------------------------------------------------
def test_ranking_metrics_known_values():
    scores = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
    targets = np.array([1, 1])
    assert hits_at_k(scores, targets, k=1) == pytest.approx(0.5)
    assert mrr_at_k(scores, targets, k=3) == pytest.approx((1.0 + 1 / 3) / 2)
    assert ndcg_at_k(scores, targets, k=3) == pytest.approx(
        (1.0 + 1 / np.log2(4)) / 2
    )


def test_metrics_beyond_k_are_zero():
    scores = np.array([[3.0, 2.0, 1.0, 0.5]])
    targets = np.array([3])
    assert hits_at_k(scores, targets, k=2) == 0.0
    assert mrr_at_k(scores, targets, k=2) == 0.0


# -- datasets ----------------------------------------------------------
@pytest.fixture(scope="module")
def session_dataset(world):
    log = simulate_sessions(
        world, SessionConfig(domain="Electronics", n_sessions=200, mean_length=7), seed=6
    )
    return build_session_dataset(log, max_len=6)


def test_examples_are_prefix_completions(session_dataset):
    for example in session_dataset.train[:100]:
        assert 1 <= len(example.items) <= 6
        assert len(example.queries) == len(example.items)
        assert example.target >= 1  # never the padding slot


def test_splits_by_day(session_dataset):
    assert session_dataset.train and session_dataset.dev and session_dataset.test


def test_batch_arrays_padding(session_dataset):
    items, mask, targets = session_dataset.batch_arrays(session_dataset.train[:8])
    assert items.shape == mask.shape
    assert (items[~mask] == 0).all()
    assert (items[mask] > 0).all()
    assert targets.shape == (8,)


def test_knowledge_matrix_alignment(world):
    log = simulate_sessions(
        world, SessionConfig(domain="Electronics", n_sessions=50, mean_length=5), seed=6
    )
    encoder = TextEncoder(dim=16, seed=6)
    dataset = build_session_dataset(
        log, max_len=5,
        knowledge_provider=lambda query, item: f"knowledge for {query}",
        encoder=encoder,
    )
    assert dataset.knowledge_vectors
    matrix = dataset.knowledge_matrix(dataset.train[:4], dim=16)
    assert matrix.shape[0] == 4 and matrix.shape[2] == 16
    assert np.abs(matrix).sum() > 0


# -- session graphs -------------------------------------------------------
def test_session_graph_construction():
    items = np.array([[3, 5, 3, 7, 0]])
    mask = np.array([[True, True, True, True, False]])
    graphs = build_session_graphs(items, mask)
    assert set(graphs.nodes[0][graphs.node_mask[0]]) == {3, 5, 7}
    assert graphs.alias[0, 0] == graphs.alias[0, 2]  # repeated item → same node
    # Out-adjacency rows are normalized.
    sums = graphs.a_out[0].sum(axis=1)
    assert ((sums == 0) | np.isclose(sums, 1.0)).all()


def test_global_graph_neighbors(session_dataset):
    neighbors, weights = build_global_graph(session_dataset.train, session_dataset.n_items)
    assert neighbors.shape == weights.shape
    sums = weights.sum(axis=1)
    assert ((sums == 0) | np.isclose(sums, 1.0)).all()
    # Padding item has no neighbors.
    assert weights[0].sum() == 0


# -- the eight models ------------------------------------------------------
@pytest.mark.parametrize("name", MODEL_NAMES)
def test_every_model_trains_and_beats_random(name, world, session_dataset):
    config = TrainConfig(epochs=1, dim=24, knowledge_dim=16)
    if name == "COSMO-GNN":
        log = simulate_sessions(
            world, SessionConfig(domain="Electronics", n_sessions=200, mean_length=7), seed=6
        )
        encoder = TextEncoder(dim=16, seed=6)
        dataset = build_session_dataset(
            log, max_len=6,
            knowledge_provider=lambda query, item: query,
            encoder=encoder,
        )
    else:
        dataset = session_dataset
    model = train_session_model(name, dataset, config, seed=1)
    metrics = evaluate_session_model(model, dataset, config=config)
    random_hits = 100.0 * 10 / (dataset.n_items - 1)
    assert metrics["Hits@10"] > random_hits
    assert 0 <= metrics["MRR@10"] <= metrics["NDCG@10"] <= metrics["Hits@10"] <= 100


def test_unknown_model_rejected(session_dataset):
    from repro.apps.recommendation import build_model

    with pytest.raises(ValueError):
        build_model("BERT4Rec", session_dataset, TrainConfig())
