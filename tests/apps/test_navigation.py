"""Navigation: hierarchy, navigators, and the A/B experiment shape."""

import pytest

from repro.apps.navigation import (
    CosmoNavigator,
    NavigationABTest,
    TaxonomyNavigator,
    build_navigation_hierarchy,
)


@pytest.fixture(scope="module")
def hierarchy(pipeline_result):
    return build_navigation_hierarchy(pipeline_result.kg, pipeline_result.world)


def test_hierarchy_covers_kg_domains(pipeline_result, hierarchy):
    kg_domains = {t.domain for t in pipeline_result.kg.triples()}
    assert set(hierarchy.domains()) == kg_domains


def test_hierarchy_children_are_refinements(hierarchy):
    refined = 0
    for domain in hierarchy.domains():
        for root in hierarchy.for_domain(domain):
            for child in root.children:
                refined += 1
                assert child.label.endswith(root.label)
    # The KG contains modifier-refined activity tails, so some domain
    # must exhibit Figure 8's coarse→fine structure.
    assert refined > 0


def test_hierarchy_find(hierarchy):
    domain = hierarchy.domains()[0]
    root = hierarchy.for_domain(domain)[0]
    assert hierarchy.find(domain, root.label) is root
    assert hierarchy.find(domain, "no such intent") is None


def test_hierarchy_stats_fields(hierarchy):
    stats = hierarchy.stats()
    assert stats["root_intents"] > 0
    assert stats["max_depth"] >= 1


def test_taxonomy_navigator_suggests_popular_types(world):
    navigator = TaxonomyNavigator(world, suggestions_per_turn=4)
    turn = navigator.first_turn("Electronics", "anything at all")
    assert len(turn.suggestions) == 4
    assert all(s.kind == "product_type" for s in turn.suggestions)
    # Intent-blind: the same suggestions regardless of query.
    other = navigator.first_turn("Electronics", "different query")
    assert [s.label for s in turn.suggestions] == [s.label for s in other.suggestions]


def test_cosmo_navigator_first_turn_matches_query(pipeline_result, hierarchy):
    world = pipeline_result.world
    navigator = CosmoNavigator(world, hierarchy)
    domain = hierarchy.domains()[0]
    root = hierarchy.for_domain(domain)[0]
    turn = navigator.first_turn(domain, root.label)
    assert turn.suggestions
    assert turn.suggestions[0].label == root.label  # query overlap wins


def test_cosmo_navigator_multi_turn_refinement(pipeline_result, hierarchy):
    world = pipeline_result.world
    navigator = CosmoNavigator(world, hierarchy)
    for domain in hierarchy.domains():
        for root in hierarchy.for_domain(domain):
            if root.children or root.product_types:
                turn = navigator.refine(domain,
                                        navigator.first_turn(domain, root.label).suggestions[0])
                assert isinstance(turn.suggestions, list)
                return
    pytest.skip("no refinable intent in the tiny KG")


def test_ab_test_shape(pipeline_result, hierarchy):
    world = pipeline_result.world
    test = NavigationABTest(
        world,
        TaxonomyNavigator(world),
        CosmoNavigator(world, hierarchy),
        treatment_fraction=0.5,
        seed=3,
    )
    result = test.run(n_sessions=6000)
    assert result.control.sessions + result.treatment.sessions == 6000
    # The paper's shape: COSMO lifts engagement strongly and sales mildly.
    assert result.engagement_lift > 0
    assert result.sales_lift > -0.02
    assert result.engagement_lift > result.sales_lift
    z, p = result.engagement_significance()
    assert z > 0


def test_ab_outcome_rates_bounded(pipeline_result, hierarchy):
    world = pipeline_result.world
    test = NavigationABTest(
        world, TaxonomyNavigator(world), CosmoNavigator(world, hierarchy),
        treatment_fraction=0.2, seed=4,
    )
    result = test.run(n_sessions=2000)
    for arm in (result.control, result.treatment):
        assert 0.0 <= arm.engagement_rate <= 1.0
        assert 0.0 <= arm.purchase_rate <= 1.0


def test_cosmo_navigator_attribute_layer(pipeline_result, hierarchy):
    world = pipeline_result.world
    navigator = CosmoNavigator(world, hierarchy)
    product = world.catalog.all()[0]
    turn = navigator.attribute_turn(product.domain, product.product_type)
    assert turn.layer == "attribute"
    labels = {s.label for s in turn.suggestions}
    # Attribute suggestions come from the type's actual product attributes.
    type_attrs = {a for p in world.catalog.for_type(product.domain, product.product_type)
                  for a in p.attributes}
    assert labels <= type_attrs


def test_cosmo_navigator_results_serve_the_intent(pipeline_result, hierarchy):
    world = pipeline_result.world
    navigator = CosmoNavigator(world, hierarchy)
    for domain in hierarchy.domains():
        for root in hierarchy.for_domain(domain):
            if root.product_types:
                products = navigator.results(domain, root.label)
                assert products
                types = {p.product_type for p in products}
                assert types <= set(root.product_types)
                return
    pytest.skip("no linked product types in the tiny KG")


def test_taxonomy_navigator_refine_gives_attributes(world):
    navigator = TaxonomyNavigator(world)
    first = navigator.first_turn("Electronics", "query")
    second = navigator.refine("Electronics", first.suggestions[0])
    assert second.layer == "attribute"
    assert second.suggestions


def test_query_rewrite_study_cosmo_reduces_rewrites(pipeline_result, hierarchy):
    from repro.apps.navigation import QueryRewriteStudy

    study = QueryRewriteStudy(pipeline_result.world, hierarchy, seed=5)
    baseline = study.run(400, use_cosmo=False)
    study_cosmo = QueryRewriteStudy(pipeline_result.world, hierarchy, seed=5)
    cosmo = study_cosmo.run(400, use_cosmo=True)
    # §4.2.4: COSMO's refined-intent suggestions replace query rewrites.
    assert cosmo.avg_rewrites <= baseline.avg_rewrites
    assert cosmo.success_rate >= baseline.success_rate - 0.02
    assert baseline.sessions == cosmo.sessions == 400


def test_query_rewrite_outcome_properties():
    from repro.apps.navigation import RewriteOutcome

    empty = RewriteOutcome(name="x")
    assert empty.avg_rewrites == 0.0 and empty.success_rate == 0.0
    filled = RewriteOutcome(name="y", sessions=10, rewrites=5, successes=8)
    assert filled.avg_rewrites == 0.5
    assert filled.success_rate == 0.8
