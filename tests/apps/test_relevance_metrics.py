"""Macro/Micro F1 correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.relevance.metrics import f1_scores, macro_f1, micro_f1


def test_perfect_predictions():
    y = np.array([0, 1, 2, 3, 0, 1])
    assert macro_f1(y, y, 4) == pytest.approx(1.0)
    assert micro_f1(y, y, 4) == pytest.approx(1.0)


def test_known_confusion():
    y_true = np.array([0, 0, 1, 1])
    y_pred = np.array([0, 1, 1, 1])
    scores = f1_scores(y_true, y_pred, 2)
    # class 0: precision 1, recall 0.5 → 2/3; class 1: p 2/3, r 1 → 0.8
    assert scores[0] == pytest.approx(2 / 3)
    assert scores[1] == pytest.approx(0.8)
    assert macro_f1(y_true, y_pred, 2) == pytest.approx((2 / 3 + 0.8) / 2)
    assert micro_f1(y_true, y_pred, 2) == pytest.approx(0.75)


def test_missing_class_scores_zero():
    y_true = np.array([0, 0, 1])
    y_pred = np.array([0, 0, 0])
    scores = f1_scores(y_true, y_pred, 3)
    assert scores[1] == 0.0
    assert scores[2] == 0.0


def test_macro_punishes_rare_class_errors_more_than_micro():
    y_true = np.array([0] * 95 + [1] * 5)
    y_pred = np.array([0] * 100)
    assert micro_f1(y_true, y_pred, 2) > macro_f1(y_true, y_pred, 2)


def test_micro_equals_accuracy_single_label():
    rng = np.random.default_rng(0)
    y_true = rng.integers(0, 4, 100)
    y_pred = rng.integers(0, 4, 100)
    assert micro_f1(y_true, y_pred, 4) == pytest.approx((y_true == y_pred).mean())


@given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_scores_in_unit_interval(labels):
    y = np.array(labels)
    rng = np.random.default_rng(1)
    y_pred = rng.integers(0, 4, len(y))
    assert 0.0 <= macro_f1(y, y_pred, 4) <= 1.0
    assert 0.0 <= micro_f1(y, y_pred, 4) <= 1.0
