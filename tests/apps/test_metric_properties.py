"""Property-based invariants of the ranking metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.recommendation.metrics import hits_at_k, mrr_at_k, ndcg_at_k


@st.composite
def score_batches(draw):
    n = draw(st.integers(1, 8))
    m = draw(st.integers(2, 12))
    scores = np.array(
        draw(st.lists(st.lists(st.floats(-5, 5, allow_nan=False), min_size=m, max_size=m),
                      min_size=n, max_size=n))
    )
    targets = np.array(draw(st.lists(st.integers(0, m - 1), min_size=n, max_size=n)))
    return scores, targets


@given(score_batches(), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_metric_ordering_and_bounds(batch, k):
    scores, targets = batch
    hits = hits_at_k(scores, targets, k)
    ndcg = ndcg_at_k(scores, targets, k)
    mrr = mrr_at_k(scores, targets, k)
    # All in [0,1], and MRR ≤ NDCG ≤ Hits (per-example gains obey
    # 1/rank ≤ 1/log2(rank+1) ≤ 1 for rank ≥ 1).
    for value in (hits, ndcg, mrr):
        assert 0.0 <= value <= 1.0
    assert mrr <= ndcg + 1e-12
    assert ndcg <= hits + 1e-12


@given(score_batches())
@settings(max_examples=40, deadline=None)
def test_metrics_monotone_in_k(batch):
    scores, targets = batch
    previous = 0.0
    for k in range(1, scores.shape[1] + 1):
        current = hits_at_k(scores, targets, k)
        assert current >= previous - 1e-12
        previous = current


@given(score_batches())
@settings(max_examples=40, deadline=None)
def test_full_k_hits_is_one_without_ties_at_top(batch):
    scores, targets = batch
    # With k = number of items, every target is ranked within k.
    assert hits_at_k(scores, targets, scores.shape[1]) == 1.0
