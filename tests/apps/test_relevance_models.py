"""Relevance architectures: featurization, freezing, and training."""

import numpy as np
import pytest

from repro.apps.relevance import (
    FeatureExtractor,
    RelevanceModel,
    prepare_esci,
    train_relevance_model,
)
from repro.behavior import generate_esci


@pytest.fixture(scope="module")
def esci(world):
    dataset = generate_esci(world, locale="KDD Cup", pairs_per_query=8,
                            max_queries=250, seed=4)

    # Oracle knowledge provider: the product intent closest to the query
    # (an upper bound for what COSMO-LM provides; model tests only need
    # informative product-conditioned features).
    def provider(examples):
        texts = []
        for example in examples:
            product = world.catalog.get(example.product_id)
            if example.intent_id is not None and example.intent_id in product.intent_ids:
                tail = world.intents.get(example.intent_id).tail
            elif product.intent_ids:
                tail = world.intents.get(product.intent_ids[0]).tail
            else:
                tail = ""
            texts.append(f"it is used for {tail}." if tail else "")
        return texts

    return prepare_esci(dataset, knowledge_provider=provider)


def test_featurize_shapes(esci):
    extractor = FeatureExtractor(buckets=128)
    bi = RelevanceModel("bi-encoder", True, extractor, seed=0)
    q, p = bi.featurize(esci.train.queries[:4], esci.train.products[:4])
    assert q.shape == (4, 128) and p.shape == (4, 128)
    cross = RelevanceModel("cross-encoder", True, extractor, seed=0)
    joint = cross.featurize(esci.train.queries[:4], esci.train.products[:4])
    assert joint.shape == (4, 3 * 128)
    intent = RelevanceModel("cross-encoder-intent", True, extractor, seed=0)
    enriched = intent.featurize(
        esci.train.queries[:4], esci.train.products[:4], esci.train.knowledge[:4]
    )
    assert enriched.shape == (4, 6 * 128)


def test_intent_architecture_requires_knowledge(esci):
    model = RelevanceModel("cross-encoder-intent", True, FeatureExtractor(128), seed=0)
    with pytest.raises(ValueError):
        model.featurize(["q"], ["p"], None)


def test_unknown_architecture_rejected():
    with pytest.raises(ValueError):
        RelevanceModel("tri-encoder", True, FeatureExtractor(128), seed=0)


def test_fixed_encoder_is_frozen(esci):
    model = RelevanceModel("cross-encoder", False, FeatureExtractor(128), seed=0)
    frozen = [p for p in model.parameters() if not p.requires_grad]
    trainable = model.trainable_parameters()
    assert frozen and trainable
    encoder_weights = model.joint_encoder.weight
    assert not encoder_weights.requires_grad


def test_trainable_encoder_updates_weights(esci):
    model, _ = train_relevance_model(
        esci, "cross-encoder", trainable_encoder=True, epochs=1, seed=0,
        extractor=FeatureExtractor(128),
    )
    assert model.joint_encoder.weight.requires_grad


def test_training_beats_majority_baseline(esci):
    _, result = train_relevance_model(
        esci, "cross-encoder-intent", trainable_encoder=True,
        epochs=6, seed=0, extractor=FeatureExtractor(256),
    )
    labels = esci.test.labels
    majority_micro = max(np.bincount(labels, minlength=4)) / len(labels)
    assert result.micro_f1 > majority_micro
    assert result.macro_f1 > 0.3


def test_results_are_deterministic(esci):
    extractor = FeatureExtractor(128)
    _, first = train_relevance_model(esci, "bi-encoder", True, epochs=1,
                                     seed=7, extractor=extractor)
    _, second = train_relevance_model(esci, "bi-encoder", True, epochs=1,
                                      seed=7, extractor=extractor)
    assert first.macro_f1 == second.macro_f1


def test_kg_knowledge_provider_exposes_type_tails(world, pipeline_result):
    from repro.apps.relevance import kg_knowledge_provider
    from repro.behavior import generate_esci

    provider = kg_knowledge_provider(pipeline_result.kg, pipeline_result.world,
                                     max_tails=3)
    dataset = generate_esci(pipeline_result.world, locale="US",
                            pairs_per_query=3, max_queries=30, seed=9)
    texts = provider(dataset.train[:20])
    assert len(texts) == 20
    # At least some products have stored knowledge, and no text exceeds
    # the max_tails budget.
    assert any(texts)
    kg_tails = set(pipeline_result.kg.tails())
    for text in texts:
        if not text:
            continue
        # Every emitted phrase is a real KG tail (possibly several).
        assert any(tail in text for tail in kg_tails)
