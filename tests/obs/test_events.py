"""Structured event log: determinism, bounds, schema validation."""

import pytest

from repro.obs import (
    EVENTS_SCHEMA,
    EventLog,
    MetricsRegistry,
    render_events,
    validate_events,
)


def test_emit_assigns_ordered_ids_and_scalar_attrs():
    log = EventLog()
    first = log.emit("breaker.open", ts=1.5, component="svc-r0", opens=1)
    second = log.emit("router.drain", ts=2.0, component="cluster", replica="r1")
    assert (first.event_id, second.event_id) == (1, 2)
    assert first.kind == "breaker.open"
    assert first.attrs == {"opens": 1}
    assert second.as_dict() == {
        "event_id": 2, "ts": 2.0, "kind": "router.drain",
        "component": "cluster", "attrs": {"replica": "r1"},
    }


def test_emit_rejects_bad_kind_and_negative_ts():
    log = EventLog()
    for kind in ("", "nodot", "Upper.Case", "space inside.x"):
        with pytest.raises(ValueError):
            log.emit(kind, ts=0.0, component="c")
    with pytest.raises(ValueError):
        log.emit("a.b", ts=-0.1, component="c")


def test_ring_buffer_drops_oldest_and_counts():
    log = EventLog(max_events=3)
    for i in range(5):
        log.emit("tick.n", ts=float(i), component="c", n=i)
    assert len(log) == 3
    assert log.emitted == 5
    assert log.dropped == 2
    assert [e.event_id for e in log.events()] == [3, 4, 5]


def test_events_between_filters_on_timestamp_inclusive():
    log = EventLog()
    for ts in (0.5, 1.0, 2.0, 3.5):
        log.emit("tick.n", ts=ts, component="c")
    picked = log.events_between(1.0, 2.0)
    assert [e.ts for e in picked] == [1.0, 2.0]


def test_registry_counter_tracks_kinds():
    registry = MetricsRegistry()
    log = EventLog(registry=registry, name="ops")
    log.emit("breaker.open", ts=0.0, component="c")
    log.emit("breaker.open", ts=1.0, component="c")
    log.emit("router.drain", ts=1.0, component="c")
    family = registry.get("obs_events_total")
    assert family.labels(log="ops", kind="breaker.open").value == 2
    assert family.labels(log="ops", kind="router.drain").value == 1


def test_render_round_trips_through_validate():
    log = EventLog(max_events=2)
    for i in range(4):
        log.emit("tick.n", ts=float(i), component="c", n=i, label=f"e{i}")
    text = render_events(log)
    assert text.splitlines()[0].startswith('{"dropped":2')
    events = validate_events(text)
    assert [e["event_id"] for e in events] == [3, 4]
    assert EVENTS_SCHEMA in text
    # Byte-determinism: rendering twice is identical.
    assert render_events(log) == text


def test_validate_rejects_structural_violations():
    log = EventLog()
    log.emit("a.b", ts=1.0, component="c")
    good = render_events(log)
    with pytest.raises(ValueError):
        validate_events("")
    with pytest.raises(ValueError):
        validate_events(good.replace('"schema":"repro.obs.events/v1"',
                                     '"schema":"bogus/v9"'))
    with pytest.raises(ValueError):
        validate_events(good.replace('"events":1', '"events":2'))
    with pytest.raises(ValueError):  # non-increasing ids
        lines = good.splitlines()
        header = (lines[0].replace('"events":1', '"events":2')
                  .replace('"emitted":1', '"emitted":2'))
        validate_events("\n".join([header, lines[1], lines[1]]))
