"""SLO burn-rate evaluation and the alert state machine."""

import pytest

from repro.obs import (
    BurnRateRule,
    EventLog,
    MetricsRegistry,
    MetricSum,
    SloEvaluator,
    SloSpec,
    alert_report,
    validate_alert_report,
)

WINDOWS = (BurnRateRule(long_s=2.0, short_s=0.5, max_burn_rate=10.0),)


def _availability_spec(**overrides):
    defaults = dict(
        name="availability",
        description="good over total",
        target=0.99,
        good=MetricSum(("good_total",)),
        total=MetricSum(("all_total",)),
        windows=WINDOWS,
    )
    defaults.update(overrides)
    return SloSpec(**defaults)


def _setup(spec=None, event_log=None):
    registry = MetricsRegistry()
    good = registry.counter("good_total", "good").labels()
    total = registry.counter("all_total", "total").labels()
    evaluator = SloEvaluator(registry, [spec or _availability_spec()],
                             event_log=event_log)
    return registry, good, total, evaluator


def test_metric_sum_reads_counters_with_label_filters():
    registry = MetricsRegistry()
    family = registry.counter("cache_requests_total", "c", ("store", "outcome"))
    family.labels(store="s", outcome="layer1_hit").inc(3)
    family.labels(store="s", outcome="layer2_hit").inc(2)
    family.labels(store="s", outcome="miss").inc(5)
    hits = MetricSum(("cache_requests_total",),
                     where=(("outcome", ("layer1_hit", "layer2_hit")),))
    assert hits.read(registry) == 5.0
    assert MetricSum(("cache_requests_total",)).read(registry) == 10.0
    assert MetricSum(("absent_total",)).read(registry) == 0.0


def test_metric_sum_histogram_reading_cumulative_at_le():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "l", buckets=(0.1, 1.0)).labels()
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    assert MetricSum(("lat",), le=0.1).read(registry) == 1.0
    assert MetricSum(("lat",), le=1.0).read(registry) == 2.0
    assert MetricSum(("lat",)).read(registry) == 3.0


def test_burn_rate_fires_only_when_both_windows_exceed():
    registry, good, total, evaluator = _setup(
        _availability_spec(target=0.9, windows=(
            BurnRateRule(long_s=2.0, short_s=0.5, max_burn_rate=5.0),)))
    # Steady good traffic: no alert.
    for step in range(1, 5):
        good.inc(10)
        total.inc(10)
        assert evaluator.evaluate(step * 0.5) == []
    # Bad burst: short window breaches immediately, long follows.
    total.inc(40)
    changed = evaluator.evaluate(2.5)
    assert [a.state for a in changed] == ["firing"]  # for_s=0 fires at once
    assert evaluator.any_fired


def test_alert_walks_pending_firing_resolved():
    spec = _availability_spec(target=0.9, for_s=0.5, resolve_after_s=1.0,
                              windows=(BurnRateRule(2.0, 0.5, 5.0),))
    registry, good, total, evaluator = _setup(spec)
    good.inc(10); total.inc(10)
    evaluator.evaluate(0.5)
    total.inc(10)  # all bad
    (alert,) = evaluator.evaluate(1.0)
    assert alert.state == "pending"
    total.inc(10)  # still bad
    (alert,) = evaluator.evaluate(1.5)
    assert alert.state == "firing" and alert.firing_ts == 1.5
    # Recovery: good traffic only; short window clears first.
    for step, ts in enumerate((2.0, 2.5, 3.0, 3.5, 4.0)):
        good.inc(20); total.inc(20)
        changed = evaluator.evaluate(ts)
        if changed:
            break
    (alert,) = changed
    assert alert.state == "resolved"
    assert alert.resolved_ts is not None
    assert alert.pending_ts < alert.firing_ts < alert.resolved_ts


def test_pending_alert_cancelled_on_early_clear():
    spec = _availability_spec(target=0.9, for_s=5.0,
                              windows=(BurnRateRule(2.0, 0.5, 5.0),))
    registry, good, total, evaluator = _setup(spec)
    total.inc(10)
    (alert,) = evaluator.evaluate(0.5)
    assert alert.state == "pending"
    good.inc(100); total.inc(100)
    (alert,) = evaluator.evaluate(1.0)
    assert alert.state == "cancelled"
    assert not evaluator.any_fired


def test_resolved_alert_collects_event_ids_in_window():
    log = EventLog()
    log.emit("breaker.open", ts=0.2, component="svc")      # inside lookback
    log.emit("router.drain", ts=1.2, component="cluster")  # inside window
    spec = _availability_spec(target=0.9, resolve_after_s=0.5,
                              event_lookback_s=1.0,
                              windows=(BurnRateRule(2.0, 0.5, 5.0),))
    registry, good, total, evaluator = _setup(spec, event_log=log)
    total.inc(10)
    evaluator.evaluate(1.0)  # pending_ts=1.0, fires immediately (for_s=0)
    log.emit("late.event", ts=99.0, component="x")         # outside window
    good.inc(100); total.inc(100)
    evaluator.evaluate(2.0)
    (resolved,) = evaluator.evaluate(3.0)
    assert resolved.state == "resolved"
    assert resolved.event_ids == [1, 2]


def test_no_traffic_burns_nothing_and_sli_defaults_high():
    registry, good, total, evaluator = _setup()
    evaluator.evaluate(0.5)
    evaluator.evaluate(1.0)
    assert evaluator.alerts() == []
    assert evaluator.sli("availability") == 1.0


def test_evaluation_time_cannot_go_backwards():
    registry, good, total, evaluator = _setup()
    evaluator.evaluate(1.0)
    with pytest.raises(ValueError):
        evaluator.evaluate(0.5)


def test_alert_report_round_trips_through_validator():
    spec = _availability_spec(target=0.9, windows=(BurnRateRule(2.0, 0.5, 5.0),))
    registry, good, total, evaluator = _setup(spec)
    total.inc(10)
    evaluator.evaluate(0.5)
    report = alert_report(evaluator)
    validate_alert_report(report)
    assert report["fired"] is True
    (objective,) = report["objectives"]
    assert objective["name"] == "availability"
    assert objective["sli"] == 0.0
    assert objective["error_budget_used"] == pytest.approx(10.0)
    (alert,) = objective["alerts"]
    assert alert["state"] == "firing"


def test_validate_alert_report_rejects_inconsistencies():
    registry, good, total, evaluator = _setup()
    evaluator.evaluate(1.0)
    report = alert_report(evaluator)
    with pytest.raises(ValueError):
        validate_alert_report(dict(report, schema="x/v0"))
    with pytest.raises(ValueError):
        validate_alert_report(dict(report, fired=True))  # no firing alert
    broken = dict(report)
    broken["objectives"] = [dict(report["objectives"][0], windows=[])]
    with pytest.raises(ValueError):
        validate_alert_report(broken)


def test_spec_validation():
    with pytest.raises(ValueError):
        _availability_spec(target=1.0)
    with pytest.raises(ValueError):
        _availability_spec(windows=())
    with pytest.raises(ValueError):
        BurnRateRule(long_s=0.5, short_s=0.5, max_burn_rate=1.0)
    with pytest.raises(ValueError):
        MetricSum(())
    with pytest.raises(ValueError):
        SloEvaluator(MetricsRegistry(), [])
