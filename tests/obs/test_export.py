"""Exporters: JSON snapshot schema, text and Prometheus renderings."""

import json

import pytest

from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    render_prometheus,
    render_text,
    snapshot,
    validate_snapshot,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter("requests_total", "requests", ("service",))
    requests.labels(service="a").inc(3)
    requests.labels(service="b").inc(1)
    registry.gauge("queue_depth", "pending work").set(4)
    latency = registry.histogram("latency_s", "latency", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 2.0):
        latency.observe(value)
    return registry


def test_snapshot_roundtrips_through_its_own_validator():
    snap = snapshot(_populated_registry())
    assert snap["schema"] == SNAPSHOT_SCHEMA
    validate_snapshot(snap)
    # ...and survives a JSON round trip (what the CI smoke step checks).
    validate_snapshot(json.loads(json.dumps(snap)))


def test_snapshot_histogram_sample_shape():
    snap = snapshot(_populated_registry())
    (latency,) = [m for m in snap["metrics"] if m["name"] == "latency_s"]
    (sample,) = latency["samples"]
    assert sample["count"] == 4
    assert sample["min"] == 0.005 and sample["max"] == 2.0
    assert sample["buckets"] == [
        {"le": 0.01, "count": 1},
        {"le": 0.1, "count": 3},
        {"le": 1.0, "count": 3},
        {"le": "+Inf", "count": 4},
    ]


def test_snapshot_is_deterministic_and_sorted():
    first = json.dumps(snapshot(_populated_registry()), sort_keys=True)
    second = json.dumps(snapshot(_populated_registry()), sort_keys=True)
    assert first == second
    names = [m["name"] for m in snapshot(_populated_registry())["metrics"]]
    assert names == sorted(names)


def test_render_text_one_line_per_sample():
    text = render_text(_populated_registry())
    assert 'requests_total{service="a"} 3' in text
    assert "queue_depth 4" in text
    assert "count=4" in text and "p99=" in text


def test_render_prometheus_exposition_format():
    text = render_prometheus(_populated_registry())
    assert "# TYPE requests_total counter" in text
    assert "# HELP queue_depth pending work" in text
    assert 'requests_total{service="a"} 3' in text
    assert 'latency_s_bucket{le="+Inf"} 4' in text
    assert "latency_s_count 4" in text
    assert text.endswith("\n")


def test_snapshot_carries_bucket_exemplars():
    registry = MetricsRegistry()
    latency = registry.histogram("latency_s", buckets=(0.01, 0.1))
    latency.observe(0.005, exemplar="00000001deadbeef")
    latency.observe(0.5)
    snap = snapshot(registry)
    validate_snapshot(snap)
    buckets = snap["metrics"][0]["samples"][0]["buckets"]
    assert buckets[0]["exemplar"] == {"trace_id": "00000001deadbeef",
                                      "value": 0.005}
    assert "exemplar" not in buckets[1]  # untagged bucket stays bare
    assert "exemplar" not in buckets[2]


def test_render_prometheus_emits_exemplar_annotations():
    registry = MetricsRegistry()
    latency = registry.histogram("latency_s", buckets=(0.01, 0.1))
    latency.observe(0.005, exemplar="00000001deadbeef")
    latency.observe(0.02)
    text = render_prometheus(registry)
    tagged = [l for l in text.splitlines()
              if l.startswith('latency_s_bucket{le="0.01"}')]
    assert tagged == [
        'latency_s_bucket{le="0.01"} 1 '
        '# {trace_id="00000001deadbeef"} 0.005']
    # Buckets without an exemplar render the plain exposition line.
    assert 'latency_s_bucket{le="0.1"} 2' in text.splitlines()


def test_render_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c_total", "", ("k",)).labels(k='a"b\\c\nd').inc()
    line = [l for l in render_prometheus(registry).splitlines() if l.startswith("c_total")][0]
    assert '\\"' in line and "\\\\" in line and "\\n" in line


def _valid_histogram_snapshot() -> dict:
    registry = MetricsRegistry()
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    return snapshot(registry)


@pytest.mark.parametrize("mutate, message", [
    (lambda s: s.update(schema="other/v9"), "schema"),
    (lambda s: s.update(metrics={}), "expected a list"),
    (lambda s: s["metrics"][0].update(kind="summary"), "kind"),
    (lambda s: s["metrics"][0]["samples"][0].update(count=-1), "count"),
    (lambda s: s["metrics"][0]["samples"][0]["buckets"].pop(), r"\+Inf"),
    (lambda s: s["metrics"][0]["samples"][0]["buckets"].insert(
        0, {"le": 0.5, "count": 99}), "non-decreasing"),
    (lambda s: s["metrics"][0]["samples"][0].update(count=7), "must equal"),
])
def test_validate_snapshot_rejects_malformed(mutate, message):
    snap = _valid_histogram_snapshot()
    mutate(snap)
    with pytest.raises(ValueError, match=message):
        validate_snapshot(snap)


def test_validate_snapshot_rejects_label_key_mismatch():
    snap = snapshot(_populated_registry())
    (requests,) = [m for m in snap["metrics"] if m["name"] == "requests_total"]
    requests["samples"][0]["labels"] = {"other": "a"}
    with pytest.raises(ValueError, match="labelnames"):
        validate_snapshot(snap)
