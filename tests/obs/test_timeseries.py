"""Time-series scrape loop: grid alignment, rates, windowed percentiles."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Series,
    TimeSeriesCollector,
    timeline,
    validate_timeline,
)


def test_series_ring_buffer_bounds_and_drops():
    series = Series("k", "gauge", capacity=3)
    for i in range(5):
        series.append(float(i), float(i * 10))
    assert len(series) == 3
    assert series.dropped == 2
    assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert series.latest() == (4.0, 40.0)
    with pytest.raises(ValueError):
        Series("k", "bogus", capacity=3)


def test_maybe_scrape_performs_every_due_grid_point():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "queue depth").labels()
    collector = TimeSeriesCollector(registry, interval_s=0.5)
    assert collector.maybe_scrape(0.4) == []
    gauge.set(3)
    # A big time jump performs all intervening grid scrapes, in order.
    assert collector.maybe_scrape(1.6) == [0.5, 1.0, 1.5]
    assert collector.maybe_scrape(1.6) == []  # idempotent at the same time
    assert collector.get("depth").points() == [
        (0.5, 3.0), (1.0, 3.0), (1.5, 3.0)]


def test_counter_becomes_rate_per_elapsed_interval():
    registry = MetricsRegistry()
    counter = registry.counter("reqs_total", "requests", ("svc",)).labels(svc="a")
    collector = TimeSeriesCollector(registry, interval_s=1.0)
    counter.inc(10)
    collector.maybe_scrape(1.0)
    counter.inc(4)
    collector.maybe_scrape(3.0)  # two grid points: rate then zero
    points = collector.get('reqs_total{svc="a"}:rate').points()
    assert points == [(1.0, 10.0), (2.0, 4.0), (3.0, 0.0)]


def test_histogram_yields_windowed_percentiles_and_rate():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0)).labels()
    collector = TimeSeriesCollector(registry, interval_s=1.0,
                                    percentiles=(50.0, 99.0))
    hist.observe(0.05)
    collector.maybe_scrape(1.0)
    hist.observe(0.5)
    hist.observe(0.5)
    collector.maybe_scrape(2.0)
    p50 = collector.get("lat:p50").points()
    # Second window contains only the two 0.5s samples, not the 0.05.
    assert p50[1][1] == pytest.approx(0.5, abs=0.5)
    assert p50[1][1] > p50[0][1]
    rate = collector.get("lat:rate").points()
    assert rate == [(1.0, 1.0), (2.0, 2.0)]


def test_timeline_export_round_trips_through_validator():
    registry = MetricsRegistry()
    registry.counter("a_total", "a").labels().inc()
    registry.gauge("b", "b").labels().set(2)
    collector = TimeSeriesCollector(registry, interval_s=0.25)
    collector.maybe_scrape(0.5)
    payload = timeline(collector)
    validate_timeline(payload)
    assert payload["scrapes"] == 2
    assert [s["key"] for s in payload["series"]] == ["a_total:rate", "b"]


def test_validate_timeline_rejects_unsorted_series_and_bad_points():
    registry = MetricsRegistry()
    registry.gauge("g", "g").labels().set(1)
    collector = TimeSeriesCollector(registry, interval_s=1.0)
    collector.maybe_scrape(1.0)
    payload = timeline(collector)
    broken = dict(payload, series=payload["series"] * 2)  # duplicate key
    with pytest.raises(ValueError):
        validate_timeline(broken)
    broken = dict(payload, schema="nope/v0")
    with pytest.raises(ValueError):
        validate_timeline(broken)
    bad_points = [dict(payload["series"][0], points=[[1.0, 1.0], [1.0, 2.0]])]
    with pytest.raises(ValueError):
        validate_timeline(dict(payload, series=bad_points))


def test_scrape_timestamps_must_increase():
    registry = MetricsRegistry()
    collector = TimeSeriesCollector(registry, interval_s=1.0)
    collector.scrape(1.0)
    with pytest.raises(ValueError):
        collector.scrape(1.0)
