"""Tail-based sampling: keep/drop decided when the trace finishes."""

import pytest

from repro.obs.sampling import TailSampler
from repro.obs.tracing import TraceContext, Tracer


def _traced_span(tracer, trace_id, name="work", duration_s=0.0, at_s=0.0):
    """Open and close one trace-tagged span (buffered by the sampler)."""
    clock = {"t": at_s}
    with tracer.clocked(lambda: clock["t"]):
        with tracer.attach(TraceContext(trace_id)):
            with tracer.span(name) as span:
                clock["t"] = at_s + duration_s
    return span


@pytest.mark.parametrize("kwargs", [
    {"slowest_k": -1},
    {"window_s": 0.0},
    {"head_every": -2},
    {"max_buffered_spans": 0},
])
def test_constructor_rejects_bad_policy(kwargs):
    with pytest.raises(ValueError):
        TailSampler(**kwargs)


def test_buffer_rejects_untagged_spans():
    sampler = TailSampler()
    tracer = Tracer(sampler=sampler)
    with tracer.span("plain") as span:  # no context attached
        pass
    with pytest.raises(ValueError):
        sampler.buffer(tracer, span)


def test_tagged_spans_are_buffered_not_retained_until_verdict():
    sampler = TailSampler(head_every=0)
    tracer = Tracer(sampler=sampler)
    _traced_span(tracer, "t1")
    assert tracer.spans() == []  # held by the sampler, not the tracer
    assert sampler.buffered_spans == 1
    assert sampler.pending_traces == 1


def test_flagged_traces_always_commit():
    sampler = TailSampler(slowest_k=0, head_every=0)
    tracer = Tracer(sampler=sampler)
    span = _traced_span(tracer, "bad")
    assert sampler.finish("bad", ts=0.0, duration_s=0.1, flagged=True) == "flagged"
    assert [s.name for s in tracer.spans()] == ["work"]
    assert span.retained
    assert sampler.decisions["flagged"] == 1
    assert sampler.buffered_spans == 0


def test_head_sampling_keeps_every_nth_ordinary_trace():
    sampler = TailSampler(slowest_k=0, window_s=100.0, head_every=3)
    tracer = Tracer(sampler=sampler)
    fates = []
    for index in range(7):
        _traced_span(tracer, f"t{index}")
        fates.append(sampler.finish(f"t{index}", ts=0.0, duration_s=0.001))
    # Ordinary traces 1, 4, 7 (1-indexed) commit as the head baseline.
    assert fates == ["head", "deferred", "deferred",
                     "head", "deferred", "deferred", "head"]
    sampler.flush()
    assert sampler.decisions == {"flagged": 0, "slow": 0, "head": 3,
                                 "dropped": 4}
    assert {s.trace_id for s in tracer.spans()} == {"t0", "t3", "t6"}


def test_window_keeps_slowest_k_and_drops_the_rest():
    sampler = TailSampler(slowest_k=2, window_s=10.0, head_every=0)
    tracer = Tracer(sampler=sampler)
    durations = {"a": 0.05, "b": 0.30, "c": 0.10, "d": 0.20}
    for trace_id, duration in durations.items():
        _traced_span(tracer, trace_id, duration_s=duration)
        assert sampler.finish(trace_id, ts=1.0, duration_s=duration) == "deferred"
    # Crossing the window boundary resolves the previous window.
    _traced_span(tracer, "next")
    sampler.finish("next", ts=11.0, duration_s=0.01)
    assert {s.trace_id for s in tracer.spans()} == {"b", "d"}  # the 2 slowest
    assert sampler.decisions["slow"] == 2
    assert sampler.decisions["dropped"] == 2
    assert tracer.dropped == 2  # a + c, one span each


def test_duration_ties_break_by_finish_order():
    sampler = TailSampler(slowest_k=1, window_s=10.0, head_every=0)
    tracer = Tracer(sampler=sampler)
    for trace_id in ("first", "second"):
        _traced_span(tracer, trace_id, duration_s=0.25)
        sampler.finish(trace_id, ts=0.0, duration_s=0.25)
    sampler.flush()
    assert [s.trace_id for s in tracer.spans()] == ["first"]


def test_flush_resolves_the_open_window():
    sampler = TailSampler(slowest_k=1, window_s=60.0, head_every=0)
    tracer = Tracer(sampler=sampler)
    for trace_id, duration in (("slow", 0.9), ("fast", 0.1)):
        _traced_span(tracer, trace_id, duration_s=duration)
        sampler.finish(trace_id, ts=0.0, duration_s=duration)
    assert tracer.spans() == []  # verdicts still pending
    sampler.flush()
    assert [s.trace_id for s in tracer.spans()] == ["slow"]
    assert sampler.decisions["dropped"] == 1
    assert sampler.pending_traces == 0


def test_buffer_bound_refuses_spans_and_counts_overflow():
    sampler = TailSampler(slowest_k=1, head_every=0, max_buffered_spans=2)
    tracer = Tracer(sampler=sampler)
    spans = [_traced_span(tracer, "big", name=f"s{i}") for i in range(4)]
    assert sampler.buffered_spans == 2
    assert sampler.overflow == 2
    assert tracer.dropped == 2
    assert [s.retained for s in spans] == [True, True, False, False]
    # The trace still resolves; only the buffered prefix survives.
    sampler.finish("big", ts=0.0, duration_s=0.5, flagged=True)
    assert [s.name for s in tracer.spans()] == ["s0", "s1"]


def test_one_sampler_serves_many_tracers():
    sampler = TailSampler(slowest_k=0, head_every=0)
    cluster = Tracer(name="cluster", sampler=sampler)
    replica = Tracer(name="replica", sampler=sampler)
    _traced_span(cluster, "t1", name="cluster.request")
    _traced_span(replica, "t1", name="serving.request")
    assert sampler.pending_traces == 1
    sampler.finish("t1", ts=0.0, duration_s=0.1, flagged=True)
    assert [s.name for s in cluster.spans()] == ["cluster.request"]
    assert [s.name for s in replica.spans()] == ["serving.request"]


def test_buffer_capacity_frees_when_a_trace_resolves():
    """The overflow bound is on *buffered* spans, not total spans seen:
    resolving a trace releases its slots for later traces."""
    sampler = TailSampler(slowest_k=1, head_every=0, max_buffered_spans=2)
    tracer = Tracer(sampler=sampler)
    _traced_span(tracer, "a", name="a0")
    _traced_span(tracer, "a", name="a1")
    assert sampler.buffered_spans == 2
    sampler.finish("a", ts=0.0, duration_s=0.5, flagged=True)
    assert sampler.buffered_spans == 0
    span = _traced_span(tracer, "b", name="b0")   # capacity is back
    assert span.retained and sampler.overflow == 0
    assert sampler.buffered_spans == 1


def test_overflow_bound_is_shared_across_traces():
    """One global bound: a span-heavy trace starves later traces' spans,
    and each refusal is counted exactly once."""
    sampler = TailSampler(slowest_k=2, head_every=0, max_buffered_spans=3)
    tracer = Tracer(sampler=sampler)
    for i in range(3):
        _traced_span(tracer, "hog", name=f"hog{i}")
    starved = _traced_span(tracer, "victim", name="victim0")
    assert not starved.retained
    assert sampler.overflow == 1
    assert sampler.buffered_spans == 3
    # Both traces still resolve; the victim just has no spans to keep.
    sampler.finish("hog", ts=0.0, duration_s=0.9, flagged=True)
    sampler.finish("victim", ts=0.0, duration_s=0.1, flagged=True)
    assert sorted(s.name for s in tracer.spans()) == ["hog0", "hog1", "hog2"]
    assert sampler.pending_traces == 0
