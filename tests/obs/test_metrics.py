"""Metrics primitives: counters, gauges, streaming histograms, registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# -- counter / gauge ----------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12.0


# -- histogram ----------------------------------------------------------


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram((2.0, 1.0))


def test_histogram_exact_aggregates_without_sample_storage():
    hist = Histogram((0.01, 0.1, 1.0))
    for value in (0.002, 0.002, 0.05, 0.5, 3.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(3.554)
    assert hist.min == 0.002
    assert hist.max == 3.0
    assert hist.mean == pytest.approx(3.554 / 5)
    # Cumulative le-buckets plus the +Inf overflow bucket.
    assert hist.bucket_counts() == [
        (0.01, 2), (0.1, 3), (1.0, 4), (float("inf"), 5),
    ]


def test_histogram_le_semantics_at_bucket_boundary():
    hist = Histogram((1.0, 2.0))
    hist.observe(1.0)  # le=1.0 bucket, not the (1, 2] one
    assert hist.bucket_counts()[0] == (1.0, 1)


def test_histogram_percentile_exact_for_repeated_value():
    hist = Histogram(DEFAULT_LATENCY_BUCKETS_S)
    for _ in range(500):
        hist.observe(0.002)
    for q in (0, 1, 50, 99, 100):
        assert hist.percentile(q) == 0.002


def test_histogram_percentile_monotone_and_clamped():
    hist = Histogram(DEFAULT_LATENCY_BUCKETS_S)
    for value in (0.001, 0.003, 0.02, 0.4, 7.0, 90.0, 300.0):
        hist.observe(value)
    previous = hist.percentile(0)
    for q in range(0, 101, 5):
        current = hist.percentile(q)
        assert current >= previous
        assert hist.min <= current <= hist.max
        previous = current
    assert hist.percentile(0) == hist.min
    assert hist.percentile(100) == hist.max  # exact even above the last bound


def test_histogram_percentile_edge_cases():
    hist = Histogram((1.0,))
    assert hist.percentile(50) == 0.0  # empty
    hist.observe(0.5)
    assert hist.percentile(50) == 0.5
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_histogram_empty_percentile_and_aggregates():
    hist = Histogram(DEFAULT_LATENCY_BUCKETS_S)
    assert hist.count == 0
    assert hist.sum == 0.0
    for q in (0, 50, 99, 100):
        assert hist.percentile(q) == 0.0
    assert hist.bucket_counts()[-1] == (float("inf"), 0)


def test_histogram_samples_above_top_bucket_bound():
    hist = Histogram((0.1, 1.0))
    for value in (5.0, 9.0, 300.0):
        hist.observe(value)
    # Everything lands in the +Inf overflow bucket...
    assert hist.bucket_counts() == [(0.1, 0), (1.0, 0), (float("inf"), 3)]
    # ...yet percentiles stay clamped to the exact observed range, never
    # to a bucket bound.
    assert hist.percentile(0) == 5.0
    assert hist.percentile(100) == 300.0
    assert 5.0 <= hist.percentile(50) <= 300.0


def test_histogram_exemplars_latest_wins_per_bucket():
    hist = Histogram((0.1, 1.0))
    hist.observe(0.05, exemplar="trace-a")
    hist.observe(0.07, exemplar="trace-b")  # same bucket: replaces a
    hist.observe(0.5)                       # no exemplar: bucket stays bare
    hist.observe(5.0, exemplar="trace-c")   # overflow bucket
    assert hist.exemplars() == [
        (0.1, "trace-b", 0.07),
        (float("inf"), "trace-c", 5.0),
    ]


def test_histogram_merge_carries_exemplars():
    a = Histogram((0.1, 1.0))
    b = Histogram((0.1, 1.0))
    a.observe(0.05, exemplar="old")
    b.observe(0.06, exemplar="new")
    b.observe(0.5, exemplar="mid")
    merged = Histogram(a.bounds).merge(a).merge(b)
    assert merged.exemplars() == [(0.1, "new", 0.06), (1.0, "mid", 0.5)]


def test_histogram_merge_adds_exactly_and_rejects_bound_mismatch():
    a = Histogram((0.1, 1.0))
    b = Histogram((0.1, 1.0))
    for value in (0.05, 0.5):
        a.observe(value)
    for value in (0.02, 7.0):
        b.observe(value)
    merged = Histogram(a.bounds).merge(a).merge(b)
    assert merged.count == 4
    assert merged.sum == pytest.approx(7.57)
    assert merged.min == 0.02
    assert merged.max == 7.0
    assert merged.bucket_counts() == [(0.1, 2), (1.0, 3), (float("inf"), 4)]
    # The copy idiom left the source untouched.
    assert a.count == 2
    with pytest.raises(ValueError):
        a.merge(Histogram((0.5, 2.0)))


def test_histogram_delta_recovers_the_window():
    hist = Histogram((0.1, 1.0))
    hist.observe(0.05)
    before = Histogram(hist.bounds).merge(hist)
    hist.observe(0.5)
    hist.observe(0.7)
    window = hist.delta(before)
    assert window.count == 2
    assert window.sum == pytest.approx(1.2)
    # Window min/max are bucket-resolution estimates bracketing the
    # true windowed samples.
    assert window.min <= 0.5 and window.max >= 0.7
    assert window.percentile(50) <= window.percentile(99)


def test_histogram_delta_empty_window_and_shrunk_counts():
    hist = Histogram((0.1, 1.0))
    hist.observe(0.05)
    snapshot = Histogram(hist.bounds).merge(hist)
    window = hist.delta(snapshot)
    assert window.count == 0
    assert window.sum == 0.0
    assert window.percentile(99) == 0.0
    with pytest.raises(ValueError):
        snapshot.delta(hist.merge(Histogram(hist.bounds).merge(hist)))
    with pytest.raises(ValueError):
        hist.delta(Histogram((0.5,)))


# -- families and registry ----------------------------------------------


def test_family_labels_validated_and_children_cached():
    registry = MetricsRegistry()
    family = registry.counter("requests_total", "requests", ("service",))
    child = family.labels(service="a")
    child.inc()
    assert family.labels(service="a") is child
    assert family.labels(service="b").value == 0
    with pytest.raises(ValueError):
        family.labels(wrong="a")
    with pytest.raises(ValueError):
        family.labels()


def test_unlabeled_family_convenience_methods():
    registry = MetricsRegistry()
    registry.counter("jobs_total").inc(3)
    registry.gauge("depth").set(7)
    registry.histogram("latency_s", buckets=(1.0, 2.0)).observe(1.5)
    assert registry.get("jobs_total").value == 3
    assert registry.get("depth").value == 7
    assert registry.get("latency_s").percentile(50) == 1.5


def test_registry_get_or_create_and_schema_conflicts():
    registry = MetricsRegistry()
    first = registry.counter("hits_total", "h", ("store",))
    assert registry.counter("hits_total", "h", ("store",)) is first
    with pytest.raises(ValueError):
        registry.gauge("hits_total", "h", ("store",))
    with pytest.raises(ValueError):
        registry.counter("hits_total", "h", ("other",))
    registry.histogram("lat", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("lat", buckets=(1.0, 3.0))


def test_registry_rejects_invalid_names():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("1bad")
    with pytest.raises(ValueError):
        registry.counter("ok_name", labelnames=("bad-label",))


def test_families_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("zeta_total")
    registry.counter("alpha_total")
    assert [f.name for f in registry.families()] == ["alpha_total", "zeta_total"]


def test_empty_registry_is_still_a_valid_shared_registry():
    """A freshly created registry is falsy under len(); components must
    not silently replace it with a private one."""
    from repro.core import CosmoPipeline, PipelineConfig

    registry = MetricsRegistry()
    assert len(registry) == 0 and not registry  # the trap
    pipeline = CosmoPipeline(PipelineConfig(), registry=registry)
    assert pipeline.registry is registry
    assert "pipeline_stage_items_total" in registry


def test_histogram_bare_observe_keeps_existing_bucket_exemplar():
    """Latest-wins means latest *exemplar*: an observation without one
    must not clear the bucket's remembered trace."""
    hist = Histogram((0.1, 1.0))
    hist.observe(0.05, exemplar="trace-a")
    hist.observe(0.07)                       # same bucket, no exemplar
    assert hist.exemplars() == [(0.1, "trace-a", 0.05)]
    hist.observe(0.06, exemplar="trace-b")   # a real exemplar replaces
    assert hist.exemplars() == [(0.1, "trace-b", 0.06)]


def test_histogram_merge_exemplar_replacement_order_is_merge_order():
    """Per bucket, the most recently merged histogram's exemplar wins;
    a merged histogram with a bare bucket leaves the target's intact."""
    target = Histogram((0.1, 1.0))
    first = Histogram((0.1, 1.0))
    second = Histogram((0.1, 1.0))
    bare = Histogram((0.1, 1.0))
    first.observe(0.05, exemplar="first")
    second.observe(0.06, exemplar="second")
    bare.observe(0.07)                       # same bucket, no exemplar
    target.merge(first).merge(second).merge(bare)
    assert target.exemplars() == [(0.1, "second", 0.06)]
    # Reversed merge order flips the winner — order is the only rule.
    reverse = Histogram((0.1, 1.0))
    reverse.merge(second).merge(first)
    assert reverse.exemplars() == [(0.1, "first", 0.05)]
