"""Snapshot drift detection: JS divergence, rules, evaluation."""

import pytest

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.obs import (
    DriftRule,
    compute_kg_health,
    default_drift_rules,
    evaluate_drift,
    js_divergence,
)


def _graph(relations, plausibility=0.8):
    kg = KnowledgeGraph()
    for index, relation in enumerate(relations):
        kg.add(KnowledgeTriple(
            head=f"q{index}", relation=relation, tail=f"intent {index}",
            domain="Apparel", behavior="search-buy",
            plausibility=plausibility, typicality=0.6,
        ))
    return kg


def _health(relations, version, parent=None, plausibility=0.8, entries=10):
    return compute_kg_health(_graph(relations, plausibility).columns(),
                             version=version, parent=parent, entries=entries)


# ---------------------------------------------------------------- js_divergence

def test_js_identical_distributions_is_zero():
    assert js_divergence({"a": 3, "b": 1}, {"a": 6, "b": 2}) == pytest.approx(0.0)
    assert js_divergence([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0)


def test_js_disjoint_support_is_one():
    assert js_divergence({"a": 5}, {"b": 5}) == pytest.approx(1.0)


def test_js_empty_cases():
    assert js_divergence({}, {}) == 0.0
    assert js_divergence([], []) == 0.0
    assert js_divergence({}, {"a": 3}) == 1.0
    assert js_divergence([1, 1], []) == 1.0


def test_js_is_symmetric_and_bounded():
    p, q = {"a": 9, "b": 1}, {"a": 1, "b": 9}
    forward = js_divergence(p, q)
    assert forward == pytest.approx(js_divergence(q, p))
    assert 0.0 < forward < 1.0


def test_js_sequences_zero_pad_to_common_width():
    # Trailing zeros are implicit: [1, 2] vs [1, 2, 0] are identical.
    assert js_divergence([1, 2], [1, 2, 0]) == pytest.approx(0.0)
    assert js_divergence([1, 0], [0, 1]) == pytest.approx(1.0)


# ---------------------------------------------------------------------- rules

def test_drift_rule_rejects_bad_specs():
    with pytest.raises(ValueError, match="needs a name"):
        DriftRule(name="", description="d", metric="m", max_value=0.5)
    with pytest.raises(ValueError, match="needs a metric"):
        DriftRule(name="r", description="d", metric="", max_value=0.5)
    with pytest.raises(ValueError, match="max_value"):
        DriftRule(name="r", description="d", metric="m", max_value=-1.0)
    with pytest.raises(ValueError, match="max_value"):
        DriftRule(name="r", description="d", metric="m",
                  max_value=float("nan"))


def test_default_rules_all_reference_known_metrics():
    parent = _health([Relation.USED_FOR_FUNC] * 4, "v1")
    child = _health([Relation.USED_FOR_FUNC] * 4, "v2", parent="v1")
    report = evaluate_drift(parent, child)  # would raise on unknown metric
    for rule in default_drift_rules():
        assert rule.metric in report.metrics


def test_unknown_metric_raises():
    parent = _health([Relation.USED_FOR_FUNC], "v1")
    child = _health([Relation.USED_FOR_FUNC], "v2")
    bad = DriftRule(name="r", description="d", metric="nope", max_value=1.0)
    with pytest.raises(ValueError, match="unknown metric 'nope'"):
        evaluate_drift(parent, child, rules=(bad,))


# ------------------------------------------------------------- evaluate_drift

def test_identical_snapshots_pass_clean():
    mix = [Relation.USED_FOR_FUNC, Relation.CAPABLE_OF, Relation.USED_TO]
    parent = _health(mix * 4, "v1")
    child = _health(mix * 4, "v2", parent="v1")
    report = evaluate_drift(parent, child)
    assert report.ok
    assert report.parent_version == "v1" and report.child_version == "v2"
    assert report.metrics["relation_js"] == pytest.approx(0.0)
    assert report.metrics["plausibility_mean_drop"] == 0.0


def test_relation_collapse_breaches_mix_rule():
    mix = [Relation.USED_FOR_FUNC, Relation.CAPABLE_OF, Relation.USED_TO,
           Relation.USED_FOR_AUD]
    parent = _health(mix * 3, "v1")
    child = _health([Relation.IS_A] * 12, "v2", parent="v1")
    report = evaluate_drift(parent, child)
    assert not report.ok
    breached = {breach.rule for breach in report.breaches}
    assert "relation-mix-shift" in breached
    breach = next(b for b in report.breaches if b.rule == "relation-mix-shift")
    assert breach.metric == "relation_js"
    assert breach.value == pytest.approx(1.0)
    assert breach.threshold == 0.35
    assert breach.state == "firing"
    assert breach.breach_id == "relation-mix-shift#1"


def test_plausibility_collapse_is_directional():
    mix = [Relation.USED_FOR_FUNC] * 6
    parent = _health(mix, "v1", plausibility=0.85)
    worse = _health(mix, "v2", plausibility=0.15)
    report = evaluate_drift(parent, worse)
    assert report.metrics["plausibility_mean_drop"] == pytest.approx(0.7)
    assert "critic-plausibility-collapse" in {b.rule for b in report.breaches}
    # An *improvement* of the same magnitude never fires the drop rule.
    better = evaluate_drift(worse, parent)
    assert better.metrics["plausibility_mean_drop"] == 0.0
    assert "critic-plausibility-collapse" not in {
        b.rule for b in better.breaches}


def test_edge_rates_are_relative_to_parent():
    mix = [Relation.USED_FOR_FUNC] * 8
    parent = _health(mix, "v1")
    child = _health(mix, "v2")
    report = evaluate_drift(parent, child, added_edges=4, removed_edges=3,
                            entries_added=5, entries_removed=0)
    assert report.metrics["added_edge_rate"] == pytest.approx(4 / 8)
    assert report.metrics["removed_edge_rate"] == pytest.approx(3 / 8)
    assert report.metrics["entry_added_rate"] == pytest.approx(5 / 10)
    breached = {b.rule for b in report.breaches}
    assert "edge-growth-rate" not in breached
    assert "edge-removal-rate" in breached  # 3/8 > 0.25


def test_entry_rates_are_measured_but_unruled():
    # An emptied serving table is the SLO guard's job; the drift gate
    # records the rate without ruling on it.
    mix = [Relation.USED_FOR_FUNC] * 4
    parent = _health(mix, "v1", entries=10)
    child = _health(mix, "v2", entries=0)
    report = evaluate_drift(parent, child, entries_removed=10)
    assert report.metrics["entry_removed_rate"] == pytest.approx(1.0)
    assert report.ok


def test_report_as_dict_sorts_metrics():
    parent = _health([Relation.USED_FOR_FUNC] * 2, "v1")
    child = _health([Relation.IS_A] * 2, "v2")
    payload = evaluate_drift(parent, child).as_dict()
    assert list(payload["metrics"]) == sorted(payload["metrics"])
    assert all(b["state"] == "firing" for b in payload["breaches"])
