"""Knowledge-plane health reports: computation, publishing, export."""

import json

import pytest

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.obs import (
    KG_HEALTH_SCHEMA,
    MetricsRegistry,
    compute_kg_health,
    funnel_from_registry,
    kg_health_report,
    publish_kg_health,
    validate_kg_health,
)


def _triple(head, relation, tail, domain="Apparel", behavior="search-buy",
            plausibility=0.8, typicality=0.6, support=1):
    return KnowledgeTriple(head=head, relation=relation, tail=tail,
                           domain=domain, behavior=behavior,
                           plausibility=plausibility, typicality=typicality,
                           support=support)


def _graph():
    kg = KnowledgeGraph()
    kg.extend([
        _triple("q0", Relation.USED_FOR_FUNC, "hiking", support=3),
        _triple("q0", Relation.CAPABLE_OF, "warmth", domain="Home"),
        _triple("q1", Relation.USED_FOR_FUNC, "hiking", behavior="co-buy",
                plausibility=0.4, typicality=0.2),
        _triple("q2", Relation.USED_TO, "sleep", plausibility=0.95),
    ])
    return kg


def test_compute_counts_and_distributions():
    report = compute_kg_health(_graph().columns(), version="v-test",
                               parent="v-parent", entries=3)
    assert report.version == "v-test" and report.parent == "v-parent"
    assert report.triples == 4
    assert report.entries == 3
    assert report.relation_edges == {"USED_FOR_FUNC": 2, "CAPABLE_OF": 1,
                                     "USED_TO": 1}
    assert report.domain_edges == {"Apparel": 3, "Home": 1}
    assert report.behavior_edges == {"search-buy": 3, "co-buy": 1}
    # Nodes: 3 heads + 3 distinct tails interned into one table.
    assert report.nodes == 6
    assert report.head_degree.nodes == 3
    assert report.head_degree.max == 2       # q0 has two edges
    assert report.tail_degree.max == 2       # hiking has two edges
    assert report.support_total == 6          # 3 + 1 + 1 + 1
    assert report.merged_edges == 1           # only the support=3 edge
    assert report.dedup_ratio == pytest.approx(6 / 4)


def test_score_histograms_cover_every_triple():
    report = compute_kg_health(_graph().columns())
    assert sum(report.plausibility.counts) == report.triples
    assert sum(report.typicality.counts) == report.triples
    assert report.plausibility.min == pytest.approx(0.4)
    assert report.plausibility.max == pytest.approx(0.95)
    assert 0.4 < report.plausibility.mean < 0.95


def test_degree_buckets_are_cumulative_with_overflow():
    report = compute_kg_health(_graph().columns())
    counts = [count for _bound, count in report.head_degree.buckets]
    assert counts == sorted(counts)                     # non-decreasing
    assert report.head_degree.buckets[-1][0] == float("inf")
    assert counts[-1] == report.head_degree.nodes       # overflow holds all


def test_empty_graph_health_is_well_formed():
    report = compute_kg_health(KnowledgeGraph().columns(), version="v-empty")
    assert report.triples == 0 and report.nodes == 0
    assert report.dedup_ratio == 1.0
    assert report.head_degree.nodes == 0
    assert sum(report.plausibility.counts) == 0
    validate_kg_health(kg_health_report([report]))


def test_publish_lands_versioned_gauges():
    registry = MetricsRegistry()
    report = compute_kg_health(_graph().columns(), version="v-pub", entries=3)
    publish_kg_health(report, registry)
    # samples() yields (labels, child); index by the version label value.
    found = {labels["version"]: child.value
             for labels, child in registry.get("kg_health_triples").samples()}
    assert found == {"v-pub": 4}
    relations = {(labels["version"], labels["relation"]): child.value
                 for labels, child
                 in registry.get("kg_health_relation_edges").samples()}
    assert relations[("v-pub", "USED_FOR_FUNC")] == 2
    scores = {labels["score"]: child.value
              for labels, child
              in registry.get("kg_health_critic_score_mean").samples()}
    assert scores["plausibility"] == pytest.approx(report.plausibility.mean)


def test_funnel_roundtrips_through_registry():
    registry = MetricsRegistry()
    counter = registry.counter("pipeline_funnel_total",
                               "knowledge funnel items per stage", ("stage",))
    counter.labels(stage="candidates").inc(100)
    counter.labels(stage="filtered").inc(60)
    counter.labels(stage="critic_accepted").inc(45)
    funnel = funnel_from_registry(registry)
    assert funnel == {"candidates": 100, "filtered": 60, "critic_accepted": 45}
    report = compute_kg_health(_graph().columns(), funnel=funnel)
    validate_kg_health(kg_health_report([report]))
    assert funnel_from_registry(MetricsRegistry()) == {}


def test_report_document_is_deterministic_and_validates():
    report = compute_kg_health(_graph().columns(), version="v-doc")
    doc = kg_health_report([report])
    assert doc["schema"] == KG_HEALTH_SCHEMA
    validate_kg_health(doc)
    a = json.dumps(kg_health_report([report]), sort_keys=True)
    b = json.dumps(kg_health_report([report]), sort_keys=True)
    assert a == b


@pytest.mark.parametrize("mutate, match", [
    (lambda d: d.update(schema="repro.obs.kg_health/v2"), "schema"),
    (lambda d: d["snapshots"][0].update(triples=5), "sum to 4"),
    (lambda d: d["snapshots"][0]["relation_edges"].update(extra=1), "sum to 5"),
    (lambda d: d["snapshots"][0]["head_degree"]["buckets"].pop(),
     r"\+Inf overflow"),
    (lambda d: d["snapshots"][0]["plausibility"]["counts"].__setitem__(0, 9),
     "bin counts sum"),
    (lambda d: d["snapshots"][0].update(
        funnel={"candidates": 5, "filtered": 9, "critic_accepted": 2}),
     "funnel must narrow"),
])
def test_validator_rejects_corrupted_documents(mutate, match):
    report = compute_kg_health(_graph().columns(), version="v-bad")
    doc = kg_health_report([report])
    mutate(doc)
    with pytest.raises(ValueError, match=match):
        validate_kg_health(doc)


def test_validator_rejects_inconsistent_gate_entries():
    report = compute_kg_health(_graph().columns())
    doc = kg_health_report([report], gates=[
        {"version": "v-x", "parent_version": None, "promote": True,
         "breaches": ["something"]},
    ])
    with pytest.raises(ValueError, match="cannot carry breaches"):
        validate_kg_health(doc)
    doc = kg_health_report([report], gates=[
        {"version": "v-x", "parent_version": None, "promote": False,
         "breaches": []},
    ])
    with pytest.raises(ValueError, match="must name its breaches"):
        validate_kg_health(doc)
