"""Span tracing: nesting, injectable clocks, Chrome trace export."""

import pytest

from repro.obs.tracing import (
    TraceContext,
    Tracer,
    chrome_trace,
    make_trace_id,
    validate_chrome_trace,
)


class FakeClock:
    """Deterministic manual clock for span timing."""

    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def test_spans_nest_with_parent_ids_and_depth():
    clock = FakeClock()
    tracer = Tracer(clock=clock.now)
    with tracer.span("root", seed=7) as root:
        clock.advance(1.0)
        with tracer.span("child") as child:
            clock.advance(0.5)
        with tracer.span("sibling") as sibling:
            clock.advance(0.25)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["root", "child", "sibling"]
    assert root.parent_id is None and root.depth == 0
    assert child.parent_id == root.span_id and child.depth == 1
    assert sibling.parent_id == root.span_id
    assert root.duration_s == pytest.approx(1.75)
    assert child.duration_s == pytest.approx(0.5)
    assert root.attributes == {"seed": 7}


def test_span_error_tagging_reraises():
    tracer = Tracer()
    with pytest.raises(KeyError):
        with tracer.span("boom"):
            raise KeyError("x")
    (span,) = tracer.spans()
    assert span.status == "error"
    assert span.error_type == "KeyError"
    assert span.end_s is not None


def test_clocked_swaps_and_restores_the_clock():
    clock = FakeClock()
    tracer = Tracer()  # default zero clock
    with tracer.clocked(clock.now):
        clock.advance(2.0)
        with tracer.span("inner"):
            clock.advance(1.0)
    with tracer.span("outer"):
        pass
    inner, outer = tracer.spans()
    assert inner.start_s == 2.0 and inner.duration_s == 1.0
    assert outer.start_s == 0.0  # zero clock restored


def test_max_spans_bounds_memory():
    tracer = Tracer(max_spans=2)
    for index in range(5):
        with tracer.span(f"s{index}"):
            pass
    assert len(tracer.spans()) == 2
    assert tracer.dropped == 3
    assert "3 span(s) dropped" in tracer.render_tree()


def test_render_tree_shows_nesting_and_errors():
    tracer = Tracer()
    with tracer.span("outer"):
        with pytest.raises(ValueError):
            with tracer.span("inner", n=3):
                raise ValueError("bad")
    tree = tracer.render_tree()
    lines = tree.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner")
    assert "n=3" in lines[1] and "!error:ValueError" in lines[1]


def test_chrome_trace_structure_and_units():
    clock = FakeClock()
    tracer = Tracer(clock=clock.now)
    with tracer.span("work", items=4):
        clock.advance(0.5)
    payload = chrome_trace([("pipeline", tracer)])
    validate_chrome_trace(payload)
    meta, event = payload["traceEvents"]
    assert meta == {"name": "process_name", "ph": "M", "pid": 1, "tid": 1,
                    "args": {"name": "pipeline"}}
    assert event["ph"] == "X"
    assert event["ts"] == 0.0
    assert event["dur"] == pytest.approx(500_000.0)  # microseconds
    assert event["args"]["parent_id"] == -1
    assert event["args"]["items"] == 4


def test_chrome_trace_gives_each_tracer_its_own_pid():
    a, b = Tracer(), Tracer()
    with a.span("x"):
        pass
    with b.span("y"):
        pass
    payload = chrome_trace([("one", a), ("two", b)])
    pids = {e["pid"] for e in payload["traceEvents"]}
    assert pids == {1, 2}


def test_chrome_trace_skips_unfinished_spans():
    tracer = Tracer()
    generator = tracer.span("open-ended")
    generator.__enter__()  # never exited
    payload = chrome_trace([("p", tracer)])
    assert [e["ph"] for e in payload["traceEvents"]] == ["M"]


@pytest.mark.parametrize("payload", [
    [],  # not an object
    {},  # no traceEvents
    {"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "name": "x"}]},  # bad phase
    {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x",
                      "ts": 0, "dur": -1}]},  # negative duration
    {"traceEvents": [{"ph": "X", "pid": "1", "tid": 1, "name": "x",
                      "ts": 0, "dur": 0}]},  # pid not an int
    {"traceEvents": [{"ph": "X", "pid": True, "tid": 1, "name": "x",
                      "ts": 0, "dur": 0}]},  # bool masquerading as pid
    {"traceEvents": [{"ph": "X", "pid": 1, "tid": False, "name": "x",
                      "ts": 0, "dur": 0}]},  # bool masquerading as tid
    {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x",
                      "ts": True, "dur": 0}]},  # bool masquerading as ts
    {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x",
                      "ts": -0.5, "dur": 0}]},  # negative timestamp
    {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0,
                      "dur": 0, "args": {"span_id": 1, "parent_id": 7}}]},
    # ^ parent_id does not resolve to any span in the pid
    {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0, "dur": 0,
         "args": {"span_id": 3, "parent_id": -1}},
        {"ph": "X", "pid": 1, "tid": 1, "name": "y", "ts": 0, "dur": 0,
         "args": {"span_id": 3, "parent_id": -1}},
    ]},  # duplicate span_id within a pid
    {"traceEvents": [{"ph": "s", "pid": 1, "tid": 1, "name": "trace",
                      "ts": 0, "id": 1}]},  # flow start without finish
])
def test_validate_chrome_trace_rejects_malformed(payload):
    with pytest.raises(ValueError):
        validate_chrome_trace(payload)


def test_parent_id_resolves_across_pids_is_still_rejected():
    # Referential integrity is per-pid: a parent_id pointing at a span
    # in a *different* process does not count.
    payload = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "a", "ts": 0, "dur": 0,
         "args": {"span_id": 1, "parent_id": -1}},
        {"ph": "X", "pid": 2, "tid": 1, "name": "b", "ts": 0, "dur": 0,
         "args": {"span_id": 2, "parent_id": 1}},
    ]}
    with pytest.raises(ValueError):
        validate_chrome_trace(payload)


# -- trace-context propagation ---------------------------------------------


def test_make_trace_id_is_deterministic_and_sequence_unique():
    assert make_trace_id(5, "query 001") == make_trace_id(5, "query 001")
    assert make_trace_id(5, "query 001") != make_trace_id(6, "query 001")
    one = make_trace_id(1, "same query")
    two = make_trace_id(2, "same query")
    assert len(one) == 16 and int(one, 16) >= 0
    # Same query, different sequence: the key half (low 8 hex) matches.
    assert one[8:] == two[8:] and one[:8] != two[:8]


def test_attach_tags_spans_and_links_stack_roots():
    tracer = Tracer(name="replica")
    context = TraceContext("abc123", parent_ref="cluster:7")
    with tracer.attach(context):
        with tracer.span("serving.request") as root:
            with tracer.span("cache.fetch") as child:
                pass
    assert root.trace_id == child.trace_id == "abc123"
    # Only the stack root inherits the remote parent ref.
    assert root.remote_parent == "cluster:7"
    assert child.remote_parent is None
    assert child.parent_id == root.span_id
    assert tracer.ref(root) == f"replica:{root.span_id}"
    assert tracer.active_context is None  # detached on exit


def test_attach_restores_previous_context_and_clock():
    clock = FakeClock()
    tracer = Tracer()
    outer = TraceContext("outer")
    with tracer.attach(outer):
        with tracer.attach(TraceContext("inner"), clock=clock.now):
            clock.advance(3.0)
            with tracer.span("in") as inner_span:
                pass
        assert tracer.active_context is outer
        with tracer.span("out") as outer_span:
            pass
    assert inner_span.trace_id == "inner" and inner_span.start_s == 3.0
    assert outer_span.trace_id == "outer" and outer_span.start_s == 0.0


def test_trace_context_child_and_equality():
    context = TraceContext("tid")
    child = context.child("cluster:3")
    assert child.trace_id == "tid" and child.parent_ref == "cluster:3"
    assert context == TraceContext("tid")
    assert context != child
    assert hash(context) == hash(TraceContext("tid"))
    assert context != "tid"  # NotImplemented falls back to not-equal


def test_record_appends_completed_span_with_explicit_window():
    tracer = Tracer()
    with tracer.span("root") as root:
        pass
    span = tracer.record("retro", start_s=1.0, end_s=2.5, parent=root, n=1)
    assert span.start_s == 1.0 and span.end_s == 2.5
    assert span.parent_id == root.span_id
    assert span.attributes == {"n": 1}
    with pytest.raises(ValueError):
        tracer.record("backwards", start_s=2.0, end_s=1.0)


def test_head_truncated_export_stays_referentially_valid():
    tracer = Tracer(max_spans=2)
    with tracer.span("root"):
        with tracer.span("middle"):
            with tracer.span("leaf"):  # exceeds max_spans: dropped
                pass
    payload = chrome_trace([("p", tracer)])
    validate_chrome_trace(payload)
    assert [e["name"] for e in payload["traceEvents"]] == [
        "process_name", "root", "middle"]


def test_dropped_middle_span_reparents_descendants_in_export():
    tracer = Tracer(max_spans=10)
    with tracer.span("root") as root:
        with tracer.span("middle") as middle:
            middle.retained = False  # sampled out mid-trace
            tracer._spans.remove(middle)
            tracer.dropped += 1
            with tracer.span("leaf") as leaf:
                pass
    assert leaf.export_parent_id == root.span_id
    payload = chrome_trace([("p", tracer)])
    validate_chrome_trace(payload)
    (leaf_event,) = [e for e in payload["traceEvents"]
                     if e.get("name") == "leaf"]
    assert leaf_event["args"]["parent_id"] == root.span_id


def test_cross_tracer_flow_events_pair_up():
    cluster = Tracer(name="cluster")
    replica = Tracer(name="replica")
    context = TraceContext("t1")
    with cluster.attach(context):
        with cluster.span("cluster.request") as root:
            with replica.attach(context.child(cluster.ref(root))):
                with replica.span("serving.request"):
                    pass
    payload = chrome_trace([("cluster", cluster), ("replica", replica)])
    validate_chrome_trace(payload)
    flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
    assert [f["ph"] for f in flows] == ["s", "f"]
    assert flows[0]["pid"] == 1 and flows[1]["pid"] == 2
    assert flows[0]["id"] == flows[1]["id"]


def test_flow_to_unretained_parent_is_omitted():
    replica = Tracer(name="replica")
    with replica.attach(TraceContext("t1", parent_ref="cluster:99")):
        with replica.span("serving.request"):
            pass
    # The remote parent's tracer isn't part of the export: no dangling
    # one-sided flow may appear.
    payload = chrome_trace([("replica", replica)])
    validate_chrome_trace(payload)
    assert [e["ph"] for e in payload["traceEvents"]] == ["M", "X"]


# -- clock override scopes --------------------------------------------------


def test_clocked_restores_clock_when_the_body_raises():
    clock = FakeClock()
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.clocked(clock.now):
            raise RuntimeError("boom")
    with tracer.span("after"):
        pass
    (span,) = tracer.spans()
    assert span.start_s == 0.0  # zero clock restored despite the error


def test_clocked_scopes_nest_and_unwind_in_order():
    slow, fast = FakeClock(), FakeClock()
    slow.advance(10.0)
    fast.advance(100.0)
    tracer = Tracer()
    with tracer.clocked(slow.now):
        with tracer.clocked(fast.now):
            with tracer.span("inner"):
                pass
        with tracer.span("middle"):
            pass
    with tracer.span("outer"):
        pass
    inner, middle, outer = tracer.spans()
    assert inner.start_s == 100.0
    assert middle.start_s == 10.0
    assert outer.start_s == 0.0


def test_span_straddling_a_clocked_boundary_times_each_edge_on_its_clock():
    clock = FakeClock()
    tracer = Tracer()  # zero clock
    span = tracer.span("straddle")
    span.__enter__()  # opened at 0.0 on the zero clock
    with tracer.clocked(clock.now):
        clock.advance(4.0)
        span.__exit__(None, None, None)  # closed on the override clock
    assert span.start_s == 0.0
    assert span.end_s == 4.0
    assert span.duration_s == 4.0
