"""Span tracing: nesting, injectable clocks, Chrome trace export."""

import pytest

from repro.obs.tracing import Tracer, chrome_trace, validate_chrome_trace


class FakeClock:
    """Deterministic manual clock for span timing."""

    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def test_spans_nest_with_parent_ids_and_depth():
    clock = FakeClock()
    tracer = Tracer(clock=clock.now)
    with tracer.span("root", seed=7) as root:
        clock.advance(1.0)
        with tracer.span("child") as child:
            clock.advance(0.5)
        with tracer.span("sibling") as sibling:
            clock.advance(0.25)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["root", "child", "sibling"]
    assert root.parent_id is None and root.depth == 0
    assert child.parent_id == root.span_id and child.depth == 1
    assert sibling.parent_id == root.span_id
    assert root.duration_s == pytest.approx(1.75)
    assert child.duration_s == pytest.approx(0.5)
    assert root.attributes == {"seed": 7}


def test_span_error_tagging_reraises():
    tracer = Tracer()
    with pytest.raises(KeyError):
        with tracer.span("boom"):
            raise KeyError("x")
    (span,) = tracer.spans()
    assert span.status == "error"
    assert span.error_type == "KeyError"
    assert span.end_s is not None


def test_clocked_swaps_and_restores_the_clock():
    clock = FakeClock()
    tracer = Tracer()  # default zero clock
    with tracer.clocked(clock.now):
        clock.advance(2.0)
        with tracer.span("inner"):
            clock.advance(1.0)
    with tracer.span("outer"):
        pass
    inner, outer = tracer.spans()
    assert inner.start_s == 2.0 and inner.duration_s == 1.0
    assert outer.start_s == 0.0  # zero clock restored


def test_max_spans_bounds_memory():
    tracer = Tracer(max_spans=2)
    for index in range(5):
        with tracer.span(f"s{index}"):
            pass
    assert len(tracer.spans()) == 2
    assert tracer.dropped == 3
    assert "3 span(s) dropped" in tracer.render_tree()


def test_render_tree_shows_nesting_and_errors():
    tracer = Tracer()
    with tracer.span("outer"):
        with pytest.raises(ValueError):
            with tracer.span("inner", n=3):
                raise ValueError("bad")
    tree = tracer.render_tree()
    lines = tree.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner")
    assert "n=3" in lines[1] and "!error:ValueError" in lines[1]


def test_chrome_trace_structure_and_units():
    clock = FakeClock()
    tracer = Tracer(clock=clock.now)
    with tracer.span("work", items=4):
        clock.advance(0.5)
    payload = chrome_trace([("pipeline", tracer)])
    validate_chrome_trace(payload)
    meta, event = payload["traceEvents"]
    assert meta == {"name": "process_name", "ph": "M", "pid": 1, "tid": 1,
                    "args": {"name": "pipeline"}}
    assert event["ph"] == "X"
    assert event["ts"] == 0.0
    assert event["dur"] == pytest.approx(500_000.0)  # microseconds
    assert event["args"]["parent_id"] == -1
    assert event["args"]["items"] == 4


def test_chrome_trace_gives_each_tracer_its_own_pid():
    a, b = Tracer(), Tracer()
    with a.span("x"):
        pass
    with b.span("y"):
        pass
    payload = chrome_trace([("one", a), ("two", b)])
    pids = {e["pid"] for e in payload["traceEvents"]}
    assert pids == {1, 2}


def test_chrome_trace_skips_unfinished_spans():
    tracer = Tracer()
    generator = tracer.span("open-ended")
    generator.__enter__()  # never exited
    payload = chrome_trace([("p", tracer)])
    assert [e["ph"] for e in payload["traceEvents"]] == ["M"]


@pytest.mark.parametrize("payload", [
    [],  # not an object
    {},  # no traceEvents
    {"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "name": "x"}]},  # bad phase
    {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x",
                      "ts": 0, "dur": -1}]},  # negative duration
    {"traceEvents": [{"ph": "X", "pid": "1", "tid": 1, "name": "x",
                      "ts": 0, "dur": 0}]},  # pid not an int
])
def test_validate_chrome_trace_rejects_malformed(payload):
    with pytest.raises(ValueError):
        validate_chrome_trace(payload)
