"""Trace assembly across tracers: critical path, stage self-times."""

import pytest

from repro.obs.tracing import TraceContext, Tracer
from repro.obs.trace_query import (
    TRACES_SCHEMA,
    TraceAnalyzer,
    stage_for,
    trace_summary,
    validate_trace_summary,
)


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _request_trace(trace_id="t1", queue_s=0.2, generate_s=0.5, tail_s=0.1):
    """One cluster→replica request: root, queueing child, remote serve.

    Timeline: root [0, queue+generate+tail]; queueing [0, queue] on the
    cluster tracer; serving.request [queue, queue+generate+tail] on the
    replica tracer with a resilience.attempt child covering generate_s.
    """
    clock = ManualClock()
    cluster = Tracer(name="cluster", clock=lambda: clock.t)
    replica = Tracer(name="replica", clock=lambda: clock.t)
    context = TraceContext(trace_id)
    with cluster.attach(context):
        with cluster.span("cluster.request") as root:
            with cluster.span("cluster.queueing"):
                clock.t += queue_s
            with replica.attach(context.child(cluster.ref(root))):
                with replica.span("serving.request"):
                    with replica.span("resilience.attempt"):
                        clock.t += generate_s
                    clock.t += tail_s
    return [("cluster", cluster), ("replica", replica)]


def test_stage_for_prefix_mapping():
    assert stage_for("cluster.queueing") == "queueing"
    assert stage_for("cluster.flush") == "batch"
    assert stage_for("serving.run_batch") == "batch"
    assert stage_for("cache.fetch") == "cache"
    assert stage_for("serving.degraded_serve") == "degradation"
    assert stage_for("resilience.backoff") == "retry"
    assert stage_for("resilience.attempt") == "generation"
    assert stage_for("router.route") == "routing"
    assert stage_for("cluster.request") == "other"


def test_cross_tracer_assembly_is_connected():
    analyzer = TraceAnalyzer(_request_trace())
    assert analyzer.trace_ids() == ["t1"]
    assert analyzer.is_connected("t1")
    root = analyzer.root("t1")
    assert root.name == "cluster.request"
    assert len(analyzer.spans_for("t1")) == 4
    assert analyzer.duration_s("t1") == pytest.approx(0.8)


def test_stage_breakdown_sums_to_charged_latency():
    analyzer = TraceAnalyzer(_request_trace(queue_s=0.2, generate_s=0.5,
                                            tail_s=0.1))
    stages = analyzer.stage_breakdown("t1")
    assert stages["queueing"] == pytest.approx(0.2)
    assert stages["generation"] == pytest.approx(0.5)
    # serving.request's tail self-time plus the root's zero self-time.
    assert stages["other"] == pytest.approx(0.1)
    assert sum(stages.values()) == pytest.approx(analyzer.duration_s("t1"))


def test_critical_path_follows_largest_child():
    analyzer = TraceAnalyzer(_request_trace(queue_s=0.2, generate_s=0.5))
    path = analyzer.critical_path("t1")
    assert [step.name for step in path] == [
        "cluster.request", "serving.request", "resilience.attempt"]
    assert path[0].self_s == pytest.approx(0.0)
    assert path[-1].stage == "generation"
    # Each step's clipped duration never exceeds its parent's.
    assert all(a.duration_s >= b.duration_s for a, b in zip(path, path[1:]))


def test_async_overhang_clips_to_the_charged_window():
    clock = ManualClock()
    tracer = Tracer(name="cluster", clock=lambda: clock.t)
    with tracer.attach(TraceContext("t1")):
        with tracer.span("cluster.request") as root:
            clock.t = 1.0
        # Post-request flush attributed to the trace, after root closed.
        tracer.record("cluster.flush", start_s=1.0, end_s=3.0, parent=root)
    analyzer = TraceAnalyzer([("cluster", tracer)])
    stages = analyzer.stage_breakdown("t1")
    assert stages.get("batch", 0.0) == 0.0  # clipped: outside [0, 1]
    assert sum(stages.values()) == pytest.approx(analyzer.duration_s("t1"))


def test_disconnected_trace_reports_multiple_roots():
    tracer = Tracer(name="a")
    with tracer.attach(TraceContext("t1", parent_ref="elsewhere:99")):
        with tracer.span("orphan-one"):
            pass
        with tracer.span("orphan-two"):
            pass
    analyzer = TraceAnalyzer([("a", tracer)])
    assert not analyzer.is_connected("t1")
    assert [n.name for n in analyzer.roots("t1")] == ["orphan-one",
                                                      "orphan-two"]


def test_duplicate_tracer_names_are_rejected():
    with pytest.raises(ValueError):
        TraceAnalyzer([("p", Tracer(name="dup")), ("q", Tracer(name="dup"))])


def test_aggregate_totals_across_traces():
    tracers = _request_trace("t1")
    # Second, later trace on the same tracers.
    clock = ManualClock()
    clock.t = 10.0
    cluster = dict(tracers)["cluster"]
    with cluster.clocked(lambda: clock.t):
        with cluster.attach(TraceContext("t2")):
            with cluster.span("cluster.request"):
                with cluster.span("cluster.queueing"):
                    clock.t += 1.0
    aggregate = TraceAnalyzer(tracers).aggregate()
    assert aggregate["traces"] == 2
    assert aggregate["spans"] == 6
    assert aggregate["stages"]["queueing"]["total_s"] == pytest.approx(1.2)
    assert aggregate["stages"]["queueing"]["traces"] == 2
    assert list(aggregate["stages"]) == sorted(aggregate["stages"])


def test_trace_summary_round_trips_validation():
    tracers = _request_trace()
    summary = trace_summary(TraceAnalyzer(tracers))
    validate_trace_summary(summary)
    assert summary["schema"] == TRACES_SCHEMA
    (entry,) = summary["traces"]
    assert entry["trace_id"] == "t1"
    assert entry["connected"] is True
    assert entry["processes"] == ["cluster", "replica"]
    assert entry["spans"] == 4
    assert [step["name"] for step in entry["critical_path"]] == [
        "cluster.request", "serving.request", "resilience.attempt"]


@pytest.mark.parametrize("mutate", [
    lambda s: s.update(schema="wrong/v0"),
    lambda s: s["traces"][0].update(spans=0),
    lambda s: s["traces"][0].update(connected="yes"),
    lambda s: s["traces"][0]["stages"].update(queueing=-0.1),
    lambda s: s["traces"][0].update(critical_path=[]),
    lambda s: s["aggregate"].update(traces=99),
    lambda s: s["aggregate"].update(spans=True),
])
def test_validate_trace_summary_rejects_malformed(mutate):
    summary = trace_summary(TraceAnalyzer(_request_trace()))
    mutate(summary)
    with pytest.raises(ValueError):
        validate_trace_summary(summary)
