"""Table 1: comparison among commonsense knowledge graphs.

Static rows for the published KGs come from the paper; the COSMO row is
*computed* from the KG our pipeline builds at bench scale (so absolute
counts are scaled down while the qualitative columns — source, node
types, intention coverage, behavior coverage — are reproduced exactly).
"""

from conftest import publish

from repro.reporting import Table

# (name, nodes, edges, relations, source, ecommerce, intention, behavior)
_PUBLISHED = (
    ("ConceptNet", "8M", "21M", 36, "Crowdsource", "x", "yes", "x"),
    ("ATOMIC", "300K", "870K", 9, "Crowdsource", "x", "yes", "x"),
    ("AliCoCo", "163K", "813K", 91, "Extraction", "yes", "x", "search logs"),
    ("AliCG", "5M", "13.5M", 1, "Extraction", "x", "x", "search logs"),
    ("FolkScope", "1.2M", "12M", 19, "LLM Generation", "2 domains", "yes", "co-buy"),
)


def _build_table(kg) -> str:
    stats = kg.stats()
    behaviors = sorted({t.behavior for t in kg.triples()})
    table = Table(
        "Table 1 — KG comparison (COSMO row computed at bench scale)",
        ["KG", "# Nodes", "# Edges", "# Rels", "Source", "E-com", "Intention", "Behavior"],
    )
    for row in _PUBLISHED:
        table.add_row(*row)
    table.add_separator()
    table.add_row(
        "COSMO (ours, scaled)",
        stats.nodes,
        stats.edges,
        stats.relations,
        "LLM Generation",
        f"{stats.domains} domains",
        "yes",
        "&".join(b.replace("-", "") for b in behaviors),
    )
    return table.render()


def test_table1_kg_comparison(bench_pipeline, benchmark):
    kg = bench_pipeline.kg
    stats = benchmark(kg.stats)
    publish("table1_kg_comparison", _build_table(kg))
    # Shape: COSMO covers all 18 domains and more relations than AliCG,
    # from LLM generation over both behavior types.
    assert stats.domains == 18
    assert stats.relations >= 12
    behaviors = {t.behavior for t in kg.triples()}
    assert behaviors == {"co-buy", "search-buy"}
