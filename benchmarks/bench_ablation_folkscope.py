"""COSMO vs FolkScope (§2, Table 1): what each extension buys.

FolkScope (the system COSMO extends) covers two domains, co-buy only,
and serves knowledge by running the teacher LLM per behavior.  The bench
runs both pipelines on the same world and quantifies COSMO's scale-up:
domain and behavior coverage, KG size, and serving cost per behavior.
"""

import pytest
from conftest import BENCH_PIPELINE_CONFIG, publish

from repro.core.folkscope import FolkScopeConfig, FolkScopePipeline
from repro.reporting import Table


@pytest.fixture(scope="module")
def folkscope(bench_pipeline):
    config = FolkScopeConfig(
        seed=7,
        world=BENCH_PIPELINE_CONFIG.world,
        cobuy_pairs_per_domain=BENCH_PIPELINE_CONFIG.cobuy_pairs_per_domain,
        annotation_budget=600,
    )
    return FolkScopePipeline(config).run(world=bench_pipeline.world)


def test_cosmo_vs_folkscope(bench_pipeline, folkscope, benchmark):
    cosmo_kg = bench_pipeline.kg
    folk_kg = folkscope.kg
    cosmo_stats = cosmo_kg.stats()
    folk_stats = folk_kg.stats()

    cosmo_teacher_cost = (bench_pipeline.teacher_latency.total_simulated_s
                          / len(bench_pipeline.candidates))
    lm = bench_pipeline.cosmo_lm
    before = lm.latency.total_simulated_s
    prompts = [lm.prompt_for_sample(bench_pipeline.world, s)
               for s in bench_pipeline.samples[:50]]
    lm.generate_batch(prompts)
    cosmo_serving = (lm.latency.total_simulated_s - before) / len(prompts)

    table = Table("COSMO vs FolkScope (same world)",
                  ["Metric", "FolkScope", "COSMO"])
    table.add_row("Domains", folk_stats.domains, cosmo_stats.domains)
    table.add_row("Behaviors", "co-buy", "co-buy & search-buy")
    table.add_row("Relations", folk_stats.relations, cosmo_stats.relations)
    table.add_row("KG edges", folk_stats.edges, cosmo_stats.edges)
    table.add_row("Serving cost / new behavior",
                  f"{folkscope.serving_cost_per_behavior():.2f} s (teacher LLM)",
                  f"{cosmo_serving * 1000:.1f} ms (COSMO-LM)")
    publish("ablation_folkscope", table.render())

    benchmark(folk_kg.stats)

    # COSMO's §2 claims over FolkScope: broader coverage and a serving
    # path that does not require per-behavior LLM inference.
    assert cosmo_stats.domains > folk_stats.domains
    assert cosmo_stats.edges > folk_stats.edges
    assert folkscope.serving_cost_per_behavior() / cosmo_serving > 100
    assert {t.behavior for t in cosmo_kg.triples()} == {"co-buy", "search-buy"}
    assert {t.behavior for t in folk_kg.triples()} == {"co-buy"}
