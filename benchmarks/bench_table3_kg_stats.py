"""Table 3: per-category KG statistics.

For every domain and both behavior types: sampled behavior pairs,
annotated candidates, and refined KG edges — the exact layout of the
paper's Table 3 at bench scale.
"""

from conftest import publish

from repro.catalog import DOMAIN_NAMES
from repro.reporting import Table


def test_table3_kg_statistics(bench_pipeline, benchmark):
    pair_counts = benchmark(bench_pipeline.behavior_pair_counts)
    annotation_counts = bench_pipeline.annotation_counts()
    kg = bench_pipeline.kg

    table = Table(
        "Table 3 — COSMO KG statistics (bench scale)",
        ["Category", "CB pairs", "CB annot", "CB edges",
         "SB pairs", "SB annot", "SB edges"],
    )
    totals = [0] * 6
    for domain in DOMAIN_NAMES:
        row = [
            pair_counts[(domain, "co-buy")],
            annotation_counts[(domain, "co-buy")],
            kg.edges_for(domain, "co-buy"),
            pair_counts[(domain, "search-buy")],
            annotation_counts[(domain, "search-buy")],
            kg.edges_for(domain, "search-buy"),
        ]
        totals = [t + v for t, v in zip(totals, row)]
        table.add_row(domain, *row)
    table.add_separator()
    table.add_row("Total", *totals)
    publish("table3_kg_stats", table.render())

    # Shape checks mirroring the paper's totals:
    # every domain contributes pairs and edges for both behaviors...
    for domain in DOMAIN_NAMES:
        assert pair_counts[(domain, "co-buy")] > 0
        assert pair_counts[(domain, "search-buy")] > 0
        assert kg.edges_for(domain, "co-buy") > 0
        assert kg.edges_for(domain, "search-buy") > 0
    # ...co-buy dominates pair volume (3.1M vs 1.9M in the paper)...
    assert totals[0] > totals[3]
    # ...and both behaviors receive a substantial annotation share (the
    # paper splits exactly 15k/15k; at bench scale the refined search-buy
    # pool can be smaller than its half-budget, so we assert proportion).
    assert min(totals[1], totals[4]) >= 0.25 * (totals[1] + totals[4])
