"""Table 8: session-based recommendation, 8 models × 2 domains.

The knowledge features for COSMO-GNN come from the finetuned COSMO-LM
(generated per unique (query, item) pair and vectorized by the shared
text encoder).  Paper shape: GNN models beat sequential baselines, FPMC
is weakest, COSMO-GNN wins Hits@10/NDCG@10 on both domains, with the
larger Hits@10 gain on electronics (more query revisions to exploit).
"""

import pytest
from bench_table7_session_stats import SESSION_CONFIGS, session_logs, session_world  # noqa: F401
from conftest import publish

from repro.apps.recommendation import (
    MODEL_NAMES,
    TrainConfig,
    build_session_dataset,
    evaluate_session_model,
    train_session_model,
)
from repro.embeddings import TextEncoder
from repro.reporting import Table, format_float

TRAIN_CONFIG = TrainConfig(epochs=2, dim=48, knowledge_dim=64)


def _knowledge_provider(bench_pipeline, world):
    """Batched, memoized COSMO-LM knowledge for (query, item) pairs."""
    lm = bench_pipeline.cosmo_lm
    cache: dict[tuple[str, str], str] = {}

    def provide(query_text: str, item_id: str) -> str:
        key = (query_text, item_id)
        if key not in cache:
            product = world.catalog.get(item_id)
            prompt = lm.searchbuy_prompt(query_text, product.title, product.domain,
                                         product_type=product.product_type)
            cache[key] = lm.generate_batch([prompt]).require()[0].text
        return cache[key]

    return provide


@pytest.fixture(scope="module")
def table8_results(bench_pipeline, session_world, session_logs):  # noqa: F811
    encoder = TextEncoder(dim=TRAIN_CONFIG.knowledge_dim, seed=7)
    provider = _knowledge_provider(bench_pipeline, session_world)
    results: dict[tuple[str, str], dict[str, float]] = {}
    for domain_name, log in session_logs.items():
        dataset = build_session_dataset(log, max_len=10,
                                        knowledge_provider=provider, encoder=encoder)
        for model_name in MODEL_NAMES:
            model = train_session_model(model_name, dataset, TRAIN_CONFIG, seed=7)
            results[(domain_name, model_name)] = evaluate_session_model(
                model, dataset, config=TRAIN_CONFIG
            )
    return results


def test_table8_recommendation(table8_results, benchmark):
    results = table8_results
    metrics = ("Hits@10", "NDCG@10", "MRR@10")
    table = Table("Table 8 — session-based recommendation",
                  ["Method",
                   *(f"clothing {m}" for m in metrics),
                   *(f"electronics {m}" for m in metrics)])
    for model_name in MODEL_NAMES:
        table.add_row(
            model_name,
            *(format_float(results[("clothing", model_name)][m]) for m in metrics),
            *(format_float(results[("electronics", model_name)][m]) for m in metrics),
        )
    gce_c = results[("clothing", "GCE-GNN")]["Hits@10"]
    cosmo_c = results[("clothing", "COSMO-GNN")]["Hits@10"]
    gce_e = results[("electronics", "GCE-GNN")]["Hits@10"]
    cosmo_e = results[("electronics", "COSMO-GNN")]["Hits@10"]
    delta = (f"Δ Hits@10 vs GCE-GNN: clothing {100 * (cosmo_c / gce_c - 1):+.2f}% "
             f"(paper +4.05%), electronics {100 * (cosmo_e / gce_e - 1):+.2f}% "
             f"(paper +5.82%)")
    publish("table8_recommendation", table.render() + "\n" + delta)

    benchmark(lambda: sum(v["Hits@10"] for v in results.values()))

    for domain in ("clothing", "electronics"):
        hits = {name: results[(domain, name)]["Hits@10"] for name in MODEL_NAMES}
        # FPMC (first-order Markov) is the weakest family member.
        assert hits["FPMC"] <= min(hits[n] for n in ("SRGNN", "GC-SAN", "GCE-GNN"))
        # COSMO-GNN lifts GCE-GNN on Hits@10 (the paper's headline claim).
        assert hits["COSMO-GNN"] > hits["GCE-GNN"]
        # COSMO-GNN is the best model overall on Hits@10.
        assert hits["COSMO-GNN"] == max(hits.values())
