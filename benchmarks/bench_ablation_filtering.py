"""Filtering ablation (§3.3.1 design choices).

Measures the oracle precision (fraction of surviving candidates that are
typical or at least plausible) with the refinement cascade fully on,
fully off, and with each stage disabled individually — quantifying what
each coarse-grained filter contributes.
"""

import pytest
from conftest import publish

from repro.core.filtering import FilterConfig, KnowledgeFilter
from repro.embeddings import TextEncoder
from repro.reporting import Table, format_percent

_GOOD = {"typical", "plausible"}


def _precision(candidates):
    if not candidates:
        return 0.0
    return sum(c.truth.quality in _GOOD for c in candidates) / len(candidates)


@pytest.fixture(scope="module")
def variants(bench_pipeline):
    encoder = TextEncoder(seed=7)
    candidates = bench_pipeline.candidates
    configs = {
        "all stages on": FilterConfig(),
        "no filtering": FilterConfig(enable_completeness=False, enable_context_overlap=False,
                                     enable_generic=False, enable_similarity=False),
        "w/o completeness": FilterConfig(enable_completeness=False),
        "w/o context-overlap": FilterConfig(enable_context_overlap=False),
        "w/o generic-tail": FilterConfig(enable_generic=False),
        "w/o similarity": FilterConfig(enable_similarity=False),
    }
    rows = {}
    for name, config in configs.items():
        survivors, report = KnowledgeFilter(encoder, config=config).apply(candidates)
        rows[name] = (len(survivors), _precision(survivors), report)
    return rows


def test_filtering_ablation(variants, benchmark, bench_pipeline):
    table = Table("Refinement ablation — oracle precision of survivors",
                  ["Configuration", "Survivors", "Typical+plausible precision"])
    for name, (kept, precision, _) in variants.items():
        table.add_row(name, kept, format_percent(precision))
    publish("ablation_filtering", table.render())

    encoder = TextEncoder(seed=7)
    knowledge_filter = KnowledgeFilter(encoder)
    benchmark(knowledge_filter.apply, bench_pipeline.candidates[:500])

    full_kept, full_precision, _ = variants["all stages on"]
    raw_kept, raw_precision, _ = variants["no filtering"]
    # The cascade trades volume for precision, as the paper intends.
    assert full_precision > raw_precision + 0.05
    assert full_kept < raw_kept
    # Each stage contributes: removing completeness hurts precision most
    # (it also drops unparseable text) and every stage keeps more than
    # the full cascade.
    for name in ("w/o completeness", "w/o context-overlap",
                 "w/o generic-tail", "w/o similarity"):
        kept, precision, _ = variants[name]
        assert kept >= full_kept
