"""Table 4: plausibility and typicality ratios of annotated data.

The paper reports ~35% typicality for search-buy and a "notably low"
co-buy ratio (the teacher explains one product, not the pair).  The
bench regenerates the ratios from the simulated annotation pass.
"""

from conftest import publish

from repro.annotation import AnnotatorPool
from repro.reporting import Table, format_percent


def test_table4_quality_ratios(bench_pipeline, benchmark):
    ratios = bench_pipeline.quality_ratios

    # Benchmark kernel: the two-annotator + adjudicator labeling itself.
    items = [
        (c.candidate_id, c.truth.quality)
        for c in bench_pipeline.annotated_candidates[:300]
    ]

    def annotate():
        return AnnotatorPool(seed=1).annotate_batch(items)

    benchmark(annotate)

    table = Table(
        "Table 4 — annotated quality ratios (paper: SB typicality 35.0%)",
        ["Behavior", "Plausibility", "Typicality"],
    )
    for behavior in ("co-buy", "search-buy"):
        table.add_row(
            behavior,
            format_percent(ratios[behavior]["plausibility"]),
            format_percent(ratios[behavior]["typicality"]),
        )
    audit = bench_pipeline.audit
    extra = (f"Annotation audit: {audit.sampled} sampled, "
             f"accuracy {format_percent(audit.accuracy)} (paper: >90%)")
    publish("table4_quality_ratios", table.render() + "\n" + extra)

    # Paper shape: search-buy ≈ 35% typical; co-buy notably lower.
    assert 0.15 <= ratios["search-buy"]["typicality"] <= 0.50
    assert ratios["co-buy"]["typicality"] < ratios["search-buy"]["typicality"]
    assert ratios["co-buy"]["plausibility"] < ratios["search-buy"]["plausibility"]
    assert audit.accuracy > 0.9
