"""Tracing overhead: what the per-request span tree costs.

Drives identical Zipf traffic through two clusters — one with
``trace_requests=False`` (the bare path) and one with full request
tracing plus a tail sampler attached — and checks the tracing contract
from DESIGN.md §9: tracing *observes* the request path without steering
it, so both arms must produce identical accounting (request totals,
availability, per-outcome counts), and the traced drive must stay
within 1.2x of the bare one.

The drive uses *direct* (synchronous-generation) requests — the
representative expensive path: prompt build, resilient generator call,
structuring, write-through.  The cache-hit path is a hash lookup a few
microseconds long, so a multiplicative bound there would measure
Python object-allocation floors, not tracing design.

The wall-clock bound is *paired*: each repetition drives the bare and
traced clusters back-to-back and the assert takes the best repetition's
``traced - 1.2 * bare`` excess.  Comparing within a pair is what makes
the bound stable on a shared machine — load swings inflate both arms of
a pair together and cancel in the excess, whereas independent minima
can come from different noise windows and compare a quiet bare run
against a busy traced one.  The small absolute floor absorbs per-drive
constants (sampler window close, final buffer drain) and timer noise on
a sub-second drive.  The structural equalities are exact and
deterministic.
"""

import gc

import numpy as np
from conftest import publish

from repro.obs import TailSampler, TraceAnalyzer, WallProfiler
from repro.reporting import Table
from repro.serving import ClusterConfig, CosmoCluster, ServeRequest
from repro.serving.chaos import ScriptedGenerator
from repro.utils.rng import spawn_rng

N_REQUESTS = 3000
N_QUERIES = 200
INTER_ARRIVAL_S = 0.002
BEST_OF = 5
MAX_OVERHEAD_RATIO = 1.2


def _traffic(seed: int) -> list[str]:
    rng = spawn_rng(seed, "trace-overhead-traffic")
    weights = 1.0 / np.arange(1, N_QUERIES + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(N_QUERIES, size=N_REQUESTS, p=weights)
    return [f"query {int(i):03d}" for i in picks]


def _build(traced: bool):
    sampler = TailSampler(slowest_k=3, window_s=1.0, head_every=100) if traced else None
    cluster = CosmoCluster(
        lambda i: ScriptedGenerator(),
        config=ClusterConfig(n_replicas=3, max_batch_size=16,
                             max_batch_delay_s=0.25, seed=7,
                             name="traced" if traced else "bare",
                             trace_requests=traced),
        sampler=sampler,
    )
    # Warm the yearly layer so both arms serve fresh; cold-start fallback
    # behaviour is the chaos scenario's job, not the overhead bench's.
    cluster.preload_yearly({
        q: ScriptedGenerator.knowledge_for(q)
        for q in (f"query {i:03d}" for i in range(N_QUERIES))
    })
    return cluster, sampler


def _drive(cluster, sampler, traffic, profiler, section):
    # GC paused during the timed section (identically for both arms):
    # collector scheduling is allocation-count noise, not request-path
    # cost, and it lands unevenly across repetitions.
    gc.collect()
    gc.disable()
    try:
        with profiler.section(section):
            for query in traffic:
                cluster.handle(ServeRequest(query=query, direct=True))
                cluster.clock.advance(INTER_ARRIVAL_S)
            cluster.flush()
    finally:
        gc.enable()
    if sampler is not None:
        sampler.flush()


def test_trace_overhead(benchmark):
    traffic = _traffic(seed=7)
    profiler = WallProfiler()

    # Best-of-N *pairs* over fresh clusters: each repetition times bare
    # then traced back-to-back, and the bound takes the cleanest pair.
    arms: dict[str, list] = {"bare": [], "traced": []}
    for rep in range(BEST_OF):
        for traced in (False, True):
            arm = "traced" if traced else "bare"
            cluster, sampler = _build(traced)
            _drive(cluster, sampler, traffic, profiler, f"{arm}-{rep}")
            arms[arm].append((profiler.total_s(f"{arm}-{rep}"), cluster, sampler))
    pairs = [(arms["bare"][rep][0], arms["traced"][rep][0])
             for rep in range(BEST_OF)]
    bare_s, traced_s = min(pairs,
                           key=lambda p: p[1] - MAX_OVERHEAD_RATIO * p[0])
    ratio = traced_s / bare_s if bare_s > 0 else float("inf")

    bare_cluster = arms["bare"][-1][1]
    traced_cluster, sampler = arms["traced"][-1][1], arms["traced"][-1][2]

    # Tracing observes, never steers: identical accounting, exactly.
    assert traced_cluster.metrics_totals() == bare_cluster.metrics_totals()
    assert traced_cluster.availability == bare_cluster.availability

    # The sampler retained something and every retained trace reassembles
    # into one connected tree whose stage breakdown sums to its duration.
    tracers = [(traced_cluster.config.name, traced_cluster.tracer)]
    tracers += [(rid, s.tracer) for rid, s in traced_cluster.services.items()]
    analyzer = TraceAnalyzer(tracers)
    retained = analyzer.trace_ids()
    assert retained, "tail sampler retained no traces"
    assert sampler.decisions["dropped"] > 0, "tail sampler dropped nothing"
    for trace_id in retained:
        assert analyzer.is_connected(trace_id)
        total = sum(analyzer.stage_breakdown(trace_id).values())
        assert abs(total - analyzer.duration_s(trace_id)) < 1e-9

    table = Table("Tracing overhead — same drive, bare vs traced",
                  ["Arm", f"Wall, best pair of {BEST_OF} (s)", "Traces kept",
                   "Spans kept"])
    table.add_row("bare", f"{bare_s:.3f}", 0, 0)
    kept_spans = sum(len(analyzer.spans_for(t)) for t in retained)
    table.add_row("traced", f"{traced_s:.3f}", len(retained), kept_spans)
    publish("trace_overhead", table.render()
            + f"\noverhead ratio (nondeterministic): {ratio:.2f}x"
            + f"\nsampler decisions: {sampler.decisions}")

    # The headline bound: tracing costs at most 20% on the request path
    # (plus a small absolute floor so sub-millisecond drives can't flake).
    assert traced_s <= bare_s * MAX_OVERHEAD_RATIO + 0.05, (
        f"best pair bare={bare_s:.3f}s traced={traced_s:.3f}s "
        f"({ratio:.2f}x > {MAX_OVERHEAD_RATIO}x + 50ms)")

    # Benchmark kernel: the steady-state traced request path.
    def kernel():
        for query in traffic[:200]:
            traced_cluster.handle(ServeRequest(query=query, direct=True))
            traced_cluster.clock.advance(INTER_ARRIVAL_S)

    benchmark(kernel)
