"""Cluster scaling: throughput and tail latency vs replica count.

Offers the *same* Zipf traffic at the same arrival rate to clusters of
1, 2 and 4 replicas and measures what sharding buys: a single replica is
overloaded (arrivals outpace its simulated service rate, so queueing
delay piles up and the tail explodes), while four shards absorb the load
— throughput rises monotonically and the p99 falls back toward pure
service latency.  This is the quantitative backing for the ROADMAP's
"shard the serving layer" north star.

Traffic arrives in *windows* through the batch-first ingress
(:meth:`CosmoCluster.handle_batch`) and every replica runs with a
:class:`BatchCostModel`, so a window of requests landing on one shard is
charged ``overhead + n·item`` instead of ``n`` sequential cache probes —
the amortization the columnar/batch redesign exists to buy.  The seed
per-item driver topped out near 500 req/s per replica (2 ms per cache
hit); the batch path clears 3 000+ req/s on a single replica and scales
from there.

Everything runs on simulated clocks with a scripted generator, so the
sweep is deterministic end to end and its artifacts are byte-stable.
The sweep's numbers are also written to
``benchmarks/results/cluster_scaling.json`` for the perf-smoke CI job,
which diffs them against ``benchmarks/baselines/cluster_scaling.json``
and fails on a >10 % throughput regression.
"""

import json
import pathlib

import numpy as np
from conftest import publish

from repro.reporting import Table, format_percent
from repro.serving import BatchCostModel, ClusterConfig, CosmoCluster
from repro.serving.chaos import ScriptedGenerator
from repro.utils.rng import spawn_rng

#: Requests per arrival window and the gap between windows: 16 requests
#: every 2 ms is 8 000 req/s offered — far above one replica's batch
#: service rate (a full window costs 2 ms overhead + 16·0.2 ms ≈ 5.2 ms),
#: so the single-replica arm saturates and the sweep measures real
#: scaling, not idle shards.
WINDOW = 16
WINDOW_GAP_S = 0.002
N_REQUESTS = 4000
N_QUERIES = 400

#: The acceptance floor for the 4-replica arm (req/s).  The seed's
#: per-item driver measured ~1 089 req/s here; the batch-first path must
#: hold at least 3× that.
MIN_THROUGHPUT_X4 = 3300.0

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "cluster_scaling.json"


def _traffic(seed: int) -> list[str]:
    rng = spawn_rng(seed, "cluster-scaling-traffic")
    weights = 1.0 / np.arange(1, N_QUERIES + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(N_QUERIES, size=N_REQUESTS, p=weights)
    return [f"query {int(i):03d}" for i in picks]


def _drive(n_replicas: int, traffic: list[str], registry) -> dict:
    config = ClusterConfig(
        n_replicas=n_replicas,
        max_batch_size=16,
        max_batch_delay_s=0.25,
        seed=7,
        name=f"x{n_replicas}",
    )
    cluster = CosmoCluster(lambda i: ScriptedGenerator(), config=config,
                           registry=registry,
                           batch_costs=BatchCostModel())
    for start in range(0, len(traffic), WINDOW):
        cluster.handle_batch(traffic[start:start + WINDOW])
        cluster.clock.advance(WINDOW_GAP_S)
    cluster.flush()
    horizon = cluster.busy_horizon_s
    return {
        "replicas": n_replicas,
        "throughput": cluster.requests / horizon,
        "p50_ms": cluster.percentile(50) * 1000.0,
        "p99_ms": cluster.percentile(99) * 1000.0,
        "availability": cluster.availability,
        "horizon_s": horizon,
        "totals": cluster.metrics_totals(),
    }


def test_cluster_scaling(benchmark, obs_registry):
    traffic = _traffic(seed=7)
    arms = [_drive(n, traffic, obs_registry) for n in (1, 2, 4)]

    table = Table("Cluster scaling — same offered load, 1/2/4 replicas",
                  ["Replicas", "Throughput (req/s)", "p50 (ms)", "p99 (ms)",
                   "Served", "Horizon (s)"])
    for arm in arms:
        table.add_row(
            arm["replicas"],
            f"{arm['throughput']:,.0f}",
            f"{arm['p50_ms']:.2f}",
            f"{arm['p99_ms']:.2f}",
            format_percent(arm["availability"]),
            f"{arm['horizon_s']:.2f}",
        )
    publish("cluster_scaling", table.render())

    # Machine-readable sweep results for the perf-smoke regression gate.
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(
        {
            "window": WINDOW,
            "window_gap_s": WINDOW_GAP_S,
            "n_requests": N_REQUESTS,
            "arms": [
                {key: arm[key] for key in
                 ("replicas", "throughput", "p50_ms", "p99_ms", "horizon_s")}
                for arm in arms
            ],
        },
        sort_keys=True, indent=2) + "\n")

    # Benchmark kernel: steady-state sharded window handling.
    bench_cluster = CosmoCluster(
        lambda i: ScriptedGenerator(),
        config=ClusterConfig(n_replicas=4, seed=7, name="bench"),
        batch_costs=BatchCostModel(),
    )

    def kernel():
        for start in range(0, 200, WINDOW):
            bench_cluster.handle_batch(traffic[start:start + WINDOW])
            bench_cluster.clock.advance(WINDOW_GAP_S)

    benchmark(kernel)

    # Accounting invariant holds for every arm: the batch ingress counts
    # every request exactly once, same as per-item handling would.
    for arm in arms:
        totals = arm["totals"]
        assert (totals["served_fresh"] + totals["degraded_serves"]
                + totals["fallbacks"] == totals["requests"] == N_REQUESTS)
        assert totals["handled"] == N_REQUESTS

    # Shape: throughput scales monotonically with replica count, and the
    # 4-replica tail beats the overloaded single replica at the same
    # offered load.
    assert arms[0]["throughput"] < arms[1]["throughput"] < arms[2]["throughput"]
    assert arms[2]["p99_ms"] <= arms[0]["p99_ms"]

    # The redesign's headline: the 4-replica batch path clears the 3×
    # floor over the seed per-item driver (~1 089 req/s).
    assert arms[2]["throughput"] >= MIN_THROUGHPUT_X4
