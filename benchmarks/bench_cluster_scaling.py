"""Cluster scaling: throughput and tail latency vs replica count.

Offers the *same* Zipf traffic at the same arrival rate to clusters of
1, 2 and 4 replicas and measures what sharding buys: a single replica is
overloaded (arrivals outpace its simulated service rate, so queueing
delay piles up and the tail explodes), while four shards absorb the load
— throughput rises monotonically and the p99 falls back toward pure
service latency.  This is the quantitative backing for the ROADMAP's
"shard the serving layer" north star.

Everything runs on simulated clocks with a scripted generator, so the
sweep is deterministic end to end and its artifacts are byte-stable.
"""

import numpy as np
from conftest import publish

from repro.reporting import Table, format_percent
from repro.serving import ClusterConfig, CosmoCluster
from repro.serving.chaos import ScriptedGenerator
from repro.utils.rng import spawn_rng

#: Arrival gap (0.8 ms ≈ 1250 req/s offered) sits well above one
#: replica's ~500 req/s cache-hit service rate, so the single-replica
#: arm saturates and the sweep measures real scaling, not idle shards.
INTER_ARRIVAL_S = 0.0008
N_REQUESTS = 4000
N_QUERIES = 400


def _traffic(seed: int) -> list[str]:
    rng = spawn_rng(seed, "cluster-scaling-traffic")
    weights = 1.0 / np.arange(1, N_QUERIES + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(N_QUERIES, size=N_REQUESTS, p=weights)
    return [f"query {int(i):03d}" for i in picks]


def _drive(n_replicas: int, traffic: list[str], registry) -> dict:
    config = ClusterConfig(
        n_replicas=n_replicas,
        max_batch_size=16,
        max_batch_delay_s=0.25,
        seed=7,
        name=f"x{n_replicas}",
    )
    cluster = CosmoCluster(lambda i: ScriptedGenerator(), config=config,
                           registry=registry)
    for query in traffic:
        cluster.handle(query)
        cluster.clock.advance(INTER_ARRIVAL_S)
    cluster.flush()
    horizon = cluster.busy_horizon_s
    return {
        "replicas": n_replicas,
        "throughput": cluster.requests / horizon,
        "p50_ms": cluster.percentile(50) * 1000.0,
        "p99_ms": cluster.percentile(99) * 1000.0,
        "availability": cluster.availability,
        "horizon_s": horizon,
        "totals": cluster.metrics_totals(),
    }


def test_cluster_scaling(benchmark, obs_registry):
    traffic = _traffic(seed=7)
    arms = [_drive(n, traffic, obs_registry) for n in (1, 2, 4)]

    table = Table("Cluster scaling — same offered load, 1/2/4 replicas",
                  ["Replicas", "Throughput (req/s)", "p50 (ms)", "p99 (ms)",
                   "Served", "Horizon (s)"])
    for arm in arms:
        table.add_row(
            arm["replicas"],
            f"{arm['throughput']:,.0f}",
            f"{arm['p50_ms']:.2f}",
            f"{arm['p99_ms']:.2f}",
            format_percent(arm["availability"]),
            f"{arm['horizon_s']:.2f}",
        )
    publish("cluster_scaling", table.render())

    # Benchmark kernel: steady-state sharded request handling.
    bench_cluster = CosmoCluster(
        lambda i: ScriptedGenerator(),
        config=ClusterConfig(n_replicas=4, seed=7, name="bench"),
    )

    def kernel():
        for query in traffic[:200]:
            bench_cluster.handle(query)
            bench_cluster.clock.advance(INTER_ARRIVAL_S)

    benchmark(kernel)

    # Accounting invariant holds for every arm.
    for arm in arms:
        totals = arm["totals"]
        assert (totals["served_fresh"] + totals["degraded_serves"]
                + totals["fallbacks"] == totals["requests"] == N_REQUESTS)

    # Shape: throughput scales monotonically with replica count, and the
    # 4-replica tail beats the overloaded single replica at the same
    # offered load.
    assert arms[0]["throughput"] < arms[1]["throughput"] < arms[2]["throughput"]
    assert arms[2]["p99_ms"] <= arms[0]["p99_ms"]
