"""Knowledge-health overhead: what gating a snapshot costs.

The quality gate runs on the rollout path, so it must be cheap relative
to what it guards.  This bench builds a parent and a child snapshot the
way a refresh round does — replay the triples into a columnar
:class:`KnowledgeGraph`, freeze via ``build_snapshot`` (content
checksum + columnar digest) — and then times the *entire* gate pass:
two :func:`compute_kg_health` reports off the prebuilt columns, both
edge-identity sets, and :func:`evaluate_drift` under the default rules.

The contract from DESIGN.md §14: health is a handful of
``np.bincount``/``np.histogram`` passes over columns the snapshot
already has, so the full gate check must stay under
``MAX_HEALTH_FRACTION`` of one snapshot *build* (plus a small absolute
floor for sub-second runs).  The bound is paired best-of-N like
``bench_trace_overhead``: each repetition times build then gate
back-to-back with GC paused, and the assert takes the cleanest pair,
so shared-machine load swings cancel instead of flaking the bound.

Structural checks are exact: the two arms must agree on triple counts,
the health document must validate against ``repro.obs.kg_health/v1``,
and the healthy child must promote.
"""

import gc

from conftest import publish

from repro.core.kg import KnowledgeGraph
from repro.core.relations import Relation
from repro.core.triples import KnowledgeTriple
from repro.obs import (WallProfiler, compute_kg_health, evaluate_drift,
                       kg_health_report, validate_kg_health)
from repro.refresh import build_snapshot
from repro.refresh.quality import edge_keys
from repro.reporting import Table

N_QUERIES = 4000
EDGES_PER_QUERY = 5
BEST_OF = 5
MAX_HEALTH_FRACTION = 0.5
ABS_FLOOR_S = 0.05

_RELATIONS = (Relation.USED_FOR_FUNC, Relation.CAPABLE_OF, Relation.USED_TO,
              Relation.USED_FOR_AUD, Relation.USED_WITH, Relation.USED_BY)
_DOMAINS = ("Apparel", "Electronics", "Grocery", "Home")


def _triples(count: int, offset: int = 0) -> list[KnowledgeTriple]:
    # Deterministic arithmetic (no RNG): identical inputs every run, so
    # snapshot versions — and therefore the work timed — are stable.
    return [
        KnowledgeTriple(
            head=f"query {(k // EDGES_PER_QUERY) % N_QUERIES:04d}",
            relation=_RELATIONS[k % len(_RELATIONS)],
            tail=f"intent {k % 511:03d}",
            domain=_DOMAINS[k % len(_DOMAINS)],
            behavior="search-buy" if k % 3 else "co-buy",
            plausibility=0.55 + 0.4 * ((k * 37) % 100) / 100.0,
            typicality=0.45 + 0.5 * ((k * 53) % 100) / 100.0,
            support=1 + k % 3,
        )
        for k in range(offset, offset + count)
    ]


def _build_arm(triples, entries, parent=None):
    """What a refresh round pays to freeze a snapshot."""
    graph = KnowledgeGraph()
    graph.extend(triples)
    snapshot = build_snapshot(entries, graph.triples(), parent=parent,
                              graph=graph)
    return snapshot, graph


def _gate_arm(parent_snap, parent_graph, child_snap, child_graph):
    """The full quality-gate pass: two health reports + drift."""
    parent_health = compute_kg_health(parent_graph.columns(),
                                      version=parent_snap.version,
                                      entries=len(parent_snap))
    child_health = compute_kg_health(child_graph.columns(),
                                     version=child_snap.version,
                                     parent=parent_snap.version,
                                     entries=len(child_snap))
    parent_edges = edge_keys(parent_snap)
    child_edges = edge_keys(child_snap)
    drift = evaluate_drift(
        parent_health, child_health,
        added_edges=len(child_edges - parent_edges),
        removed_edges=len(parent_edges - child_edges),
    )
    return parent_health, child_health, drift


def test_kg_health_overhead(benchmark):
    base = _triples(N_QUERIES * EDGES_PER_QUERY)
    grown = base + _triples(N_QUERIES // 2,
                            offset=N_QUERIES * EDGES_PER_QUERY)
    entries = {f"query {i:04d}": f"it is used for query {i:04d}."
               for i in range(N_QUERIES)}

    profiler = WallProfiler()
    pairs = []
    last = None
    for rep in range(BEST_OF):
        # GC paused around each timed section (identically for both
        # arms): collection scheduling is allocation noise, not cost.
        gc.collect()
        gc.disable()
        try:
            with profiler.section(f"build-{rep}"):
                parent_snap, parent_graph = _build_arm(base, entries)
                child_snap, child_graph = _build_arm(
                    grown, entries, parent=parent_snap)
            with profiler.section(f"health-{rep}"):
                last = _gate_arm(parent_snap, parent_graph,
                                 child_snap, child_graph)
        finally:
            gc.enable()
        pairs.append((profiler.total_s(f"build-{rep}") / 2.0,
                      profiler.total_s(f"health-{rep}")))
    build_s, health_s = min(
        pairs, key=lambda p: p[1] - MAX_HEALTH_FRACTION * p[0])
    fraction = health_s / build_s if build_s > 0 else float("inf")

    parent_health, child_health, drift = last

    # Exact structural checks: health saw every edge, the export
    # validates, and organic growth promotes under the default rules.
    assert parent_health.triples == len(parent_graph)
    assert child_health.triples == len(child_graph)
    doc = kg_health_report([parent_health, child_health], drift=[drift])
    validate_kg_health(doc)
    assert drift.ok, f"healthy growth breached: {drift.breaches}"

    table = Table("KG health overhead — snapshot build vs gate pass",
                  ["Arm", f"Wall, best pair of {BEST_OF} (s)", "Triples"])
    table.add_row("snapshot build (one)", f"{build_s:.3f}",
                  child_health.triples)
    table.add_row("gate pass (health x2 + drift)", f"{health_s:.3f}",
                  parent_health.triples + child_health.triples)
    publish("kg_health_overhead", table.render()
            + f"\ngate fraction of one build (nondeterministic): "
              f"{fraction:.3f}")

    # The headline bound: gating a snapshot costs at most half of
    # building it (plus a floor so sub-100ms runs can't flake).
    assert health_s <= build_s * MAX_HEALTH_FRACTION + ABS_FLOOR_S, (
        f"best pair build={build_s:.3f}s health={health_s:.3f}s "
        f"({fraction:.2f}x > {MAX_HEALTH_FRACTION}x + {ABS_FLOOR_S}s)")

    # Benchmark kernel: one steady-state vectorized health pass.
    benchmark(lambda: compute_kg_health(child_graph.columns(),
                                        version=child_snap.version))
