"""Shared benchmark fixtures.

One bench-scale pipeline run (with a finetuned COSMO-LM) backs most of
the table/figure benches; it is computed once per session.  Every bench
prints its paper-shaped table and also writes it under
``benchmarks/results/`` so the regenerated artifacts survive pytest's
output capturing.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.obs import MetricsRegistry, snapshot, validate_snapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_PIPELINE_CONFIG = PipelineConfig(
    seed=7,
    world=WorldConfig(
        seed=7,
        products_per_domain=60,
        broad_queries_per_domain=30,
        specific_queries_per_domain=30,
    ),
    cobuy_pairs_per_domain=100,
    searchbuy_records_per_domain=150,
    annotation_budget=3000,
    lm=CosmoLMConfig(epochs=18, hidden_dim=96, lr=3e-3),
)


@pytest.fixture(scope="session")
def bench_pipeline():
    """The bench-scale pipeline result (trains COSMO-LM once)."""
    return CosmoPipeline(BENCH_PIPELINE_CONFIG).run()


@pytest.fixture(scope="session")
def bench_world(bench_pipeline):
    return bench_pipeline.world


@pytest.fixture
def obs_registry(request):
    """A per-bench metrics registry, snapshotted to results/ on teardown.

    Benches that wire their services/pipelines onto this registry get a
    ``<test name>.metrics.json`` artifact next to their result table, so
    cache hit rates and latency percentiles are inspectable after CI.
    """
    registry = MetricsRegistry()
    yield registry
    if not len(registry):
        return
    snap = snapshot(registry)
    validate_snapshot(snap)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{request.node.name}.metrics.json"
    path.write_text(json.dumps(snap, sort_keys=True,
                               separators=(",", ":")) + "\n")


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
