"""Shared benchmark fixtures.

One bench-scale pipeline run (with a finetuned COSMO-LM) backs most of
the table/figure benches; it is computed once per session.  Every bench
prints its paper-shaped table and also writes it under
``benchmarks/results/`` so the regenerated artifacts survive pytest's
output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_PIPELINE_CONFIG = PipelineConfig(
    seed=7,
    world=WorldConfig(
        seed=7,
        products_per_domain=60,
        broad_queries_per_domain=30,
        specific_queries_per_domain=30,
    ),
    cobuy_pairs_per_domain=100,
    searchbuy_records_per_domain=150,
    annotation_budget=3000,
    lm=CosmoLMConfig(epochs=18, hidden_dim=96, lr=3e-3),
)


@pytest.fixture(scope="session")
def bench_pipeline():
    """The bench-scale pipeline result (trains COSMO-LM once)."""
    return CosmoPipeline(BENCH_PIPELINE_CONFIG).run()


@pytest.fixture(scope="session")
def bench_world(bench_pipeline):
    return bench_pipeline.world


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
