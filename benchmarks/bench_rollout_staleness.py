"""Rollout staleness vs availability: blue/green against a naive restart.

Both arms deploy the *same* healthy green snapshot under the same Zipf
traffic.  The blue/green arm rolls it one replica at a time through a
:class:`~repro.refresh.rollout.RolloutController` (drain → swap+warm →
restore), so every request during the deploy window is answered from a
warm cache — some answers are simply the parent snapshot's content until
that replica's turn comes.  The restart arm swaps every replica at once
with a cold cache (what restarting the fleet onto a new knowledge build
does): zero staleness, but every request until the batch path refills
the cache falls through to the fallback.

The trade this pins: blue/green pays *bounded staleness* (old knowledge,
served as fresh, for at most the rollout's duration) where the restart
pays *availability* (no knowledge at all).  The deploy-window
availability of blue/green must strictly dominate the restart's, and
neither arm may ever serve a mixed-version answer — an answer whose text
belongs to a snapshot other than the serving replica's authoritative
version.
"""

import numpy as np
from conftest import publish

from repro.obs import EventLog, SloEvaluator, TimeSeriesCollector
from repro.refresh import (
    RolloutController,
    SnapshotGenerator,
    SnapshotQualityGate,
    SnapshotStore,
    build_snapshot,
    mixed_version_violation,
    rollout_slo_specs,
)
from repro.reporting import Table, format_percent
from repro.serving import ClusterConfig, CosmoCluster
from repro.utils.rng import spawn_rng

INTER_ARRIVAL_S = 0.005
SCRAPE_INTERVAL_S = 0.5
N_QUERIES = 150
N_REQUESTS = 3000
#: Request index at which the deploy begins, and the window over which
#: deploy-time availability is scored (6 s — covers the 9-step rollout
#: and the restart arm's cache-refill transient).
DEPLOY_AFTER = 600
WINDOW = 1200


def _scripted_ok(text: str) -> bool:
    return bool(text.strip()) and text.rstrip().endswith(".")


def _traffic(seed: int) -> list[int]:
    rng = spawn_rng(seed, "rollout-staleness-traffic")
    weights = 1.0 / np.arange(1, N_QUERIES + 1) ** 1.3
    weights /= weights.sum()
    return [int(i) for i in rng.choice(N_QUERIES, size=N_REQUESTS, p=weights)]


def _drive(mode: str, traffic: list[int], registry) -> dict:
    queries = [f"query {i:03d}" for i in range(N_QUERIES)]
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in queries},
                          note="blue baseline")
    green = build_snapshot({q: f"it is used for {q} (green)." for q in queries},
                           parent=blue, note="green refresh")
    store = SnapshotStore()
    store.add(blue)

    config = ClusterConfig(n_replicas=3, max_batch_size=16,
                           max_batch_delay_s=0.25, seed=7, name=mode)
    event_log = EventLog(registry=registry)
    cluster = CosmoCluster(lambda i: SnapshotGenerator(blue), config=config,
                           registry=registry, event_log=event_log,
                           response_validator=_scripted_ok)
    cluster.install_snapshot(blue)

    evaluator = SloEvaluator(
        registry, rollout_slo_specs(SCRAPE_INTERVAL_S), event_log=event_log)
    collector = TimeSeriesCollector(registry, interval_s=SCRAPE_INTERVAL_S)
    controller = RolloutController(cluster, store, green, evaluator,
                                   quality_gate=SnapshotQualityGate(store))

    deploy_ts = None
    last_blue_ts = None
    blue_after_deploy = 0
    window_served = 0
    window_total = 0
    violations = 0
    for index, pick in enumerate(traffic):
        if index == DEPLOY_AFTER:
            deploy_ts = cluster.clock.now()
            if mode == "restart":
                # Stop-the-world deploy: every replica swaps at once and
                # comes back cold — same authoritative version, no warm
                # serving table until batches refill it.
                for replica_id in cluster.router.replicas:
                    cluster.swap_snapshot(replica_id, green)
                    cluster.services[replica_id].cache.install_snapshot(
                        green.version, {})
        result = cluster.handle(queries[pick])
        if mixed_version_violation(store, cluster, result):
            violations += 1
        if deploy_ts is not None and result.text.endswith("(blue)."):
            blue_after_deploy += 1
            last_blue_ts = cluster.clock.now()
        if DEPLOY_AFTER <= index < DEPLOY_AFTER + WINDOW:
            window_total += 1
            window_served += result.served
        cluster.clock.advance(INTER_ARRIVAL_S)
        for ts in collector.maybe_scrape(cluster.clock.now()):
            evaluator.evaluate(ts)
            if mode == "bluegreen" and index >= DEPLOY_AFTER and not controller.done:
                controller.tick(ts)
    cluster.flush()

    totals = cluster.metrics_totals()
    return {
        "mode": mode,
        "window_availability": window_served / window_total,
        "fallbacks": totals["fallbacks"],
        "blue_after_deploy": blue_after_deploy,
        "staleness_s": (0.0 if last_blue_ts is None
                        else last_blue_ts - deploy_ts),
        "p99_ms": cluster.percentile(99) * 1000.0,
        "violations": violations,
        "fired": evaluator.any_fired,
        "rollout_state": controller.report().state,
        "versions": set(cluster.snapshot_versions().values()),
        "green": green.version,
        "totals": totals,
    }


def test_rollout_staleness(benchmark, obs_registry):
    traffic = _traffic(seed=7)
    arms = [_drive(mode, traffic, obs_registry)
            for mode in ("bluegreen", "restart")]

    table = Table(
        "Knowledge deploy — blue/green rollout vs naive restart",
        ["Arm", "Deploy-window served", "Fallbacks", "Stale (blue) serves",
         "Staleness (s)", "p99 (ms)", "Mixed-version"])
    for arm in arms:
        table.add_row(
            arm["mode"],
            format_percent(arm["window_availability"]),
            arm["fallbacks"],
            arm["blue_after_deploy"],
            f"{arm['staleness_s']:.2f}",
            f"{arm['p99_ms']:.2f}",
            arm["violations"],
        )
    publish("rollout_staleness", table.render())

    # Benchmark kernel: the per-replica atomic swap (warm + repoint).
    kernel_queries = [f"query {i:03d}" for i in range(N_QUERIES)]
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in kernel_queries})
    green = build_snapshot({q: f"it is used for {q} (green)." for q in kernel_queries},
                           parent=blue)
    kernel_cluster = CosmoCluster(
        lambda i: SnapshotGenerator(blue),
        config=ClusterConfig(n_replicas=2, seed=7, name="swapbench"),
    )
    snapshots = [blue, green]

    def kernel():
        for index in range(10):
            kernel_cluster.swap_snapshot("swapbench-r0", snapshots[index % 2])

    benchmark(kernel)

    bluegreen, restart = arms
    # Both arms end fully on green with intact accounting and no
    # cross-version leaks.
    for arm in arms:
        totals = arm["totals"]
        assert (totals["served_fresh"] + totals["degraded_serves"]
                + totals["fallbacks"] == totals["requests"] == N_REQUESTS)
        assert arm["versions"] == {arm["green"]}
        assert arm["violations"] == 0

    # The headline trade: blue/green serves every deploy-window request
    # (no alert ever fires) at the price of bounded staleness; the
    # restart serves nothing stale but drops availability on the floor.
    assert bluegreen["rollout_state"] == "complete"
    assert bluegreen["window_availability"] == 1.0
    assert not bluegreen["fired"]
    assert bluegreen["window_availability"] > restart["window_availability"]
    assert restart["fallbacks"] > 0
    assert restart["blue_after_deploy"] == 0
    assert bluegreen["blue_after_deploy"] > 0
    assert bluegreen["staleness_s"] <= 9 * SCRAPE_INTERVAL_S
