"""Figure 8: hierarchical organization of COSMO tail knowledge.

Coarse intents expand to fine-grained ones ("camping" → "winter
camping") and intent concepts link to product concepts ("winter boots").
The bench regenerates the hierarchy from the built KG and verifies that
structure exists.
"""

from conftest import publish

from repro.apps.navigation import build_navigation_hierarchy
from repro.reporting import Table


def test_fig8_intent_hierarchy(bench_pipeline, benchmark):
    hierarchy = benchmark(
        build_navigation_hierarchy, bench_pipeline.kg, bench_pipeline.world
    )
    stats = hierarchy.stats()

    lines = []
    shown = 0
    for domain in hierarchy.domains():
        for root in hierarchy.for_domain(domain):
            if root.children and shown < 6:
                child = root.children[0]
                linked = child.product_types[:3] or root.product_types[:3]
                lines.append(f"  {domain}: {root.label!r} -> {child.label!r} -> {linked}")
                shown += 1
    table = Table("Figure 8 — intent hierarchy statistics", ["Metric", "Value"])
    for key, value in stats.items():
        table.add_row(key, value)
    publish("fig8_hierarchy", table.render() + "\nSample coarse→fine chains:\n" + "\n".join(lines))

    # Shape: the hierarchy has refined intents under coarse ones, links
    # to product concepts, and spans multiple domains.
    assert stats["root_intents"] > 50
    assert stats["refined_intents"] > 10
    assert stats["linked_product_types"] > 100
    assert stats["max_depth"] >= 2
    assert shown > 0
