"""Sample-and-rerank ablation.

§3.4 notes the finetuned LM "generates typical knowledge and judges
knowledge quality as well"; combining both gives a quality-over-latency
generation mode: sample several candidates and keep the one the model's
own typicality head prefers.  The bench compares greedy vs reranked
generation on held-out behaviors.
"""

import pytest
from conftest import publish

from repro.core.cosmo_lm import CosmoLM
from repro.reporting import Table, format_percent


@pytest.fixture(scope="module")
def rerank_comparison(bench_pipeline):
    world = bench_pipeline.world
    lm = bench_pipeline.cosmo_lm
    annotated = {c.sample.sample_id for c in bench_pipeline.annotated_candidates}
    held = [s for s in bench_pipeline.samples
            if s.sample_id not in annotated and s.intent_id is not None][:150]
    prompts = [lm.prompt_for_sample(world, s) for s in held]

    before = lm.latency.total_simulated_s
    greedy = [g.text for g in lm.generate_batch(prompts).require()]
    greedy_latency = (lm.latency.total_simulated_s - before) / len(held)

    before = lm.latency.total_simulated_s
    reranked = [g.text for g in lm.generate_reranked(prompts, num_candidates=4)]
    rerank_latency = (lm.latency.total_simulated_s - before) / len(held)

    return (world, held,
            CosmoLM.judge_generations(world, held, greedy), greedy_latency,
            CosmoLM.judge_generations(world, held, reranked), rerank_latency)


def test_rerank_ablation(rerank_comparison, benchmark, bench_pipeline):
    world, held, greedy_q, greedy_lat, rerank_q, rerank_lat = rerank_comparison

    table = Table("Generation mode ablation — greedy vs sample-and-rerank",
                  ["Mode", "Typical", "Plausible", "Latency / gen"])
    table.add_row("greedy (serving default)",
                  format_percent(greedy_q.typical_rate),
                  format_percent(greedy_q.plausible_rate),
                  f"{greedy_lat * 1000:.2f} ms")
    table.add_row("sample-and-rerank (k=4)",
                  format_percent(rerank_q.typical_rate),
                  format_percent(rerank_q.plausible_rate),
                  f"{rerank_lat * 1000:.2f} ms")
    publish("ablation_rerank", table.render())

    lm = bench_pipeline.cosmo_lm
    prompts = [lm.prompt_for_sample(world, s) for s in held[:16]]
    benchmark(lm.generate_batch, prompts)

    # Reranking pays ~4x latency; at our self-judge accuracy it is
    # quality-neutral (the paper's LLaMA-scale judge is stronger) — the
    # bench verifies the latency cost is real and quality stays in the
    # same regime.
    assert rerank_q.plausible_rate >= greedy_q.plausible_rate - 0.08
    assert rerank_lat > greedy_lat
