"""Figure 4: the instruction-data scale-up.

COSMO scales instruction data to 18 product domains, 15 relation types
and 5 task types from ~30k annotations (paper) / the bench-scale budget
(here).  The bench regenerates the dataset and verifies the coverage.
"""

from conftest import publish

from repro.core import build_instruction_dataset
from repro.reporting import Table


def test_fig4_instruction_scaleup(bench_pipeline, benchmark):
    dataset = benchmark(
        build_instruction_dataset,
        bench_pipeline.world,
        bench_pipeline.annotated_candidates,
        bench_pipeline.annotations,
    )
    coverage = dataset.coverage()
    distribution = dataset.task_distribution()

    table = Table("Figure 4 — instruction-data scale-up",
                  ["Axis", "Paper", "Measured"])
    table.add_row("Product domains", 18, coverage["domains"])
    table.add_row("Relation types", 15, coverage["relations"])
    table.add_row("Task types", 5, coverage["tasks"])
    table.add_row("Annotations", "30k", len(bench_pipeline.annotated_candidates))
    table.add_row("Instruction examples", "(scaled)", coverage["examples"])
    lines = [table.render(), "", "Per-task distribution:"]
    for task, count in sorted(distribution.items()):
        lines.append(f"  {task}: {count}")
    publish("fig4_instruction_scaleup", "\n".join(lines))

    assert coverage["domains"] == 18
    assert coverage["relations"] >= 13
    assert coverage["tasks"] == 5
    assert all(count > 0 for count in distribution.values())
