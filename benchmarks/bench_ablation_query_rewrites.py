"""Query-rewrite reduction (§4.2.4 future work, quantified).

Customers with refined intents start from coarse queries; the baseline
experience makes them rewrite the query to reach refined-intent
products, while COSMO's intent suggestions replace rewrites with clicks.
"""

import pytest
from conftest import publish

from repro.apps.navigation import QueryRewriteStudy, build_navigation_hierarchy
from repro.reporting import Table, format_float, format_percent


@pytest.fixture(scope="module")
def rewrite_outcomes(bench_pipeline):
    hierarchy = build_navigation_hierarchy(bench_pipeline.kg, bench_pipeline.world)
    baseline = QueryRewriteStudy(bench_pipeline.world, hierarchy, seed=9).run(
        3000, use_cosmo=False
    )
    cosmo = QueryRewriteStudy(bench_pipeline.world, hierarchy, seed=9).run(
        3000, use_cosmo=True
    )
    return baseline, cosmo, hierarchy


def test_cosmo_reduces_query_rewrites(rewrite_outcomes, bench_pipeline, benchmark):
    baseline, cosmo, hierarchy = rewrite_outcomes

    table = Table("§4.2.4 — query rewrites with and without COSMO navigation",
                  ["Experience", "Avg rewrites / session", "Success rate"])
    table.add_row("baseline search", format_float(baseline.avg_rewrites, 3),
                  format_percent(baseline.success_rate))
    table.add_row("COSMO navigation", format_float(cosmo.avg_rewrites, 3),
                  format_percent(cosmo.success_rate))
    reduction = (1 - cosmo.avg_rewrites / baseline.avg_rewrites
                 if baseline.avg_rewrites else 0.0)
    publish("ablation_query_rewrites",
            table.render() + f"\nRewrite reduction: {format_percent(reduction)}")

    study = QueryRewriteStudy(bench_pipeline.world, hierarchy, seed=1)
    benchmark(study.run, 100, True)

    # The future-work hypothesis holds in this world: refined-intent
    # suggestions absorb a substantial share of query rewrites without
    # hurting task success.
    assert cosmo.avg_rewrites < baseline.avg_rewrites
    assert reduction > 0.1
    assert cosmo.success_rate >= baseline.success_rate - 0.02
