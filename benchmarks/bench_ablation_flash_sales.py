"""The §3.5.3 limitation, measured: daily refresh vs flash sales.

The paper acknowledges that a daily model/cache refresh cannot track
time-sensitive events such as flash sales.  This bench makes the
limitation quantitative: a flash sale changes the correct response for a
set of hot queries mid-day; the cached deployment keeps serving the
pre-sale responses until the next refresh cycle, and the staleness rate
during the sale window is measured against a (hypothetical) real-time
deployment.
"""

import pytest
from conftest import publish

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.reporting import Table, format_percent
from repro.serving import CosmoService, ServeRequest


class SaleAwareGenerator:
    """Generator whose correct answer changes when a flash sale starts."""

    def __init__(self):
        self.latency = LatencyModel()
        self.parameter_count = 1_000_000
        self.sale_active = False

    def generate_batch(self, prompts):
        suffix = "flash sale price" if self.sale_active else "regular price"
        outputs = []
        for prompt in prompts:
            latency = self.latency.charge(self.parameter_count, 6)
            outputs.append(Generation(text=f"it is used for {prompt} at {suffix}.",
                                      tokens=6, latency_s=latency))
        return GenerationBatch(generations=outputs)


@pytest.fixture(scope="module")
def flash_sale_run():
    generator = SaleAwareGenerator()
    service = CosmoService(generator, fallback_response="")
    queries = [f"deal query {i}" for i in range(40)]
    requests = [ServeRequest(query=query) for query in queries]

    # Morning: cold traffic, batch fills the cache with pre-sale responses.
    service.serve_batch(requests)
    service.run_batch()

    # Midday: the flash sale starts — the *correct* response changes.
    generator.sale_active = True
    stale = fresh = 0
    for _ in range(5):
        for result in service.serve_batch(requests):
            if "regular price" in result.text:
                stale += 1
            elif "flash sale" in result.text:
                fresh += 1
    sale_window_requests = stale + fresh

    # The daily refresh (next cycle) finally recomputes the features.
    service.clock.advance_days(1)
    service.serve_batch(requests)  # daily layer cleared → misses
    service.run_batch()
    post_refresh_stale = sum(
        "regular price" in result.text
        for result in service.serve_batch(requests)
    )
    return stale, sale_window_requests, post_refresh_stale, len(queries), service


def test_flash_sale_staleness(flash_sale_run, benchmark):
    stale, window_requests, post_refresh_stale, n_queries, service = flash_sale_run
    staleness = stale / window_requests if window_requests else 0.0

    table = Table("§3.5.3 limitation — flash sales vs daily refresh",
                  ["Phase", "Stale responses"])
    table.add_row("During the sale (before refresh)",
                  f"{format_percent(staleness)} of {window_requests} requests")
    table.add_row("After the daily refresh", f"{post_refresh_stale} of {n_queries}")
    table.add_row("Cache hit rate overall",
                  format_percent(service.cache.stats.hit_rate))
    publish("ablation_flash_sales", table.render())

    benchmark(lambda: service.serve(ServeRequest(query="deal query 0")))

    # The limitation is real: the entire sale window is served stale...
    assert staleness > 0.95
    # ...and the daily refresh is what repairs it.
    assert post_refresh_stale == 0
