"""Table 7: session-dataset statistics for clothing and electronics.

Paper shape: electronics sessions are longer (12.27 vs 8.79) and contain
more unique queries (2.47 vs 1.36) than clothing — the query-revision
dynamics §4.2.4 links to COSMO-GNN's larger electronics gain.
"""

import pytest
from conftest import publish

from repro.apps.recommendation import build_session_dataset
from repro.behavior import SessionConfig, World, WorldConfig, simulate_sessions
from repro.reporting import Table, format_float

# The session world is bigger than the shared bench world so the
# recommendation task has a realistic item space.
SESSION_WORLD = WorldConfig(seed=7, products_per_domain=150,
                            broad_queries_per_domain=30, specific_queries_per_domain=30)

SESSION_CONFIGS = {
    "clothing": SessionConfig(domain="Clothing, Shoes & Jewelry", n_sessions=1500,
                              mean_length=8.8, revise_prob=0.06),
    "electronics": SessionConfig(domain="Electronics", n_sessions=1500,
                                 mean_length=12.3, revise_prob=0.28),
}

PAPER_STATS = {
    "clothing": {"avg_session_len": 8.79, "avg_unique_queries": 1.36},
    "electronics": {"avg_session_len": 12.27, "avg_unique_queries": 2.47},
}


@pytest.fixture(scope="session")
def session_world():
    return World(SESSION_WORLD)


@pytest.fixture(scope="session")
def session_logs(session_world):
    return {
        name: simulate_sessions(session_world, config, seed=7)
        for name, config in SESSION_CONFIGS.items()
    }


def test_table7_session_statistics(session_world, session_logs, benchmark):
    benchmark(simulate_sessions, session_world,
              SessionConfig(domain="Electronics", n_sessions=100), 7)

    table = Table("Table 7 — session statistics (paper vs measured)",
                  ["Domain", "Sessions", "Avg Sess. L. (paper)",
                   "Avg Q. L.", "Avg Uniq. Q. (paper)"])
    for name, log in session_logs.items():
        stats = log.stats()
        paper = PAPER_STATS[name]
        table.add_row(
            name,
            stats["sessions"],
            f"{format_float(stats['avg_session_len'])} ({paper['avg_session_len']})",
            format_float(stats["avg_query_len"]),
            f"{format_float(stats['avg_unique_queries'])} ({paper['avg_unique_queries']})",
        )
    publish("table7_session_stats", table.render())

    clothing = session_logs["clothing"].stats()
    electronics = session_logs["electronics"].stats()
    # Paper shape: electronics longer sessions, more unique queries.
    assert electronics["avg_session_len"] > clothing["avg_session_len"]
    assert electronics["avg_unique_queries"] > clothing["avg_unique_queries"]
    # Calibration within ~20% of the paper's absolute statistics.
    assert abs(clothing["avg_session_len"] - 8.79) < 1.8
    assert abs(electronics["avg_session_len"] - 12.27) < 2.4
    assert abs(electronics["avg_unique_queries"] - 2.47) < 0.8


def test_day_split_shapes(session_logs):
    for log in session_logs.values():
        dataset = build_session_dataset(log, max_len=10)
        assert len(dataset.train) > len(dataset.dev)
        assert len(dataset.train) > len(dataset.test)
