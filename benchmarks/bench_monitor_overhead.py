"""Monitoring overhead: what the scrape/evaluate/emit loop costs.

Drives identical Zipf traffic through two clusters — one bare, one with
the full continuous-monitoring stack attached (time-series collector on
a fine scrape grid, three burn-rate SLOs evaluated per scrape, and a
structured event log wired into every serving component) — and checks
that monitoring stays *bounded*: every series respects its ring-buffer
capacity, the scrape count is exactly the drive horizon over the grid
interval, the event log never exceeds its cap, and the wall-clock cost
of the monitored drive stays within a generous constant factor of the
bare one.  The wall-clock ratio is a smoke bound (machines vary); the
structural bounds are the real contract.
"""

import numpy as np
from conftest import publish

from repro.obs import (
    BurnRateRule,
    EventLog,
    MetricSum,
    MetricsRegistry,
    SloEvaluator,
    SloSpec,
    TimeSeriesCollector,
    WallProfiler,
)
from repro.reporting import Table
from repro.serving import ClusterConfig, CosmoCluster
from repro.serving.chaos import ScriptedGenerator
from repro.utils.rng import spawn_rng

N_REQUESTS = 3000
N_QUERIES = 200
INTER_ARRIVAL_S = 0.002
SCRAPE_INTERVAL_S = 0.25
SERIES_CAPACITY = 16  # deliberately small so the ring buffers wrap


def _traffic(seed: int) -> list[str]:
    rng = spawn_rng(seed, "monitor-overhead-traffic")
    weights = 1.0 / np.arange(1, N_QUERIES + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(N_QUERIES, size=N_REQUESTS, p=weights)
    return [f"query {int(i):03d}" for i in picks]


def _specs() -> list[SloSpec]:
    served = ("serving_served_fresh_total", "serving_degraded_serves_total")
    windows = (BurnRateRule(long_s=4 * SCRAPE_INTERVAL_S,
                            short_s=SCRAPE_INTERVAL_S, max_burn_rate=10.0),)
    return [
        SloSpec(name="availability", description="served with knowledge",
                target=0.99, good=MetricSum(served),
                total=MetricSum(served + ("serving_fallbacks_total",)),
                windows=windows),
        SloSpec(name="latency-p99", description="latency under 250ms",
                target=0.95,
                good=MetricSum(("cluster_request_latency_seconds",), le=0.25),
                total=MetricSum(("cluster_request_latency_seconds",)),
                windows=windows),
        SloSpec(name="cache-hit-rate", description="cache-layer answers",
                target=0.50,
                good=MetricSum(("cache_requests_total",),
                               where=(("outcome", ("layer1_hit", "layer2_hit")),)),
                total=MetricSum(("cache_requests_total",)),
                windows=windows),
    ]


def _build(monitored: bool):
    registry = MetricsRegistry()
    event_log = EventLog(max_events=500, registry=registry) if monitored else None
    cluster = CosmoCluster(
        lambda i: ScriptedGenerator(),
        config=ClusterConfig(n_replicas=3, max_batch_size=16,
                             max_batch_delay_s=0.25, seed=7,
                             name="mon" if monitored else "bare"),
        registry=registry,
        event_log=event_log,
    )
    # Warm the yearly layer so the fault-free drive serves fresh — a cold
    # start is all fallbacks, which is the chaos scenario's job to model.
    cluster.preload_yearly({
        q: ScriptedGenerator.knowledge_for(q)
        for q in (f"query {i:03d}" for i in range(N_QUERIES))
    })
    collector = evaluator = None
    if monitored:
        collector = TimeSeriesCollector(registry, interval_s=SCRAPE_INTERVAL_S,
                                        capacity=SERIES_CAPACITY)
        evaluator = SloEvaluator(registry, _specs(), event_log=event_log)
    return cluster, collector, evaluator


def _drive(cluster, collector, evaluator, traffic, profiler, section):
    with profiler.section(section):
        for query in traffic:
            cluster.handle(query)
            cluster.clock.advance(INTER_ARRIVAL_S)
            if collector is not None:
                for ts in collector.maybe_scrape(cluster.clock.now()):
                    evaluator.evaluate(ts)
        cluster.flush()


def test_monitor_overhead(benchmark):
    traffic = _traffic(seed=7)
    profiler = WallProfiler()

    bare, _, _ = _build(monitored=False)
    monitored, collector, evaluator = _build(monitored=True)
    _drive(bare, None, None, traffic, profiler, "bare")
    _drive(monitored, collector, evaluator, traffic, profiler, "monitored")

    bare_s = profiler.total_s("bare")
    monitored_s = profiler.total_s("monitored")
    ratio = monitored_s / bare_s if bare_s > 0 else float("inf")

    # Structural bounds — the deterministic contract.
    expected_scrapes = int(N_REQUESTS * INTER_ARRIVAL_S / SCRAPE_INTERVAL_S)
    assert collector.scrapes == expected_scrapes
    series = collector.series()
    assert series, "monitored drive produced no series"
    for s in series:
        assert len(s) <= SERIES_CAPACITY
        assert len(s) + s.dropped == collector.scrapes or len(s) <= collector.scrapes
    event_log = monitored.event_log
    assert len(event_log) <= 500
    assert event_log.emitted == len(event_log) + event_log.dropped
    assert evaluator.evaluations == expected_scrapes
    assert not evaluator.any_fired  # fault-free drive must stay quiet

    # Same traffic, same serving outcome — monitoring observes, never steers.
    assert monitored.metrics_totals()["requests"] == bare.metrics_totals()["requests"]
    assert monitored.availability == bare.availability

    table = Table("Monitoring overhead — same drive, bare vs monitored",
                  ["Arm", "Wall (s)", "Scrapes", "Series", "Events"])
    table.add_row("bare", f"{bare_s:.3f}", 0, 0, 0)
    table.add_row("monitored", f"{monitored_s:.3f}", collector.scrapes,
                  len(series), event_log.emitted)
    publish("monitor_overhead", table.render()
            + f"\noverhead ratio (nondeterministic): {ratio:.2f}x")

    # Wall-clock smoke bound: generous, but catches a scrape loop that
    # accidentally goes quadratic in series count or history length.
    assert monitored_s <= bare_s * 10 + 0.5

    # Benchmark kernel: the steady-state monitored request path.
    def kernel():
        for query in traffic[:200]:
            monitored.handle(query)
            monitored.clock.advance(INTER_ARRIVAL_S)
            for ts in collector.maybe_scrape(monitored.clock.now()):
                evaluator.evaluate(ts)

    benchmark(kernel)
