"""Table 6: search relevance on the public ESCI subset.

Trains the three architectures in both encoder regimes.  The knowledge
features follow the deployed path of Figure 5: downstream applications
read *stored* COSMO knowledge (the KG built by the pipeline, which the
finetuned COSMO-LM expanded), not fresh per-request generations.

Paper shape: Cross > Bi; "+ Intent" gives the largest relative Macro-F1
gain in the fixed regime (~60% rel.) and a clear gain when trainable;
Cross+Intent is best overall.
"""

import pytest
from conftest import publish

from repro.apps.relevance import (
    FeatureExtractor,
    kg_knowledge_provider,
    prepare_esci,
    train_relevance_model,
)
from repro.behavior import generate_esci
from repro.reporting import Table, format_float


@pytest.fixture(scope="module")
def table6(bench_pipeline):
    world = bench_pipeline.world
    dataset = generate_esci(world, locale="KDD Cup", pairs_per_query=6,
                            max_queries=500, seed=7)
    prepared = prepare_esci(
        dataset, knowledge_provider=kg_knowledge_provider(bench_pipeline.kg, world)
    )
    results = {}
    models = {}
    for architecture in ("bi-encoder", "cross-encoder", "cross-encoder-intent"):
        for trainable in (False, True):
            extractor = FeatureExtractor(512)
            model, result = train_relevance_model(
                prepared, architecture, trainable, epochs=8, seed=7,
                extractor=extractor,
            )
            results[(architecture, trainable)] = result
            models[(architecture, trainable)] = (model, prepared)
    return results, models, prepared


def test_table6_relevance(table6, benchmark):
    results, models, prepared = table6

    table = Table("Table 6 — public ESCI relevance (COSMO-LM knowledge)",
                  ["Method", "Fixed Macro", "Fixed Micro",
                   "Trainable Macro", "Trainable Micro"])
    for architecture, label in (
        ("bi-encoder", "Bi-encoder"),
        ("cross-encoder", "Cross-encoder"),
        ("cross-encoder-intent", "Cross-encoder w/ Intent"),
    ):
        fixed = results[(architecture, False)]
        tuned = results[(architecture, True)]
        table.add_row(label,
                      format_float(100 * fixed.macro_f1),
                      format_float(100 * fixed.micro_f1),
                      format_float(100 * tuned.macro_f1),
                      format_float(100 * tuned.micro_f1))
    cross_f = results[("cross-encoder", False)]
    intent_f = results[("cross-encoder-intent", False)]
    cross_t = results[("cross-encoder", True)]
    intent_t = results[("cross-encoder-intent", True)]
    delta = (
        f"Δ fixed:     Macro {100 * (intent_f.macro_f1 / cross_f.macro_f1 - 1):+.1f}%  "
        f"Micro {100 * (intent_f.micro_f1 / cross_f.micro_f1 - 1):+.1f}%  "
        f"(paper: +60.1% / +29.3%)\n"
        f"Δ trainable: Macro {100 * (intent_t.macro_f1 / cross_t.macro_f1 - 1):+.1f}%  "
        f"Micro {100 * (intent_t.micro_f1 / cross_t.micro_f1 - 1):+.1f}%  "
        f"(paper: +27.8% / +22.3%)"
    )
    publish("table6_relevance", table.render() + "\n" + delta)

    # Benchmark kernel: scoring the test split with the deployed model.
    from repro.apps.relevance import evaluate_model

    model, data = models[("cross-encoder-intent", True)]
    benchmark(evaluate_model, model, data.test)

    # Paper shape checks.
    assert results[("cross-encoder", True)].macro_f1 > results[("bi-encoder", True)].macro_f1
    # The fixed regime shows the clearest intent gain (as in the paper,
    # where it is +60% relative); the trainable regime must not regress.
    assert intent_f.macro_f1 > cross_f.macro_f1
    assert intent_t.macro_f1 > cross_t.macro_f1 - 0.01
    # The largest relative gain comes in the fixed regime.
    fixed_gain = intent_f.macro_f1 / cross_f.macro_f1 - 1.0
    tuned_gain = intent_t.macro_f1 / cross_t.macro_f1 - 1.0
    assert fixed_gain > tuned_gain
