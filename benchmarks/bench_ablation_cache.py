"""Cache-design ablation (§3.5.1).

The two-layer asynchronous cache combines a pre-loaded yearly layer with
a batch-updated daily layer.  The bench serves identical Zipf traffic
against (a) the full design, (b) daily layer only (no yearly preload),
and (c) no batch processing — quantifying what each layer buys.
"""

import numpy as np
import pytest
from conftest import publish

from repro.reporting import Table, format_percent
from repro.serving import CosmoService, ServeRequest
from repro.utils.rng import spawn_rng


def _traffic(world, n_requests, seed):
    rng = spawn_rng(seed, "cache-traffic")
    queries = world.queries.broad()
    weights = np.array([q.popularity for q in queries])
    weights = weights / weights.sum()
    picks = rng.choice(len(queries), size=n_requests, p=weights)
    return [queries[int(i)].text for i in picks]


def _serve(lm, traffic, preload_yearly: bool, run_batches: bool, head: list[str]):
    service = CosmoService(lm, fallback_response="")
    if preload_yearly:
        warm = {q: g.text for q, g in zip(head, lm.generate_batch(head).require())}
        service.cache.preload_yearly(warm)
    for start in range(0, len(traffic), 500):
        service.serve_batch(
            [ServeRequest(query=query) for query in traffic[start : start + 500]])
        if run_batches:
            service.run_batch()
    return service


@pytest.fixture(scope="module")
def cache_variants(bench_pipeline):
    from collections import Counter

    world = bench_pipeline.world
    lm = bench_pipeline.cosmo_lm
    traffic = _traffic(world, 3000, seed=17)
    head = [q for q, _ in Counter(traffic).most_common(20)]
    return {
        "yearly + daily (full design)": _serve(lm, traffic, True, True, head),
        "daily layer only": _serve(lm, traffic, False, True, head),
        "no batch processing": _serve(lm, traffic, True, False, head),
    }


def test_cache_layer_ablation(cache_variants, benchmark):
    table = Table("Cache ablation — identical Zipf traffic",
                  ["Configuration", "Hit rate", "L1 hits", "L2 hits", "Fallbacks"])
    # Snapshot the stats BEFORE the benchmark kernel touches any cache.
    snapshot = {}
    for name, service in cache_variants.items():
        stats = service.cache.stats
        snapshot[name] = (stats.hit_rate, stats.layer1_hits, stats.layer2_hits)
        table.add_row(name, format_percent(stats.hit_rate),
                      stats.layer1_hits, stats.layer2_hits,
                      service.metrics.fallbacks)
    publish("ablation_cache", table.render())

    # Benchmark kernel on a throwaway cache so the measured variants stay
    # untouched.
    from repro.serving import AsyncCacheStore, SimClock

    scratch = AsyncCacheStore(SimClock())
    scratch.preload_yearly({"warm": "x"})
    benchmark(scratch.lookup, "warm")

    full_rate, full_l1, full_l2 = snapshot["yearly + daily (full design)"]
    daily_rate, _, _ = snapshot["daily layer only"]
    no_batch_rate, _, _ = snapshot["no batch processing"]
    # The full design dominates: the yearly layer catches head traffic
    # immediately, batch processing is what fills the tail.
    assert full_rate >= daily_rate
    assert full_rate > no_batch_rate + 0.2
    assert full_l1 > 0 and full_l2 > 0
