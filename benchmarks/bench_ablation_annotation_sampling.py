"""Eq. 2 re-weighting ablation (§3.3.2).

The paper re-weights annotation sampling by log-knowledge-frequency over
head popularity so long-tail knowledge is not starved.  The bench
compares Eq. 2 sampling with uniform sampling on (a) long-tail coverage —
how many annotated candidates hang off low-popularity heads — and (b)
distinct knowledge tails covered per annotation budget.
"""

import numpy as np
import pytest
from conftest import publish

from repro.core.annotation_sampling import sample_for_annotation
from repro.reporting import Table, format_percent


def _head_popularity(candidate, cobuy, searchbuy):
    sample = candidate.sample
    if sample.behavior == "co-buy":
        return cobuy.degree(sample.product_ids[0]) * cobuy.degree(sample.product_ids[1])
    clicks, _ = searchbuy.query_engagement(sample.query_id)
    return (clicks + 1) * (searchbuy.product_degree(sample.product_ids[0]) + 1)


@pytest.fixture(scope="module")
def sampling_comparison(bench_pipeline):
    pool = bench_pipeline.filtered
    cobuy, searchbuy = bench_pipeline.cobuy, bench_pipeline.searchbuy
    budget = 1000
    weighted = sample_for_annotation(pool, cobuy, searchbuy, budget, seed=3)
    uniform = sample_for_annotation(pool, cobuy, searchbuy, budget, uniform=True, seed=3)

    popularity = np.array([_head_popularity(c, cobuy, searchbuy) for c in pool])
    tail_threshold = np.median(popularity)

    def describe(sample):
        pops = np.array([_head_popularity(c, cobuy, searchbuy) for c in sample])
        return {
            "long_tail_share": float((pops <= tail_threshold).mean()),
            "distinct_tails": len({c.tail for c in sample if c.tail}),
        }

    return describe(weighted), describe(uniform), budget


def test_eq2_reweighting_improves_long_tail_coverage(sampling_comparison, benchmark,
                                                     bench_pipeline):
    weighted, uniform, budget = sampling_comparison
    table = Table("Eq. 2 annotation re-weighting vs uniform sampling",
                  ["Metric", "Eq. 2", "Uniform"])
    table.add_row("Long-tail head share",
                  format_percent(weighted["long_tail_share"]),
                  format_percent(uniform["long_tail_share"]))
    table.add_row("Distinct knowledge tails",
                  weighted["distinct_tails"], uniform["distinct_tails"])
    table.add_row("Annotation budget", budget, budget)
    publish("ablation_annotation_sampling", table.render())

    benchmark(
        sample_for_annotation,
        bench_pipeline.filtered,
        bench_pipeline.cobuy,
        bench_pipeline.searchbuy,
        500,
    )

    # Eq. 2 shifts annotation budget toward long-tail heads — the
    # property the paper designed it for.
    assert weighted["long_tail_share"] > uniform["long_tail_share"]
