"""Figure 7: multi-locale ("private dataset") relevance results.

For each of the four markets (US, CA, UK, IN), compare the cross-encoder
with and without COSMO intent knowledge, in both encoder regimes.  The
paper's claim: intent knowledge wins for every locale under both
regimes, i.e. the knowledge generalizes across product distributions and
language habits.
"""

import pytest
from conftest import publish

from repro.apps.relevance import (
    FeatureExtractor,
    kg_knowledge_provider,
    prepare_esci,
    train_relevance_model,
)
from repro.behavior import generate_esci
from repro.reporting import Table, format_float

_LOCALES = ("US", "CA", "UK", "IN")


@pytest.fixture(scope="module")
def locale_results(bench_pipeline):
    world = bench_pipeline.world
    provider = kg_knowledge_provider(bench_pipeline.kg, world)
    results = {}
    for locale in _LOCALES:
        dataset = generate_esci(world, locale=locale, pairs_per_query=6,
                                max_queries=350, seed=7)
        prepared = prepare_esci(dataset, knowledge_provider=provider)
        for architecture in ("cross-encoder", "cross-encoder-intent"):
            for trainable in (False, True):
                _, result = train_relevance_model(
                    prepared, architecture, trainable, epochs=8, seed=7,
                    extractor=FeatureExtractor(512),
                )
                results[(locale, architecture, trainable)] = result
    return results


def test_fig7_locale_generalization(locale_results, benchmark):
    table = Table("Figure 7 — multi-locale relevance (Macro F1)",
                  ["Locale", "Cross fixed", "+Intent fixed",
                   "Cross tuned", "+Intent tuned"])
    for locale in _LOCALES:
        table.add_row(
            locale,
            format_float(100 * locale_results[(locale, "cross-encoder", False)].macro_f1),
            format_float(100 * locale_results[(locale, "cross-encoder-intent", False)].macro_f1),
            format_float(100 * locale_results[(locale, "cross-encoder", True)].macro_f1),
            format_float(100 * locale_results[(locale, "cross-encoder-intent", True)].macro_f1),
        )
    publish("fig7_locales", table.render())

    benchmark(lambda: sum(r.macro_f1 for r in locale_results.values()))

    # Paper shape: +Intent wins for every locale in both regimes (our
    # knowledge is weaker than LLaMA-generated, so a near-tie is
    # tolerated in at most two of the eight cells).
    wins = 0
    for locale in _LOCALES:
        for trainable in (False, True):
            base = locale_results[(locale, "cross-encoder", trainable)].macro_f1
            intent = locale_results[(locale, "cross-encoder-intent", trainable)].macro_f1
            wins += int(intent > base - 0.005)
    assert wins >= 6
