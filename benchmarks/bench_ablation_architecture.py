"""COSMO-LM architecture ablation.

The production student is a pointer-generator attention seq2seq; the
ablation baseline is a plain left-to-right GRU LM trained on identical
instruction data.  The copy mechanism is what makes knowledge generation
(a content-transfer task) learnable from few demonstrations, so the
seq2seq must dominate on held-out generation quality.
"""

import pytest
from conftest import publish

from repro.core.cosmo_lm import CosmoLM, CosmoLMConfig
from repro.reporting import Table, format_percent


@pytest.fixture(scope="module")
def architectures(bench_pipeline):
    world = bench_pipeline.world
    annotated = {c.sample.sample_id for c in bench_pipeline.annotated_candidates}
    held = [s for s in bench_pipeline.samples
            if s.sample_id not in annotated and s.intent_id is not None][:250]

    results = {}
    seq2seq = bench_pipeline.cosmo_lm  # already finetuned by the pipeline
    texts = [g.text for g in seq2seq.generate_batch(
        [seq2seq.prompt_for_sample(world, s) for s in held]).require()]
    results["pointer seq2seq (production)"] = CosmoLM.judge_generations(world, held, texts)

    plain = CosmoLM(config=CosmoLMConfig(architecture="lm", epochs=12), seed=7)
    plain.finetune(bench_pipeline.instruction_dataset)
    plain_texts = [g.text for g in plain.generate_batch(
        [plain.prompt_for_sample(world, s) for s in held]).require()]
    results["plain GRU LM (ablation)"] = CosmoLM.judge_generations(world, held, plain_texts)
    return results


def test_architecture_ablation(architectures, benchmark):
    table = Table("COSMO-LM architecture ablation (held-out behaviors)",
                  ["Architecture", "Parsed", "Plausible", "Typical"])
    for name, quality in architectures.items():
        table.add_row(name,
                      format_percent(quality.parsed / quality.total),
                      format_percent(quality.plausible_rate),
                      format_percent(quality.typical_rate))
    publish("ablation_architecture", table.render())

    benchmark(lambda: sum(q.typical for q in architectures.values()))

    seq2seq = architectures["pointer seq2seq (production)"]
    plain = architectures["plain GRU LM (ablation)"]
    # The copy mechanism drives held-out generation quality.
    assert seq2seq.typical_rate >= plain.typical_rate
    assert seq2seq.plausible_rate > plain.plausible_rate
