"""Table 5: ESCI dataset statistics across locales.

Regenerates the five locale datasets and prints the Table 5 layout
(training/test pairs, exact pairs, unique queries and products).  The
paper's relative locale sizes (CA smallest, KDD Cup/IN largest) must
hold.
"""

from conftest import publish

from repro.behavior import LOCALES, generate_esci
from repro.reporting import Table


def test_table5_esci_statistics(bench_world, benchmark):
    datasets = {
        locale: generate_esci(bench_world, locale=locale, pairs_per_query=6, seed=7)
        for locale in LOCALES
    }
    benchmark(generate_esci, bench_world, "CA", 6, None, 0.25, 7)

    table = Table("Table 5 — ESCI statistics per locale (bench scale)",
                  ["", *LOCALES])
    rows = {
        "# Training Pairs": lambda s: s["train_pairs"],
        "# Test Pairs": lambda s: s["test_pairs"],
        "# Exact Pairs": lambda s: s["exact_pairs"],
        "# Unique Queries": lambda s: s["unique_queries"],
        "# Unique Products": lambda s: s["unique_products"],
    }
    stats = {locale: datasets[locale].stats() for locale in LOCALES}
    for label, getter in rows.items():
        table.add_row(label, *(getter(stats[locale]) for locale in LOCALES))
    publish("table5_esci_stats", table.render())

    # Shape: CA is the smallest locale; KDD Cup and IN the largest —
    # exactly the paper's ordering.
    sizes = {locale: stats[locale]["train_pairs"] + stats[locale]["test_pairs"]
             for locale in LOCALES}
    assert sizes["CA"] == min(sizes.values())
    assert sizes["IN"] >= sizes["UK"] >= sizes["CA"]
    # Exact pairs dominate every locale (class imbalance of Table 5).
    for locale in LOCALES:
        total = sizes[locale]
        assert stats[locale]["exact_pairs"] / total > 0.45
