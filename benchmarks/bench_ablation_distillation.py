"""Distillation ablation (§3.4 / §5 claims).

Compares the raw teacher with the instruction-finetuned COSMO-LM on
held-out behaviors:

* generation *well-formedness* (parseable knowledge rate) — instruction
  tuning eliminates the teacher's generic/paraphrase/truncation modes;
* oracle-judged typical/plausible rates;
* simulated inference latency — the orders-of-magnitude gap that makes
  online serving feasible (§3.5).
"""

import pytest
from conftest import publish

from repro.core.cosmo_lm import CosmoLM
from repro.core.generation import build_prompt
from repro.core.relations import parse_predicate
from repro.llm import TeacherLLM
from repro.reporting import Table, format_percent


@pytest.fixture(scope="module")
def distillation(bench_pipeline):
    world = bench_pipeline.world
    lm = bench_pipeline.cosmo_lm
    annotated = {c.sample.sample_id for c in bench_pipeline.annotated_candidates}
    held = [s for s in bench_pipeline.samples
            if s.sample_id not in annotated and s.intent_id is not None][:300]

    teacher = TeacherLLM(world, seed=77)
    teacher_texts = [
        teacher.generate_for(build_prompt(world, s), num_candidates=1)[0].text
        for s in held
    ]
    teacher_latency = teacher.latency.total_simulated_s / len(held)

    before = lm.latency.total_simulated_s
    student_texts = [
        g.text for g in lm.generate_batch([lm.prompt_for_sample(world, s) for s in held]).require()
    ]
    student_latency = (lm.latency.total_simulated_s - before) / len(held)

    return world, held, teacher_texts, student_texts, teacher_latency, student_latency


def test_distillation_quality_and_cost(distillation, benchmark):
    world, held, teacher_texts, student_texts, teacher_lat, student_lat = distillation

    teacher_quality = CosmoLM.judge_generations(world, held, teacher_texts)
    student_quality = CosmoLM.judge_generations(world, held, student_texts)
    teacher_wellformed = sum(
        parse_predicate(t) is not None and t.endswith(".") for t in teacher_texts
    ) / len(teacher_texts)
    student_wellformed = sum(
        parse_predicate(t) is not None and t.endswith(".") for t in student_texts
    ) / len(student_texts)

    table = Table("Distillation — raw teacher vs instruction-tuned COSMO-LM",
                  ["Metric", "Teacher (OPT-30b sim)", "COSMO-LM"])
    table.add_row("Well-formed knowledge rate",
                  format_percent(teacher_wellformed), format_percent(student_wellformed))
    table.add_row("Typical rate (oracle)",
                  format_percent(teacher_quality.typical_rate),
                  format_percent(student_quality.typical_rate))
    table.add_row("Plausible rate (oracle)",
                  format_percent(teacher_quality.plausible_rate),
                  format_percent(student_quality.plausible_rate))
    table.add_row("Latency / generation", f"{teacher_lat:.2f} s", f"{student_lat * 1000:.1f} ms")
    table.add_row("Speedup", "1x", f"{teacher_lat / max(student_lat, 1e-9):,.0f}x")
    publish("ablation_distillation", table.render())

    benchmark(lambda: CosmoLM.judge_generations(world, held, student_texts))

    # Shape: the student is far better formed and orders of magnitude
    # cheaper; its typical rate is within the same regime as the raw
    # teacher despite being ~6 orders of magnitude smaller.
    assert student_wellformed > teacher_wellformed + 0.1
    assert teacher_lat / student_lat > 1000
    assert student_quality.typical_rate > 0.05
