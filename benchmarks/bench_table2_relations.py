"""Table 2: the mined relation taxonomy.

Relation discovery (§3.1) mines predicate patterns from the teacher's
raw generations (produced under the four seed relations) and must
recover the 15-relation taxonomy with the right tail types.
"""

from conftest import publish

from repro.core import RelationDiscovery
from repro.core.relations import RELATION_SPECS, Relation
from repro.reporting import Table


def test_table2_relation_discovery(bench_pipeline, benchmark):
    texts = [c.text for c in bench_pipeline.candidates]
    discovery = RelationDiscovery(min_count=3)
    mined = benchmark(discovery.mine, texts)

    table = Table(
        "Table 2 — mined e-commerce commonsense relations",
        ["Relation", "Tail Type", "Pattern", "Count", "Example"],
    )
    for record in mined:
        tail_type = record.tail_type.value if record.tail_type else "(unresolved)"
        example = record.examples[0] if record.examples else ""
        table.add_row(record.relation.value, tail_type, record.pattern,
                      record.count, example)
    publish("table2_relations", table.render())

    mined_relations = {record.relation for record in mined}
    # Shape: the paper's 15-relation taxonomy is recovered from raw text.
    assert len(mined_relations) >= 13
    # The canonicalization split of "used for" by tail type happens.
    assert Relation.USED_FOR_FUNC in mined_relations or Relation.USED_FOR_EVE in mined_relations
    # Tail types agree with Table 2 where resolved.
    for record in mined:
        if record.tail_type is not None and record.pattern != "is used for":
            expected = RELATION_SPECS[record.relation].tail_type
            assert record.tail_type == expected or record.relation.value.startswith("USED_FOR")
