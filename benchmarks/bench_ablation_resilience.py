"""Resilience ablation: chaos bench for the fault-tolerant serving stack.

Sweeps injected fault rates over identical Zipf traffic and compares the
serving stack with resilience (retry + circuit breaker + output
validation + graceful degradation + dead-letter redrive) against the
happy-path-only baseline.  Availability here is *truthful*: a request
counts as available only when the served text matches the knowledge the
scripted generator would produce — garbage and empty fallbacks both
count against it.

A second scenario scripts a sustained total outage and verifies the
breaker's full life cycle (closed → open → half-open → closed) with all
waiting charged to the simulated clock.
"""

import pytest
from conftest import publish

from repro.reporting import Table, format_percent
from repro.serving.chaos import ChaosConfig, run_chaos, run_outage_demo
from repro.serving.resilience import BreakerState

FAULT_RATES = (0.0, 0.05, 0.10, 0.25)


@pytest.fixture(scope="module")
def chaos_sweep():
    reports = {}
    for rate in FAULT_RATES:
        for resilience in (True, False):
            config = ChaosConfig(fault_rate=rate, resilience=resilience, seed=7)
            reports[(rate, resilience)] = run_chaos(config)
    return reports


def test_resilience_ablation(chaos_sweep, benchmark):
    table = Table(
        "Resilience ablation — identical Zipf traffic, mixed fault injection",
        ["Fault rate", "Arm", "Availability", "Degraded", "Fallbacks",
         "Retries", "DLQ", "p50", "p99"],
    )
    for rate in FAULT_RATES:
        for resilience in (True, False):
            report = chaos_sweep[(rate, resilience)]
            table.add_row(
                format_percent(rate),
                "resilient" if resilience else "baseline",
                format_percent(report.availability),
                report.degraded,
                report.fallbacks,
                report.retries,
                report.dead_lettered,
                f"{report.percentile_ms(50):.1f} ms",
                f"{report.percentile_ms(99):.1f} ms",
            )
    publish("ablation_resilience", table.render())

    # Benchmark kernel: one full chaos run at the headline fault rate.
    benchmark(run_chaos, ChaosConfig(fault_rate=0.10, resilience=True, seed=7,
                                     requests_per_day=300, days=1))

    # The paper-shaped claims: resilience holds >= 99% availability at a
    # 10% fault rate while the baseline measurably degrades, and the gap
    # widens with the fault rate.
    resilient = chaos_sweep[(0.10, True)]
    baseline = chaos_sweep[(0.10, False)]
    assert resilient.availability >= 0.99
    assert baseline.availability < resilient.availability - 0.005
    assert resilient.retries > 0
    assert chaos_sweep[(0.25, False)].availability < baseline.availability
    # Resilience never hurts when nothing fails.
    assert chaos_sweep[(0.0, True)].availability >= chaos_sweep[(0.0, False)].availability


def test_chaos_runs_are_deterministic():
    config = ChaosConfig(fault_rate=0.10, resilience=True, seed=11,
                         requests_per_day=600, days=1)
    first, second = run_chaos(config), run_chaos(config)
    assert first.availability == second.availability
    assert (first.latency.count, first.latency.sum, first.latency.bucket_counts()) \
        == (second.latency.count, second.latency.sum, second.latency.bucket_counts())
    assert (first.retries, first.dead_lettered, first.rejected_generations) == (
        second.retries, second.dead_lettered, second.rejected_generations)


def test_breaker_opens_and_recovers_under_sustained_outage():
    service, phases = run_outage_demo(seed=7)
    breaker = service.breaker
    # The breaker tripped during the outage and recovered through
    # half-open probes once the faults cleared.
    assert breaker.opens >= 1
    assert breaker.closes >= 1
    assert breaker.refusals >= 1
    assert breaker.state is BreakerState.CLOSED
    states = [state for _, state in breaker.transitions]
    assert BreakerState.OPEN in states
    assert states[-1] is BreakerState.CLOSED
    assert states.index(BreakerState.OPEN) < len(states) - 1
    # Graceful degradation held availability through the outage, and the
    # dead-letter queue healed afterwards.
    assert phases["outage"] >= 0.99
    assert phases["recovery"] >= 0.99
    assert service.metrics.dead_lettered > 0
    assert service.metrics.redriven == service.metrics.dead_lettered
    # All waiting was simulated: days of traffic plus breaker cooldowns
    # elapsed on the SimClock.
    assert service.clock.now() > 3 * 86_400
