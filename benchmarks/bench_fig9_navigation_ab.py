"""Figure 9 / §4.3.2: multi-turn navigation and the online A/B test.

Paper: over months of A/B tests on ~10% of US traffic, COSMO navigation
produced a **0.7% relative sales increase** and an **8% relative
navigation-engagement increase**.  The bench reproduces the shape at
simulation-scale traffic: a large, highly significant engagement lift
and a small positive sales lift (whose significance, as in the paper,
needs much larger traffic than a bench run).
"""

import pytest
from conftest import publish

from repro.apps.navigation import (
    CosmoNavigator,
    NavigationABTest,
    TaxonomyNavigator,
    build_navigation_hierarchy,
)
from repro.reporting import Table, format_percent


@pytest.fixture(scope="module")
def ab_outcome(bench_pipeline):
    world = bench_pipeline.world
    hierarchy = build_navigation_hierarchy(bench_pipeline.kg, world)
    experiment = NavigationABTest(
        world,
        TaxonomyNavigator(world),
        CosmoNavigator(world, hierarchy),
        treatment_fraction=0.5,
        navigation_purchase_boost=0.06,
        seed=29,
    )
    return experiment.run(n_sessions=240_000), hierarchy


def test_fig9_navigation_ab(ab_outcome, bench_pipeline, benchmark):
    outcome, hierarchy = ab_outcome
    z_eng, p_eng = outcome.engagement_significance()
    z_sales, p_sales = outcome.sales_significance()

    table = Table("§4.3.2 — navigation A/B experiment (paper vs measured)",
                  ["Metric", "Paper", "Measured"])
    table.add_row("Engagement lift", "+8%",
                  f"{format_percent(outcome.engagement_lift)} (z={z_eng:.1f}, p={p_eng:.1e})")
    table.add_row("Sales lift", "+0.7%",
                  f"{format_percent(outcome.sales_lift)} (z={z_sales:.1f}, p={p_sales:.2f})")
    table.add_row("Control sessions", "~90% traffic", outcome.control.sessions)
    table.add_row("Treatment sessions", "~10% traffic", outcome.treatment.sessions)
    table.add_row("Control engagement", "-", format_percent(outcome.control.engagement_rate))
    table.add_row("Treatment engagement", "-", format_percent(outcome.treatment.engagement_rate))
    publish("fig9_navigation_ab", table.render())

    # Benchmark kernel: a small slice of A/B traffic.
    world = bench_pipeline.world
    small = NavigationABTest(
        world, TaxonomyNavigator(world), CosmoNavigator(world, hierarchy), seed=3
    )
    benchmark(small.run, 2000)

    # Paper shape: engagement lift large and highly significant; sales
    # lift small and positive; engagement lift >> sales lift.
    assert outcome.engagement_lift > 0.03
    assert p_eng < 1e-6
    assert outcome.sales_lift > 0.0
    assert outcome.engagement_lift > outcome.sales_lift
