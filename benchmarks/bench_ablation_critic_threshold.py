"""Critic keep-threshold sweep (§3.3.2 design choice).

The paper keeps knowledge with plausibility score > 0.5.  The bench
sweeps the threshold and measures the volume/precision trade-off of the
resulting KG edges against the oracle, confirming 0.5 is a sensible
operating point (high precision without collapsing volume).
"""

import numpy as np
import pytest
from conftest import publish

from repro.reporting import Table, format_percent

_GOOD = {"typical", "plausible"}


@pytest.fixture(scope="module")
def threshold_sweep(bench_pipeline):
    critic = bench_pipeline.critic
    pool = bench_pipeline.filtered
    scores = critic.score(pool)[:, 0]
    truth = np.array([c.truth.quality in _GOOD for c in pool])
    rows = []
    for threshold in (0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
        kept = scores > threshold
        volume = int(kept.sum())
        precision = float(truth[kept].mean()) if volume else 0.0
        recall = float(truth[kept].sum() / max(truth.sum(), 1))
        rows.append((threshold, volume, precision, recall))
    return rows, len(pool), float(truth.mean())


def test_critic_threshold_sweep(threshold_sweep, benchmark, bench_pipeline):
    rows, pool_size, base_precision = threshold_sweep
    table = Table(
        f"Critic threshold sweep (pool {pool_size}, base precision "
        f"{format_percent(base_precision)})",
        ["Threshold", "Edges kept", "Oracle precision", "Oracle recall"],
    )
    for threshold, volume, precision, recall in rows:
        table.add_row(f"{threshold:.1f}", volume,
                      format_percent(precision), format_percent(recall))
    publish("ablation_critic_threshold", table.render())

    benchmark(bench_pipeline.critic.score, bench_pipeline.filtered[:500])

    by_threshold = {t: (v, p, r) for t, v, p, r in rows}
    # Precision rises monotonically-ish with the threshold...
    assert by_threshold[0.7][1] >= by_threshold[0.3][1]
    # ...and the paper's 0.5 beats the unfiltered pool while keeping
    # a non-trivial share of candidates.
    volume_05, precision_05, recall_05 = by_threshold[0.5]
    assert precision_05 > base_precision
    assert recall_05 > 0.4
