"""Table 9 / Figure 10: COSMO-LM generation examples per category.

The paper's appendix shows one generation per domain.  The bench asks
the finetuned COSMO-LM to explain one fresh behavior per domain and
verifies the generations are well-formed knowledge across all 18
categories.
"""

from conftest import publish

from repro.catalog import DOMAIN_NAMES
from repro.core.relations import parse_predicate
from repro.reporting import Table


def _one_sample_per_domain(bench_pipeline):
    chosen = {}
    for sample in bench_pipeline.samples:
        if sample.behavior == "search-buy" and sample.domain not in chosen:
            chosen[sample.domain] = sample
    return [chosen[d] for d in DOMAIN_NAMES if d in chosen]


def test_table9_generation_examples(bench_pipeline, benchmark):
    lm = bench_pipeline.cosmo_lm
    world = bench_pipeline.world
    samples = _one_sample_per_domain(bench_pipeline)
    prompts = [lm.prompt_for_sample(world, s) for s in samples]
    generations = benchmark(lm.generate_batch, prompts).require()

    table = Table("Table 9 — COSMO-LM generations per category",
                  ["Category", "Query", "Generation"])
    parsed = 0
    for sample, generation in zip(samples, generations):
        query_text = sample.head_text.split(" ||| ")[0]
        table.add_row(sample.domain, query_text[:34], generation.text[:60])
        parsed += int(parse_predicate(generation.text) is not None)
    publish("table9_generations", table.render())

    assert len(samples) == 18  # one behavior per category
    assert parsed / len(samples) > 0.7  # well-formed knowledge everywhere
