"""Figure 5 / §3.5: the serving deployment.

Simulates a day of query traffic against the two-layer asynchronous
cache + feature store deployment and compares it with serving the
teacher LLM directly per request — the comparison that justifies the
paper's design (cache-speed latency for most traffic at LLM-refresh
cost, vs seconds-per-request for a 30B model).
"""

import numpy as np
from conftest import publish

from repro.llm import TeacherLLM
from repro.reporting import Table, format_percent
from repro.serving import CosmoService, ServeRequest
from repro.utils.rng import spawn_rng


def _traffic(world, n_requests: int, seed: int) -> list[str]:
    """Zipf-weighted broad-query traffic."""
    rng = spawn_rng(seed, "serving-traffic")
    queries = world.queries.broad()
    weights = np.array([q.popularity for q in queries])
    weights = weights / weights.sum()
    picks = rng.choice(len(queries), size=n_requests, p=weights)
    return [queries[int(i)].text for i in picks]


def test_fig5_serving_deployment(bench_pipeline, benchmark, obs_registry):
    world = bench_pipeline.world
    lm = bench_pipeline.cosmo_lm
    traffic = _traffic(world, n_requests=4000, seed=7)

    service = CosmoService(lm, fallback_response="",
                           registry=obs_registry, name="cached")
    # Pre-load layer 1 with the "yearly frequent searches": the head of
    # the traffic distribution.
    from collections import Counter

    head = [q for q, _ in Counter(traffic).most_common(20)]
    warm = {q: g.text for q, g in zip(head, lm.generate_batch(head).require())}
    service.cache.preload_yearly(warm)

    # A day of traffic with periodic batch processing, fed through the
    # batch-first ingress one window at a time.
    for start in range(0, len(traffic), 500):
        service.serve_batch(
            [ServeRequest(query=query) for query in traffic[start : start + 500]])
        service.run_batch()
    service.daily_refresh(refresh_stale=False)

    stats = service.cache.stats

    # Direct-teacher serving of a small slice of the same traffic, sharing
    # the registry: both arms land in one metrics surface, split by the
    # ``service`` label.
    # TeacherLLM implements KnowledgeGenerator directly — no adapter.
    teacher_service = CosmoService(TeacherLLM(world, seed=7),
                                   registry=obs_registry, name="direct")
    teacher_service.serve_batch(
        [ServeRequest(query=query, direct=True) for query in traffic[:25]])

    # Read the headline numbers back off the shared registry rather than
    # the service objects — what the snapshot artifact will contain.
    latency = obs_registry.get("serving_request_latency_seconds")
    cached_p99 = latency.labels(service="cached").percentile(99)
    direct_p50 = latency.labels(service="direct").percentile(50)
    cache_requests = obs_registry.get("cache_requests_total")
    registry_hits = (cache_requests.labels(store="cached", outcome="layer1_hit").value
                     + cache_requests.labels(store="cached", outcome="layer2_hit").value)
    assert registry_hits == stats.layer1_hits + stats.layer2_hits

    table = Table("Figure 5 — serving simulation (one day of traffic)",
                  ["Metric", "Value"])
    table.add_row("Requests", stats.requests)
    table.add_row("Cache hit rate", format_percent(stats.hit_rate))
    table.add_row("Layer-1 (yearly) hits", stats.layer1_hits)
    table.add_row("Layer-2 (daily) hits", stats.layer2_hits)
    table.add_row("Batch runs", service.metrics.batch_runs)
    table.add_row("Feature-store entries", len(service.features))
    table.add_row("Cached p99 latency", f"{cached_p99 * 1000:.1f} ms")
    table.add_row("Direct OPT-30b p50 latency", f"{direct_p50:.2f} s")
    table.add_row("Latency ratio (direct/cached)", f"{direct_p50 / cached_p99:,.0f}x")
    publish("fig5_serving", table.render())

    hit_rate = stats.hit_rate  # snapshot before the benchmark kernel runs

    # Benchmark kernel: steady-state request handling.
    benchmark(lambda: service.serve_batch(
        [ServeRequest(query=q) for q in traffic[:200]]))

    # Shape: most traffic is served from cache at millisecond latency,
    # while direct large-model serving costs whole seconds per request.
    assert hit_rate > 0.6
    assert direct_p50 / cached_p99 > 100
