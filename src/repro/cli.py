"""Command-line interface: run the pipeline and export the KG.

Usage::

    python -m repro.cli build-kg --seed 7 --scale 0.5 --out kg.jsonl
    python -m repro.cli inspect-kg kg.jsonl
    python -m repro.cli generate --seed 7 --query "winter camping essentials" \
        --product-type "camping tent" --domain "Sports & Outdoors"
"""

from __future__ import annotations

import argparse
import sys

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.core.kg_io import load_kg, save_kg
from repro.reporting import Table, format_percent


def _pipeline_config(seed: int, scale: float, lm_epochs: int) -> PipelineConfig:
    world = WorldConfig(seed=seed).scaled(scale)
    return PipelineConfig(
        seed=seed,
        world=world,
        cobuy_pairs_per_domain=max(10, int(120 * scale)),
        searchbuy_records_per_domain=max(10, int(150 * scale)),
        annotation_budget=max(100, int(1500 * scale)),
        lm=CosmoLMConfig(epochs=lm_epochs),
    )


def cmd_build_kg(args: argparse.Namespace) -> int:
    config = _pipeline_config(args.seed, args.scale, args.lm_epochs)
    print(f"Building the COSMO KG (seed={args.seed}, scale={args.scale})...")
    result = CosmoPipeline(config).run()
    stats = result.kg.stats()
    print(f"KG: {stats.nodes} nodes, {stats.edges} edges, "
          f"{stats.relations} relations, {stats.domains} domains")
    table = Table("Annotated quality", ["Behavior", "Plausibility", "Typicality"])
    for behavior, ratios in sorted(result.quality_ratios.items()):
        table.add_row(behavior, format_percent(ratios["plausibility"]),
                      format_percent(ratios["typicality"]))
    print(table.render())
    if args.out:
        written = save_kg(result.kg, args.out)
        print(f"Wrote {written} edges to {args.out}")
    return 0


def cmd_inspect_kg(args: argparse.Namespace) -> int:
    kg = load_kg(args.path)
    stats = kg.stats()
    print(f"{args.path}: {stats.nodes} nodes, {stats.edges} edges, "
          f"{stats.relations} relations, {stats.domains} domains")
    table = Table("Edges per domain", ["Domain", "co-buy", "search-buy"])
    domains = sorted({t.domain for t in kg.triples()})
    for domain in domains:
        table.add_row(domain, kg.edges_for(domain, "co-buy"),
                      kg.edges_for(domain, "search-buy"))
    print(table.render())
    for triple in kg.triples()[: args.sample]:
        print(f"  {triple.head.split(' ||| ')[0]!r} --{triple.relation.value}--> {triple.tail!r}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    config = _pipeline_config(args.seed, args.scale, args.lm_epochs)
    print("Training COSMO-LM (one pipeline run)...")
    result = CosmoPipeline(config).run()
    lm = result.cosmo_lm
    prompt = lm.searchbuy_prompt(args.query, args.product_title or args.product_type,
                                 args.domain, product_type=args.product_type)
    generation = lm.generate_knowledge([prompt])[0]
    print(f"query:     {args.query!r}")
    print(f"product:   {args.product_type!r} ({args.domain})")
    print(f"knowledge: {generation.text!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-kg", help="run the pipeline and export the KG")
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--scale", type=float, default=0.5,
                       help="world/sampling scale factor (1.0 = default sizes)")
    build.add_argument("--lm-epochs", type=int, default=10)
    build.add_argument("--out", type=str, default="",
                       help="write the KG to this JSONL path")
    build.set_defaults(func=cmd_build_kg)

    inspect = sub.add_parser("inspect-kg", help="summarize an exported KG")
    inspect.add_argument("path")
    inspect.add_argument("--sample", type=int, default=5)
    inspect.set_defaults(func=cmd_inspect_kg)

    generate = sub.add_parser("generate", help="generate knowledge for one behavior")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--scale", type=float, default=0.4)
    generate.add_argument("--lm-epochs", type=int, default=10)
    generate.add_argument("--query", required=True)
    generate.add_argument("--product-type", required=True)
    generate.add_argument("--product-title", default="")
    generate.add_argument("--domain", required=True)
    generate.set_defaults(func=cmd_generate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
