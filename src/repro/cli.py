"""Command-line interface: run the pipeline and export the KG.

Usage::

    python -m repro.cli build-kg --seed 7 --scale 0.5 --out kg.jsonl
    python -m repro.cli inspect-kg kg.jsonl
    python -m repro.cli generate --seed 7 --query "winter camping essentials" \
        --product-type "camping tent" --domain "Sports & Outdoors"
    python -m repro.cli chaos --seed 7 --fault-rate 0.1
    python -m repro.cli obs --seed 7 --out-trace trace.json --out-metrics metrics.json
    python -m repro.cli cluster --seed 7 --replicas 3 --requests 2000
    python -m repro.cli monitor --seed 0 --scenario chaos \
        --out-timeline timeline.json --out-alerts alerts.json --out-events events.jsonl
    python -m repro.cli rollout --seed 0 --scenario poisoned \
        --out-timeline timeline.json --out-alerts alerts.json --out-events events.jsonl
    python -m repro.cli kghealth --seed 0 --scenario poisoned \
        --out-health kg_health.json --out-events events.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.behavior import WorldConfig
from repro.core import CosmoLMConfig, CosmoPipeline, PipelineConfig
from repro.core.kg_io import load_kg, save_kg
from repro.reporting import Table, format_percent

__all__ = ["build_parser", "main"]


def _pipeline_config(seed: int, scale: float, lm_epochs: int) -> PipelineConfig:
    world = WorldConfig(seed=seed).scaled(scale)
    return PipelineConfig(
        seed=seed,
        world=world,
        cobuy_pairs_per_domain=max(10, int(120 * scale)),
        searchbuy_records_per_domain=max(10, int(150 * scale)),
        annotation_budget=max(100, int(1500 * scale)),
        lm=CosmoLMConfig(epochs=lm_epochs),
    )


def cmd_build_kg(args: argparse.Namespace) -> int:
    config = _pipeline_config(args.seed, args.scale, args.lm_epochs)
    print(f"Building the COSMO KG (seed={args.seed}, scale={args.scale})...")
    result = CosmoPipeline(config).run()
    stats = result.kg.stats()
    print(f"KG: {stats.nodes} nodes, {stats.edges} edges, "
          f"{stats.relations} relations, {stats.domains} domains")
    table = Table("Annotated quality", ["Behavior", "Plausibility", "Typicality"])
    for behavior, ratios in sorted(result.quality_ratios.items()):
        table.add_row(behavior, format_percent(ratios["plausibility"]),
                      format_percent(ratios["typicality"]))
    print(table.render())
    if args.out:
        written = save_kg(result.kg, args.out)
        print(f"Wrote {written} edges to {args.out}")
    return 0


def cmd_inspect_kg(args: argparse.Namespace) -> int:
    kg = load_kg(args.path)
    stats = kg.stats()
    print(f"{args.path}: {stats.nodes} nodes, {stats.edges} edges, "
          f"{stats.relations} relations, {stats.domains} domains")
    table = Table("Edges per domain", ["Domain", "co-buy", "search-buy"])
    domains = sorted({t.domain for t in kg.triples()})
    for domain in domains:
        table.add_row(domain, kg.edges_for(domain, "co-buy"),
                      kg.edges_for(domain, "search-buy"))
    print(table.render())
    for triple in kg.triples()[: args.sample]:
        print(f"  {triple.head.split(' ||| ')[0]!r} --{triple.relation.value}--> {triple.tail!r}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    config = _pipeline_config(args.seed, args.scale, args.lm_epochs)
    print("Training COSMO-LM (one pipeline run)...")
    result = CosmoPipeline(config).run()
    lm = result.cosmo_lm
    prompt = lm.searchbuy_prompt(args.query, args.product_title or args.product_type,
                                 args.domain, product_type=args.product_type)
    generation = lm.generate_batch([prompt]).require()[0]
    print(f"query:     {args.query!r}")
    print(f"product:   {args.product_type!r} ({args.domain})")
    print(f"knowledge: {generation.text!r}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.serving.chaos import ChaosConfig, run_chaos, run_outage_demo

    if args.outage_demo:
        service, phases = run_outage_demo(seed=args.seed)
        print("Sustained-outage demo (availability per phase):")
        for name, availability in phases.items():
            print(f"  {name:9s} {availability:.1%}")
        breaker = service.breaker
        print(f"  breaker: {breaker.opens} open(s), {breaker.closes} close(s), "
              f"{breaker.refusals} fast refusal(s), final state {breaker.state.value}")
        print(f"  dead-lettered {service.metrics.dead_lettered}, "
              f"redriven {service.metrics.redriven}")
        return 0

    if not 0.0 <= args.fault_rate <= 1.0:
        print(f"error: --fault-rate must be in [0, 1], got {args.fault_rate}")
        return 2
    config = ChaosConfig(
        fault_rate=args.fault_rate,
        resilience=not args.no_resilience,
        seed=args.seed,
        requests_per_day=args.requests_per_day,
        days=args.days,
    )
    arm = "on" if config.resilience else "off"
    print(f"Chaos simulation: fault rate {config.fault_rate:.0%}, resilience {arm}, "
          f"{config.days} measured day(s) of {config.requests_per_day} requests...")
    report = run_chaos(config)
    table = Table("Chaos simulation — measured window", ["Metric", "Value"])
    table.add_row("Requests", report.requests)
    table.add_row("Availability (valid knowledge)", format_percent(report.availability))
    table.add_row("Served (fresh + degraded)", format_percent(report.served_availability))
    table.add_row("Degraded serves", report.degraded)
    table.add_row("Fallbacks", report.fallbacks)
    table.add_row("Retries", report.retries)
    table.add_row("Generator failures", report.generator_failures)
    table.add_row("Rejected generations", report.rejected_generations)
    table.add_row("Dead-lettered / redriven", f"{report.dead_lettered} / {report.redriven}")
    table.add_row("Breaker opens / closes", f"{report.breaker_opens} / {report.breaker_closes}")
    table.add_row("p50 / p99 latency", f"{report.percentile_ms(50):.1f} / "
                  f"{report.percentile_ms(99):.1f} ms")
    print(table.render())
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Run a small pipeline + one serving day under full observability.

    The trace and metrics artifacts are timed entirely on simulated
    clocks, so two runs with the same seed produce byte-identical files;
    only the wall-clock profile printed at the end differs.
    """
    import json

    import numpy as np

    from repro.obs import (
        MetricsRegistry,
        Tracer,
        WallProfiler,
        chrome_trace,
        render_text,
        snapshot,
        validate_chrome_trace,
        validate_snapshot,
    )
    from repro.serving import CosmoService, ServeRequest
    from repro.utils.rng import spawn_rng

    registry = MetricsRegistry()
    profiler = WallProfiler()

    print(f"Pipeline run under tracing (seed={args.seed}, scale={args.scale})...")
    config = _pipeline_config(args.seed, args.scale, args.lm_epochs)
    pipeline = CosmoPipeline(config, registry=registry, tracer=Tracer())
    with profiler.section("pipeline.run"):
        result = pipeline.run()
    if result.cosmo_lm is None:
        print("error: pipeline produced no COSMO-LM; nothing to serve")
        return 2

    print(f"Serving one simulated day ({args.requests} requests)...")
    service = CosmoService(result.cosmo_lm, registry=registry, name="cosmo")
    world = result.world
    queries = world.queries.broad()
    weights = np.array([q.popularity for q in queries], dtype=float)
    weights /= weights.sum()
    rng = spawn_rng(args.seed, "obs-traffic")
    picks = rng.choice(len(queries), size=args.requests, p=weights)
    traffic = [queries[int(i)].text for i in picks]
    with profiler.section("serving.day"):
        for start in range(0, len(traffic), args.chunk):
            for query in traffic[start : start + args.chunk]:
                service.serve(ServeRequest(query=query))
            service.run_batch()
        service.daily_refresh(refresh_stale=False)

    trace = chrome_trace([("pipeline", pipeline.tracer),
                          ("serving", service.tracer)])
    validate_chrome_trace(trace)
    snap = snapshot(registry)
    validate_snapshot(snap)
    if args.out_trace:
        with open(args.out_trace, "w") as handle:
            handle.write(json.dumps(trace, sort_keys=True, indent=2) + "\n")
        print(f"Wrote Chrome trace to {args.out_trace}")
    if args.out_metrics:
        with open(args.out_metrics, "w") as handle:
            handle.write(json.dumps(snap, sort_keys=True, indent=2) + "\n")
        print(f"Wrote metrics snapshot to {args.out_metrics}")

    print("\npipeline spans (simulated LLM seconds):")
    print(pipeline.tracer.render_tree())
    print("\nserving spans (SimClock seconds):")
    print(service.tracer.render_tree())
    print("\nmetrics:")
    print(render_text(registry))

    metrics = service.metrics
    accounted = metrics.served_fresh + metrics.degraded_serves + metrics.fallbacks
    ok = accounted == metrics.requests
    print(f"\nrequest accounting: served_fresh + degraded + fallbacks = "
          f"{accounted} == requests = {metrics.requests}: {'OK' if ok else 'VIOLATED'}")
    print()
    print(profiler.report())
    return 0 if ok else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    """Drive Zipf traffic through a sharded serving cluster; dump artifacts.

    Runs entirely on simulated clocks with a scripted generator, so two
    invocations with the same arguments produce byte-identical trace and
    metrics files.  The exit code reflects the cluster-wide request
    accounting invariant.
    """
    import json

    import numpy as np

    from repro.obs import (
        MetricsRegistry,
        chrome_trace,
        render_text,
        snapshot,
        validate_chrome_trace,
        validate_snapshot,
    )
    from repro.serving import (
        ClusterConfig,
        CosmoCluster,
        FaultInjector,
        FaultPlan,
        FlakyGenerator,
    )
    from repro.serving.chaos import ScriptedGenerator
    from repro.utils.rng import spawn_rng

    if not 0.0 <= args.fault_rate <= 1.0:
        print(f"error: --fault-rate must be in [0, 1], got {args.fault_rate}")
        return 2

    def scripted_ok(text: str) -> bool:
        return bool(text.strip()) and text.rstrip().endswith(".")

    def factory(index: int):
        generator = ScriptedGenerator()
        if args.fault_rate <= 0.0:
            return generator
        injector = FaultInjector(FaultPlan.mixed(args.fault_rate),
                                 seed=args.seed + index)
        return FlakyGenerator(generator, injector)

    config = ClusterConfig(
        n_replicas=args.replicas,
        max_batch_size=args.max_batch_size,
        max_batch_delay_s=args.max_batch_delay_s,
        max_queue_depth=args.max_queue_depth,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    cluster = CosmoCluster(factory, config=config, registry=registry,
                           response_validator=scripted_ok)

    rng = spawn_rng(args.seed, "cluster-traffic")
    weights = 1.0 / np.arange(1, args.n_queries + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(args.n_queries, size=args.requests, p=weights)
    traffic = [f"query {int(i):03d}" for i in picks]
    gap_s = args.inter_arrival_ms / 1000.0

    print(f"Cluster: {config.n_replicas} replica(s), {args.requests} requests, "
          f"inter-arrival {args.inter_arrival_ms:.2f} ms, "
          f"fault rate {args.fault_rate:.0%}...")
    valid = 0
    for query in traffic:
        result = cluster.handle(query)
        valid += result.text == ScriptedGenerator.knowledge_for(query)
        cluster.clock.advance(gap_s)
    cluster.flush()
    # Horizon before the end-of-day refresh sleeps every clock to the
    # next day boundary — throughput is requests over the drive itself.
    horizon = cluster.busy_horizon_s
    cluster.daily_refresh(refresh_stale=False)

    trace = chrome_trace(
        [("cluster", cluster.tracer)]
        + [(replica_id, service.tracer)
           for replica_id, service in cluster.services.items()]
    )
    validate_chrome_trace(trace)
    snap = snapshot(registry)
    validate_snapshot(snap)
    if args.out_trace:
        with open(args.out_trace, "w") as handle:
            handle.write(json.dumps(trace, sort_keys=True, indent=2) + "\n")
        print(f"Wrote Chrome trace to {args.out_trace}")
    if args.out_metrics:
        with open(args.out_metrics, "w") as handle:
            handle.write(json.dumps(snap, sort_keys=True, indent=2) + "\n")
        print(f"Wrote metrics snapshot to {args.out_metrics}")

    totals = cluster.metrics_totals()
    table = Table("Cluster serving — one simulated drive", ["Metric", "Value"])
    table.add_row("Replicas", config.n_replicas)
    table.add_row("Requests", totals["requests"])
    table.add_row("Availability (served)", format_percent(cluster.availability))
    table.add_row("Correct knowledge", format_percent(valid / max(totals["requests"], 1)))
    table.add_row("Failovers", totals["failovers"])
    table.add_row("Shed (admission control)", totals["shed"])
    table.add_row("p50 / p99 latency",
                  f"{cluster.percentile(50) * 1000:.2f} / "
                  f"{cluster.percentile(99) * 1000:.2f} ms")
    table.add_row("Busy horizon", f"{horizon:.2f} s")
    table.add_row("Throughput", f"{totals['requests'] / horizon:,.0f} req/s"
                  if horizon > 0 else "n/a")
    print(table.render())
    if args.verbose_metrics:
        print(render_text(registry))

    ok = (totals["served_fresh"] + totals["degraded_serves"] + totals["fallbacks"]
          == totals["requests"] == totals["handled"])
    print(f"request accounting: fresh + degraded + fallbacks = "
          f"{totals['served_fresh'] + totals['degraded_serves'] + totals['fallbacks']} "
          f"== requests = {totals['requests']}: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """End-to-end request tracing drive: one trace tree per request.

    Drives Zipf traffic (with fault injection, so retries and degraded
    serves appear) through a sharded cluster with per-request tracing
    on, tail-based sampling deciding which traces survive, exemplars on
    the latency histograms, and every mid-request event stamped with its
    trace id.  Emits two byte-deterministic artifacts — the flow-linked
    Chrome trace and the ``repro.obs.traces/v1`` summary (critical paths
    and per-stage latency breakdowns) — and exits non-zero if any
    tracing invariant fails: a disconnected trace tree, a stage
    breakdown that does not sum to the charged latency, an exemplar that
    resolves to nothing, or broken request accounting.
    """
    import json

    import numpy as np

    from repro.obs import (
        EventLog,
        MetricsRegistry,
        TailSampler,
        TraceAnalyzer,
        chrome_trace,
        render_events,
        trace_summary,
        validate_chrome_trace,
        validate_events,
        validate_trace_summary,
    )
    from repro.serving import (
        ClusterConfig,
        CosmoCluster,
        FaultInjector,
        FaultPlan,
        FlakyGenerator,
    )
    from repro.serving.chaos import ScriptedGenerator
    from repro.utils.rng import spawn_rng

    if not 0.0 <= args.fault_rate <= 1.0:
        print(f"error: --fault-rate must be in [0, 1], got {args.fault_rate}")
        return 2

    def scripted_ok(text: str) -> bool:
        return bool(text.strip()) and text.rstrip().endswith(".")

    def factory(index: int):
        generator = ScriptedGenerator()
        if args.fault_rate <= 0.0:
            return generator
        injector = FaultInjector(FaultPlan.mixed(args.fault_rate),
                                 seed=args.seed + index)
        return FlakyGenerator(generator, injector)

    config = ClusterConfig(
        n_replicas=args.replicas,
        max_batch_size=args.max_batch_size,
        max_batch_delay_s=args.max_batch_delay_s,
        max_queue_depth=args.max_queue_depth,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    sampler = TailSampler(slowest_k=args.slowest_k, window_s=args.window_s,
                          head_every=args.head_every)
    cluster = CosmoCluster(factory, config=config, registry=registry,
                           event_log=event_log, sampler=sampler,
                           response_validator=scripted_ok)
    # Warm the yearly layer for the head of the Zipf distribution so the
    # trace mix includes cache-hit traces, not only miss/degraded ones.
    warm = min(args.warm_queries, args.n_queries)
    cluster.preload_yearly({
        f"query {i:03d}": ScriptedGenerator.knowledge_for(f"query {i:03d}")
        for i in range(warm)
    })

    rng = spawn_rng(args.seed, "trace-traffic")
    weights = 1.0 / np.arange(1, args.n_queries + 1) ** 1.3
    weights /= weights.sum()
    picks = rng.choice(args.n_queries, size=args.requests, p=weights)
    gap_s = args.inter_arrival_ms / 1000.0

    print(f"Tracing drive: {config.n_replicas} replica(s), "
          f"{args.requests} requests, fault rate {args.fault_rate:.0%}, "
          f"tail sampling slowest-{sampler.slowest_k}/"
          f"{sampler.window_s:g}s window, head 1/{sampler.head_every}...")
    for pick in picks:
        cluster.handle(f"query {int(pick):03d}")
        cluster.clock.advance(gap_s)
    cluster.flush()
    sampler.flush()

    tracers = [(config.name, cluster.tracer)] + [
        (replica_id, service.tracer)
        for replica_id, service in cluster.services.items()
    ]
    trace = chrome_trace(tracers)
    validate_chrome_trace(trace)
    analyzer = TraceAnalyzer(tracers)
    summary = trace_summary(analyzer)
    validate_trace_summary(summary)
    events_text = render_events(event_log)
    validate_events(events_text)

    failures: list[str] = []
    totals = cluster.metrics_totals()
    accounted = (totals["served_fresh"] + totals["degraded_serves"]
                 + totals["fallbacks"])
    if not accounted == totals["requests"] == totals["handled"]:
        failures.append(f"request accounting violated: {totals}")
    trace_ids = analyzer.trace_ids()
    if not trace_ids:
        failures.append("no traces retained")
    for trace_id in trace_ids:
        if not analyzer.is_connected(trace_id):
            roots = [node.name for node in analyzer.roots(trace_id)]
            failures.append(f"trace {trace_id} is disconnected: roots {roots}")
        stages = analyzer.stage_breakdown(trace_id)
        duration = analyzer.duration_s(trace_id)
        if abs(sum(stages.values()) - duration) > 1e-9:
            failures.append(
                f"trace {trace_id}: stages sum {sum(stages.values()):.9f} "
                f"!= charged {duration:.9f}")
    exemplars = cluster._latency.exemplars()
    if not exemplars:
        failures.append("latency histogram carries no exemplars")
    retained = set(trace_ids)
    if exemplars and not any(tid in retained for _, tid, _ in exemplars):
        failures.append("no latency exemplar resolves to a retained trace")
    tagged = [e for e in event_log.events() if "trace_id" in e.attrs]
    if not tagged:
        failures.append("no event carries a trace id")

    if args.out_trace:
        with open(args.out_trace, "w") as handle:
            handle.write(json.dumps(trace, sort_keys=True, indent=2) + "\n")
        print(f"Wrote Chrome trace to {args.out_trace}")
    if args.out_summary:
        with open(args.out_summary, "w") as handle:
            handle.write(json.dumps(summary, sort_keys=True, indent=2) + "\n")
        print(f"Wrote trace summary to {args.out_summary}")
    if args.out_events:
        with open(args.out_events, "w") as handle:
            handle.write(events_text)
        print(f"Wrote event log to {args.out_events}")

    table = Table("Request tracing — one simulated drive", ["Metric", "Value"])
    table.add_row("Requests", totals["requests"])
    table.add_row("Availability (served)", format_percent(cluster.availability))
    table.add_row("Traces retained", len(trace_ids))
    table.add_row("Sampler decisions",
                  ", ".join(f"{reason} {count}"
                            for reason, count in sampler.decisions.items()))
    table.add_row("Spans buffered (residual)", sampler.buffered_spans)
    table.add_row("Exemplar buckets", len(exemplars))
    table.add_row("Trace-tagged events", len(tagged))
    print(table.render())

    aggregate = summary["aggregate"]
    stage_table = Table("Where the latency goes (self time across traces)",
                        ["Stage", "Total (ms)", "Traces"])
    for stage, entry in aggregate["stages"].items():
        stage_table.add_row(stage, f"{entry['total_s'] * 1000:.3f}",
                            entry["traces"])
    print(stage_table.render())

    slowest = max(summary["traces"], key=lambda t: (t["duration_s"],
                                                    t["trace_id"]))
    print(f"\nslowest retained trace {slowest['trace_id']} "
          f"({slowest['duration_s'] * 1000:.3f} ms, "
          f"outcome={slowest['outcome']}):")
    for step in slowest["critical_path"]:
        print(f"  {step['process']:>12}  {step['name']:<24} "
              f"self {step['self_s'] * 1000:8.3f} ms  [{step['stage']}]")

    if failures:
        print("\ntracing invariants VIOLATED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ntracing invariants: OK")
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Continuous-monitoring drive: time series, SLO alerts, event log.

    Replays a deterministic three-phase workload (calm → storm →
    recovery) through a sharded cluster while a
    :class:`~repro.obs.timeseries.TimeSeriesCollector` scrapes the
    shared registry on a fixed simulated-time grid and an
    :class:`~repro.obs.slo.SloEvaluator` steps multi-window burn-rate
    alerts after every scrape.  Serving components publish structured
    events (breaker trips, drains, dead-letters, batch flushes) that
    finished alerts cross-reference.

    The ``chaos`` scenario scripts a full generator outage, a cold-query
    flood and a replica drain for the storm phase — at least one SLO
    alert is expected to walk pending → firing → resolved.  The
    ``clean`` scenario keeps faults off and must finish with no alert
    ever firing.  All three artifacts replay byte-identically for fixed
    arguments, and the exit code is 1 when any alert fired, so CI can
    assert each scenario's outcome.
    """
    import json

    import numpy as np

    from repro.obs import (
        BurnRateRule,
        EventLog,
        MetricsRegistry,
        MetricSum,
        SloEvaluator,
        SloSpec,
        TimeSeriesCollector,
        alert_report,
        render_events,
        timeline,
        validate_alert_report,
        validate_events,
        validate_timeline,
    )
    from repro.serving import (
        ClusterConfig,
        CosmoCluster,
        FaultInjector,
        FaultPlan,
        FlakyGenerator,
    )
    from repro.serving.chaos import ScriptedGenerator
    from repro.utils.rng import spawn_rng

    def scripted_ok(text: str) -> bool:
        return bool(text.strip()) and text.rstrip().endswith(".")

    chaos = args.scenario == "chaos"
    calm_plan = FaultPlan()
    storm_plan = FaultPlan(error_rate=1.0) if chaos else calm_plan
    injectors: list[FaultInjector] = []

    def factory(index: int):
        injector = FaultInjector(calm_plan, seed=args.seed + index)
        injectors.append(injector)
        return FlakyGenerator(ScriptedGenerator(), injector)

    config = ClusterConfig(
        n_replicas=args.replicas,
        max_batch_size=args.max_batch_size,
        max_batch_delay_s=args.max_batch_delay_s,
        max_queue_depth=args.max_queue_depth,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    cluster = CosmoCluster(factory, config=config, registry=registry,
                           event_log=event_log, response_validator=scripted_ok)

    warm = [f"query {i:03d}" for i in range(args.n_queries)]
    cold = [f"storm query {i:03d}" for i in range(args.n_queries)]
    cluster.preload_yearly({q: ScriptedGenerator.knowledge_for(q) for q in warm})

    served = ("serving_served_fresh_total", "serving_degraded_serves_total")
    windows = (BurnRateRule(long_s=4 * args.scrape_interval_s,
                            short_s=args.scrape_interval_s,
                            max_burn_rate=10.0),)
    hold = args.scrape_interval_s
    release = 2 * args.scrape_interval_s
    lookback = 5 * args.scrape_interval_s
    specs = [
        SloSpec(
            name="availability",
            description="requests answered with knowledge (fresh or degraded)",
            target=0.99,
            good=MetricSum(served),
            total=MetricSum(served + ("serving_fallbacks_total",)),
            windows=windows,
            for_s=hold, resolve_after_s=release, event_lookback_s=lookback,
        ),
        SloSpec(
            name="latency-p99",
            description=f"end-to-end latency under {args.latency_slo_s:g}s",
            target=0.95,
            good=MetricSum(("cluster_request_latency_seconds",),
                           le=args.latency_slo_s),
            total=MetricSum(("cluster_request_latency_seconds",)),
            windows=windows,
            for_s=hold, resolve_after_s=release, event_lookback_s=lookback,
        ),
        SloSpec(
            name="cache-hit-rate",
            description="lookups answered from a cache layer",
            target=0.50,
            good=MetricSum(("cache_requests_total",),
                           where=(("outcome", ("layer1_hit", "layer2_hit")),)),
            total=MetricSum(("cache_requests_total",)),
            windows=(BurnRateRule(long_s=4 * args.scrape_interval_s,
                                  short_s=args.scrape_interval_s,
                                  max_burn_rate=1.6),),
            for_s=hold, resolve_after_s=release, event_lookback_s=lookback,
        ),
    ]
    evaluator = SloEvaluator(registry, specs, event_log=event_log)
    collector = TimeSeriesCollector(registry, interval_s=args.scrape_interval_s)

    rng = spawn_rng(args.seed, "monitor-traffic")
    weights = 1.0 / np.arange(1, args.n_queries + 1) ** 1.3
    weights /= weights.sum()

    def draw(universe: list[str]) -> list[str]:
        picks = rng.choice(args.n_queries, size=args.requests_per_phase, p=weights)
        return [universe[int(i)] for i in picks]

    # The storm phase floods the cluster with cold (never-cached) queries
    # while every generator hard-fails and one replica is drained; calm
    # and recovery replay warm traffic against healthy generators.
    phases = [
        ("calm", draw(warm), calm_plan, None),
        ("storm", draw(cold if chaos else warm), storm_plan,
         f"{config.name}-r1" if chaos and args.replicas > 1 else None),
        ("recovery", draw(warm), calm_plan, None),
    ]
    gap_s = args.inter_arrival_ms / 1000.0

    print(f"Monitor: scenario {args.scenario}, {config.n_replicas} replica(s), "
          f"{args.requests_per_phase} requests x {len(phases)} phases, "
          f"scrape every {args.scrape_interval_s:g}s...")
    drained: str | None = None
    phase_rows = []
    previous_totals = cluster.metrics_totals()
    for phase_name, traffic, plan, to_drain in phases:
        for injector in injectors:
            injector.plan = plan
        if drained is not None:
            cluster.restore(drained)
            drained = None
        if to_drain is not None:
            cluster.drain(to_drain)
            drained = to_drain
        for query in traffic:
            cluster.handle(query)
            cluster.clock.advance(gap_s)
            for ts in collector.maybe_scrape(cluster.clock.now()):
                evaluator.evaluate(ts)
        totals = cluster.metrics_totals()
        good = (totals["served_fresh"] + totals["degraded_serves"]
                - previous_totals["served_fresh"] - previous_totals["degraded_serves"])
        requests = totals["requests"] - previous_totals["requests"]
        phase_rows.append((phase_name, requests, good / max(requests, 1)))
        previous_totals = totals
    if drained is not None:
        cluster.restore(drained)
    cluster.flush()

    timeline_payload = timeline(collector)
    validate_timeline(timeline_payload)
    report = alert_report(evaluator)
    validate_alert_report(report)
    events_text = render_events(event_log)
    validate_events(events_text)
    if args.out_timeline:
        with open(args.out_timeline, "w") as handle:
            handle.write(json.dumps(timeline_payload, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        print(f"Wrote time-series timeline to {args.out_timeline}")
    if args.out_alerts:
        with open(args.out_alerts, "w") as handle:
            handle.write(json.dumps(report, sort_keys=True, indent=2) + "\n")
        print(f"Wrote alert report to {args.out_alerts}")
    if args.out_events:
        with open(args.out_events, "w") as handle:
            handle.write(events_text)
        print(f"Wrote event log to {args.out_events}")

    table = Table("Monitoring drive — phase availability", ["Phase", "Requests", "Served"])
    for phase_name, requests, availability in phase_rows:
        table.add_row(phase_name, requests, format_percent(availability))
    print(table.render())
    print(f"scrapes: {collector.scrapes}, series: {len(collector.series())}, "
          f"events: {event_log.emitted} emitted / {event_log.dropped} dropped")
    for alert in evaluator.alerts():
        window = (f"pending {alert.pending_ts:g}s"
                  + (f", firing {alert.firing_ts:g}s" if alert.firing_ts is not None else "")
                  + (f", resolved {alert.resolved_ts:g}s"
                     if alert.resolved_ts is not None and alert.state == "resolved" else ""))
        print(f"alert {alert.alert_id}: {alert.state} ({window}; "
              f"peak burn {alert.peak_burn_rate:.1f}x, "
              f"{len(alert.event_ids)} correlated event(s))")

    totals = cluster.metrics_totals()
    accounted = (totals["served_fresh"] + totals["degraded_serves"]
                 + totals["fallbacks"])
    ok = accounted == totals["requests"] == totals["handled"]
    print(f"request accounting: fresh + degraded + fallbacks = {accounted} "
          f"== requests = {totals['requests']}: {'OK' if ok else 'VIOLATED'}")
    fired = evaluator.any_fired
    print(f"SLO verdict: {'ALERTS FIRED' if fired else 'no alerts fired'}")
    return 1 if fired or not ok else 0


def cmd_rollout(args: argparse.Namespace) -> int:
    """Blue/green snapshot rollout drive with SLO-guarded auto-rollback.

    Builds a blue baseline snapshot, installs it cluster-wide, then asks
    a :class:`~repro.refresh.rollout.RolloutController` to roll a green
    child snapshot across the replicas one at a time while Zipf traffic
    flows and the SLO evaluator watches burn rates.  The ``healthy``
    scenario's green snapshot covers every query and the rollout must
    complete with no alert ever firing; the ``poisoned`` scenario's
    green snapshot has an *empty* serving table, so the first replica
    restored onto it burns the availability SLO and the controller must
    roll the cluster back to blue automatically (and re-drive the dead
    letters the poisoned replica accumulated).

    Every request is additionally checked for mixed-version leaks — a
    fresh cache answer whose text belongs to a snapshot other than the
    serving replica's authoritative version.  The exit code is 1 when
    any such answer was served (2 when request accounting broke); both
    scenarios normally exit 0, and CI asserts the scenario outcomes from
    the printed verdicts and the ``rollout.*`` events instead.

    All three artifacts replay byte-identically for fixed arguments.
    """
    import json

    import numpy as np

    from repro.obs import (
        EventLog,
        MetricsRegistry,
        SloEvaluator,
        TimeSeriesCollector,
        alert_report,
        render_events,
        timeline,
        validate_alert_report,
        validate_events,
        validate_timeline,
    )
    from repro.refresh import (
        RolloutController,
        SnapshotGenerator,
        SnapshotQualityGate,
        SnapshotStore,
        build_snapshot,
        mixed_version_violation,
        rollout_slo_specs,
    )
    from repro.serving import ClusterConfig, CosmoCluster
    from repro.utils.rng import spawn_rng

    def scripted_ok(text: str) -> bool:
        return bool(text.strip()) and text.rstrip().endswith(".")

    queries = [f"query {i:03d}" for i in range(args.n_queries)]
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in queries},
                          note="blue baseline")
    if args.scenario == "healthy":
        green = build_snapshot({q: f"it is used for {q} (green)." for q in queries},
                               parent=blue, note="green refresh")
    else:
        # A refresh that lost its serving table: version checks out,
        # content is useless.  The failure the SLO guard exists to catch.
        green = build_snapshot({}, parent=blue, note="poisoned refresh")
    store = SnapshotStore()
    store.add(blue)

    config = ClusterConfig(
        n_replicas=args.replicas,
        max_batch_size=args.max_batch_size,
        max_batch_delay_s=args.max_batch_delay_s,
        max_queue_depth=args.max_queue_depth,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    cluster = CosmoCluster(lambda index: SnapshotGenerator(blue), config=config,
                           registry=registry, event_log=event_log,
                           response_validator=scripted_ok)
    cluster.install_snapshot(blue)

    specs = rollout_slo_specs(args.scrape_interval_s,
                              latency_slo_s=args.latency_slo_s)
    evaluator = SloEvaluator(registry, specs, event_log=event_log)
    collector = TimeSeriesCollector(registry, interval_s=args.scrape_interval_s)
    # Both scenarios' snapshots carry no triples, so the knowledge gate
    # has nothing to drift on and passes; the poisoned scenario's empty
    # *serving table* is exactly what the SLO guard exists to catch.
    gate = SnapshotQualityGate(store, registry=registry)
    controller = RolloutController(cluster, store, green, evaluator,
                                   quality_gate=gate)

    rng = spawn_rng(args.seed, "rollout-traffic")
    weights = 1.0 / np.arange(1, args.n_queries + 1) ** 1.3
    weights /= weights.sum()
    gap_s = args.inter_arrival_ms / 1000.0
    violations = 0

    def drive(n_requests: int, rolling: bool) -> None:
        nonlocal violations
        picks = rng.choice(args.n_queries, size=n_requests, p=weights)
        for pick in picks:
            result = cluster.handle(queries[int(pick)])
            if mixed_version_violation(store, cluster, result):
                violations += 1
            cluster.clock.advance(gap_s)
            for ts in collector.maybe_scrape(cluster.clock.now()):
                evaluator.evaluate(ts)
                if rolling and not controller.done:
                    controller.tick(ts)

    print(f"Rollout: scenario {args.scenario}, {config.n_replicas} replica(s), "
          f"{blue.version} -> {green.version}, scrape every "
          f"{args.scrape_interval_s:g}s...")
    drive(args.requests_per_phase, rolling=False)        # warm: all-blue baseline
    drive(2 * args.requests_per_phase, rolling=True)     # rollout under traffic
    drive(args.requests_per_phase, rolling=False)        # settle: steady state
    cluster.flush()

    timeline_payload = timeline(collector)
    validate_timeline(timeline_payload)
    report = alert_report(evaluator)
    validate_alert_report(report)
    events_text = render_events(event_log)
    validate_events(events_text)
    if args.out_timeline:
        with open(args.out_timeline, "w") as handle:
            handle.write(json.dumps(timeline_payload, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        print(f"Wrote time-series timeline to {args.out_timeline}")
    if args.out_alerts:
        with open(args.out_alerts, "w") as handle:
            handle.write(json.dumps(report, sort_keys=True, indent=2) + "\n")
        print(f"Wrote alert report to {args.out_alerts}")
    if args.out_events:
        with open(args.out_events, "w") as handle:
            handle.write(events_text)
        print(f"Wrote event log to {args.out_events}")

    rollout = controller.report()
    totals = cluster.metrics_totals()
    table = Table("Rollout drive", ["Metric", "Value"])
    table.add_row("Scenario", args.scenario)
    table.add_row("Rollout state", rollout.state)
    table.add_row("Steps executed", len(rollout.steps))
    table.add_row("Requests", totals["requests"])
    table.add_row("Availability (served)", format_percent(cluster.availability))
    table.add_row("Fallbacks", totals["fallbacks"])
    table.add_row("Dead-lettered / redriven",
                  f"{sum(s.metrics.dead_lettered for s in cluster.services.values())}"
                  f" / {sum(s.metrics.redriven for s in cluster.services.values())}")
    table.add_row("Mixed-version answers", violations)
    table.add_row("p50 / p99 latency",
                  f"{cluster.percentile(50) * 1000:.2f} / "
                  f"{cluster.percentile(99) * 1000:.2f} ms")
    print(table.render())
    versions = cluster.snapshot_versions()
    print("replica versions: "
          + ", ".join(f"{r}={v}" for r, v in sorted(versions.items())))
    if rollout.rolled_back:
        print(f"rollback: objective {rollout.rollback_objective} "
              f"(alert {rollout.rollback_alert}), {rollout.redriven} dead "
              f"letter(s) redriven")
    print(f"SLO verdict: {'ALERTS FIRED' if evaluator.any_fired else 'no alerts fired'}")

    accounted = (totals["served_fresh"] + totals["degraded_serves"]
                 + totals["fallbacks"])
    ok = accounted == totals["requests"] == totals["handled"]
    print(f"request accounting: fresh + degraded + fallbacks = {accounted} "
          f"== requests = {totals['requests']}: {'OK' if ok else 'VIOLATED'}")
    print(f"mixed-version answers: {violations} "
          f"({'OK' if violations == 0 else 'VIOLATED'})")
    if not ok:
        return 2
    return 1 if violations else 0


def cmd_kghealth(args: argparse.Namespace) -> int:
    """Knowledge-plane health drive: snapshot drift gating under traffic.

    The inverse failure mode of the ``rollout`` drive.  There, the
    poisoned snapshot has a broken *serving table* and the SLO guard
    catches it; here, both scenarios' green snapshots serve every query
    perfectly — requests stay fast and answered throughout — but the
    ``poisoned`` scenario's *knowledge* is corrupted: every triple
    collapsed onto one relation with cratered plausibility scores, the
    drift signature of a refresh gone wrong.  Serving SLOs cannot see
    that, so the :class:`~repro.refresh.quality.SnapshotQualityGate`
    must block the rollout before the first replica is touched, while
    the ``healthy`` scenario (organic ~8% edge growth, same mix) must
    promote to completion.

    Artifacts: a ``repro.obs.kg_health/v1`` document (parent + candidate
    health, the drift report, the gate decision) and the
    ``repro.obs.events/v1`` log carrying the ``rollout.gate_*`` edges.
    Both replay byte-identically for fixed arguments.  Exit code 2 means
    request accounting broke, 1 means the gate tripped (blocked or
    knowledge-quality rollback) or a mixed-version answer leaked, 0 a
    clean promotion — so healthy exits 0 and poisoned exits 1 by
    construction.
    """
    import json

    import numpy as np

    from repro.core.relations import Relation
    from repro.core.triples import KnowledgeTriple
    from repro.obs import (
        EventLog,
        MetricsRegistry,
        SloEvaluator,
        TimeSeriesCollector,
        kg_health_report,
        render_events,
        validate_events,
        validate_kg_health,
    )
    from repro.refresh import (
        RolloutController,
        SnapshotGenerator,
        SnapshotQualityGate,
        SnapshotStore,
        build_snapshot,
        mixed_version_violation,
        rollout_slo_specs,
    )
    from repro.serving import ClusterConfig, CosmoCluster
    from repro.utils.rng import spawn_rng

    def scripted_ok(text: str) -> bool:
        return bool(text.strip()) and text.rstrip().endswith(".")

    queries = [f"query {i:03d}" for i in range(args.n_queries)]
    relations = (Relation.USED_FOR_FUNC, Relation.CAPABLE_OF, Relation.USED_TO,
                 Relation.USED_FOR_AUD, Relation.USED_WITH)
    domains = ("Apparel", "Electronics", "Grocery", "Home")

    def edges(count: int, offset: int = 0,
              relation_cycle: tuple = relations,
              plaus_base: float = 0.55, plaus_span: float = 0.4) -> list:
        # Deterministic arithmetic, no RNG: the same arguments always
        # produce the same triples, so snapshot versions are stable.
        out = []
        for k in range(offset, offset + count):
            out.append(KnowledgeTriple(
                head=queries[(k // 2) % len(queries)],
                relation=relation_cycle[k % len(relation_cycle)],
                tail=f"intent {k % 23:02d}",
                domain=domains[k % len(domains)],
                behavior="search-buy" if k % 3 else "co-buy",
                plausibility=plaus_base + plaus_span * ((k * 37) % 100) / 100.0,
                typicality=0.45 + 0.5 * ((k * 53) % 100) / 100.0,
                support=1 + k % 3,
            ))
        return out

    blue_triples = edges(2 * args.n_queries)
    blue = build_snapshot({q: f"it is used for {q} (blue)." for q in queries},
                          blue_triples, note="blue baseline")
    green_entries = {q: f"it is used for {q} (green)." for q in queries}
    if args.scenario == "healthy":
        growth = max(4, args.n_queries // 6)
        green = build_snapshot(green_entries,
                               blue_triples + edges(growth,
                                                    offset=2 * args.n_queries),
                               parent=blue, note="green refresh")
    else:
        # The serving table is complete — requests will be answered and
        # no SLO will burn — but the knowledge behind it collapsed onto
        # IS_A with near-zero plausibility.  Only the gate can see this.
        green = build_snapshot(green_entries,
                               edges(2 * args.n_queries,
                                     relation_cycle=(Relation.IS_A,),
                                     plaus_base=0.03, plaus_span=0.0),
                               parent=blue, note="poisoned refresh")
    store = SnapshotStore()
    store.add(blue)

    config = ClusterConfig(
        n_replicas=args.replicas,
        max_batch_size=args.max_batch_size,
        max_batch_delay_s=args.max_batch_delay_s,
        max_queue_depth=args.max_queue_depth,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    event_log = EventLog(registry=registry)
    cluster = CosmoCluster(lambda index: SnapshotGenerator(blue), config=config,
                           registry=registry, event_log=event_log,
                           response_validator=scripted_ok)
    cluster.install_snapshot(blue)

    specs = rollout_slo_specs(args.scrape_interval_s,
                              latency_slo_s=args.latency_slo_s)
    evaluator = SloEvaluator(registry, specs, event_log=event_log)
    collector = TimeSeriesCollector(registry, interval_s=args.scrape_interval_s)
    gate = SnapshotQualityGate(store, registry=registry)
    controller = RolloutController(cluster, store, green, evaluator,
                                   quality_gate=gate)

    rng = spawn_rng(args.seed, "kghealth-traffic")
    weights = 1.0 / np.arange(1, args.n_queries + 1) ** 1.3
    weights /= weights.sum()
    gap_s = args.inter_arrival_ms / 1000.0
    violations = 0

    def drive(n_requests: int, rolling: bool) -> None:
        nonlocal violations
        picks = rng.choice(args.n_queries, size=n_requests, p=weights)
        for pick in picks:
            result = cluster.handle(queries[int(pick)])
            if mixed_version_violation(store, cluster, result):
                violations += 1
            cluster.clock.advance(gap_s)
            for ts in collector.maybe_scrape(cluster.clock.now()):
                evaluator.evaluate(ts)
                if rolling and not controller.done:
                    controller.tick(ts)

    print(f"KG health drive: scenario {args.scenario}, "
          f"{config.n_replicas} replica(s), {blue.version} -> {green.version}, "
          f"scrape every {args.scrape_interval_s:g}s...")
    drive(args.requests_per_phase, rolling=False)        # warm: all-blue baseline
    drive(2 * args.requests_per_phase, rolling=True)     # gated rollout window
    drive(args.requests_per_phase, rolling=False)        # settle: steady state
    cluster.flush()

    decision = gate.assess(green)   # cached from the controller's ticks
    health_doc = kg_health_report(
        [decision.parent_health, decision.health]
        if decision.parent_health is not None else [decision.health],
        drift=[decision.drift] if decision.drift is not None else [],
        gates=[decision],
    )
    validate_kg_health(health_doc)
    events_text = render_events(event_log)
    validate_events(events_text)
    if args.out_health:
        with open(args.out_health, "w") as handle:
            handle.write(json.dumps(health_doc, sort_keys=True, indent=2) + "\n")
        print(f"Wrote kg-health report to {args.out_health}")
    if args.out_events:
        with open(args.out_events, "w") as handle:
            handle.write(events_text)
        print(f"Wrote event log to {args.out_events}")

    rollout = controller.report()
    totals = cluster.metrics_totals()
    parent_health = decision.parent_health
    table = Table("KG health drive", ["Metric", "Value"])
    table.add_row("Scenario", args.scenario)
    table.add_row("Gate verdict", "PROMOTE" if decision.promote else "BLOCK")
    table.add_row("Drift breaches", len(decision.breaches))
    table.add_row("Rollout state", rollout.state)
    table.add_row("Candidate triples / nodes",
                  f"{decision.health.triples} / {decision.health.nodes}")
    if parent_health is not None:
        table.add_row("Parent triples / nodes",
                      f"{parent_health.triples} / {parent_health.nodes}")
    table.add_row("Candidate mean plausibility",
                  f"{decision.health.plausibility.mean:.3f}")
    table.add_row("Requests", totals["requests"])
    table.add_row("Availability (served)", format_percent(cluster.availability))
    table.add_row("Mixed-version answers", violations)
    print(table.render())
    for breach in decision.breaches:
        print(f"drift breach: {breach}")
    versions = cluster.snapshot_versions()
    print("replica versions: "
          + ", ".join(f"{r}={v}" for r, v in sorted(versions.items())))
    gate_tripped = (rollout.blocked
                    or rollout.rollback_objective == "knowledge-quality")
    print(f"gate verdict: {'BLOCK' if gate_tripped else 'PROMOTE'}")
    print(f"SLO verdict: {'ALERTS FIRED' if evaluator.any_fired else 'no alerts fired'}")

    accounted = (totals["served_fresh"] + totals["degraded_serves"]
                 + totals["fallbacks"])
    ok = accounted == totals["requests"] == totals["handled"]
    print(f"request accounting: fresh + degraded + fallbacks = {accounted} "
          f"== requests = {totals['requests']}: {'OK' if ok else 'VIOLATED'}")
    print(f"mixed-version answers: {violations} "
          f"({'OK' if violations == 0 else 'VIOLATED'})")
    if not ok:
        return 2
    return 1 if gate_tripped or violations else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.fix:
        argv.append("--fix")
    if args.no_cache:
        argv.append("--no-cache")
    elif args.cache is not None:
        argv += ["--cache", args.cache]
    if args.cache_stats:
        argv.append("--cache-stats")
    if args.no_baseline:
        argv.append("--no-baseline")
    elif args.baseline is not None:
        argv += ["--baseline", args.baseline]
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-kg", help="run the pipeline and export the KG")
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--scale", type=float, default=0.5,
                       help="world/sampling scale factor (1.0 = default sizes)")
    build.add_argument("--lm-epochs", type=int, default=10)
    build.add_argument("--out", type=str, default="",
                       help="write the KG to this JSONL path")
    build.set_defaults(func=cmd_build_kg)

    inspect = sub.add_parser("inspect-kg", help="summarize an exported KG")
    inspect.add_argument("path")
    inspect.add_argument("--sample", type=int, default=5)
    inspect.set_defaults(func=cmd_inspect_kg)

    generate = sub.add_parser("generate", help="generate knowledge for one behavior")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--scale", type=float, default=0.4)
    generate.add_argument("--lm-epochs", type=int, default=10)
    generate.add_argument("--query", required=True)
    generate.add_argument("--product-type", required=True)
    generate.add_argument("--product-title", default="")
    generate.add_argument("--domain", required=True)
    generate.set_defaults(func=cmd_generate)

    chaos = sub.add_parser(
        "chaos", help="fault-injected serving simulation (resilience ablation)")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--fault-rate", type=float, default=0.1,
                       help="headline injected fault rate (see FaultPlan.mixed)")
    chaos.add_argument("--no-resilience", action="store_true",
                       help="disable retries, circuit breaker and degraded serving")
    chaos.add_argument("--requests-per-day", type=int, default=1500)
    chaos.add_argument("--days", type=int, default=2,
                       help="measured days of traffic (after one warmup day)")
    chaos.add_argument("--outage-demo", action="store_true",
                       help="also run the scripted sustained-outage scenario")
    chaos.set_defaults(func=cmd_chaos)

    obs = sub.add_parser(
        "obs",
        help="run a small pipeline + serving day under tracing; dump artifacts")
    obs.add_argument("--seed", type=int, default=7)
    obs.add_argument("--scale", type=float, default=0.3)
    obs.add_argument("--lm-epochs", type=int, default=4)
    obs.add_argument("--requests", type=int, default=600,
                     help="requests in the simulated serving day")
    obs.add_argument("--chunk", type=int, default=200,
                     help="requests between batch-processing cycles")
    obs.add_argument("--out-trace", type=str, default="",
                     help="write Chrome trace-event JSON here")
    obs.add_argument("--out-metrics", type=str, default="",
                     help="write the metrics snapshot JSON here")
    obs.set_defaults(func=cmd_obs)

    cluster = sub.add_parser(
        "cluster",
        help="drive a sharded multi-replica serving cluster; dump artifacts")
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--replicas", type=int, default=3)
    cluster.add_argument("--requests", type=int, default=2000)
    cluster.add_argument("--n-queries", type=int, default=150,
                         help="distinct queries in the Zipf traffic universe")
    cluster.add_argument("--inter-arrival-ms", type=float, default=1.0,
                         help="offered-load gap between request arrivals")
    cluster.add_argument("--fault-rate", type=float, default=0.0,
                         help="per-replica injected fault rate (FaultPlan.mixed)")
    cluster.add_argument("--max-batch-size", type=int, default=16)
    cluster.add_argument("--max-batch-delay-s", type=float, default=0.25,
                         help="bound on oldest-pending staleness before a "
                              "deadline flush (simulated seconds)")
    cluster.add_argument("--max-queue-depth", type=int, default=500)
    cluster.add_argument("--out-trace", type=str, default="",
                         help="write Chrome trace-event JSON here")
    cluster.add_argument("--out-metrics", type=str, default="",
                         help="write the metrics snapshot JSON here")
    cluster.add_argument("--verbose-metrics", action="store_true",
                         help="also print the full text exposition")
    cluster.set_defaults(func=cmd_cluster)

    trace = sub.add_parser(
        "trace",
        help="end-to-end request tracing drive: trace trees, tail "
             "sampling, exemplars, critical paths")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--replicas", type=int, default=3)
    trace.add_argument("--requests", type=int, default=400)
    trace.add_argument("--n-queries", type=int, default=120,
                       help="distinct query population (Zipf weighted)")
    trace.add_argument("--warm-queries", type=int, default=30,
                       help="Zipf-head queries preloaded into the yearly cache")
    trace.add_argument("--inter-arrival-ms", type=float, default=5.0,
                       help="simulated gap between arrivals")
    trace.add_argument("--fault-rate", type=float, default=0.15,
                       help="per-call generator fault probability")
    trace.add_argument("--slowest-k", type=int, default=3,
                       help="ordinary traces retained per sampling window")
    trace.add_argument("--window-s", type=float, default=60.0,
                       help="tail-sampling window in simulated seconds")
    trace.add_argument("--head-every", type=int, default=25,
                       help="retain every Nth ordinary trace as a baseline")
    trace.add_argument("--max-batch-size", type=int, default=8)
    trace.add_argument("--max-batch-delay-s", type=float, default=0.25)
    trace.add_argument("--max-queue-depth", type=int, default=300)
    trace.add_argument("--out-trace", type=str, default="",
                       help="write the flow-linked Chrome trace JSON here")
    trace.add_argument("--out-summary", type=str, default="",
                       help="write the repro.obs.traces/v1 summary JSON here")
    trace.add_argument("--out-events", type=str, default="",
                       help="write the trace-stamped event log (JSONL) here")
    trace.set_defaults(func=cmd_trace)

    monitor = sub.add_parser(
        "monitor",
        help="continuous-monitoring drive: time series, SLO alerts, event log")
    monitor.add_argument("--seed", type=int, default=7)
    monitor.add_argument("--scenario", choices=("clean", "chaos"), default="chaos",
                         help="chaos scripts an outage + drain storm phase; "
                              "clean keeps faults off")
    monitor.add_argument("--replicas", type=int, default=3)
    monitor.add_argument("--requests-per-phase", type=int, default=600)
    monitor.add_argument("--n-queries", type=int, default=120,
                         help="distinct queries per traffic universe")
    monitor.add_argument("--inter-arrival-ms", type=float, default=5.0)
    monitor.add_argument("--scrape-interval-s", type=float, default=0.5,
                         help="time-series scrape grid (simulated seconds)")
    monitor.add_argument("--latency-slo-s", type=float, default=0.25,
                         help="latency objective threshold (p99-style bound)")
    monitor.add_argument("--max-batch-size", type=int, default=16)
    monitor.add_argument("--max-batch-delay-s", type=float, default=0.25)
    monitor.add_argument("--max-queue-depth", type=int, default=300)
    monitor.add_argument("--out-timeline", type=str, default="",
                         help="write the repro.obs.timeseries/v1 JSON here")
    monitor.add_argument("--out-alerts", type=str, default="",
                         help="write the repro.obs.alerts/v1 JSON here")
    monitor.add_argument("--out-events", type=str, default="",
                         help="write the repro.obs.events/v1 JSONL here")
    monitor.set_defaults(func=cmd_monitor)

    rollout = sub.add_parser(
        "rollout",
        help="blue/green snapshot rollout drive with SLO-guarded rollback")
    rollout.add_argument("--seed", type=int, default=7)
    rollout.add_argument("--scenario", choices=("healthy", "poisoned"),
                         default="healthy",
                         help="healthy rolls a complete green snapshot to "
                              "completion; poisoned rolls an empty one and "
                              "must auto-rollback")
    rollout.add_argument("--replicas", type=int, default=3)
    rollout.add_argument("--requests-per-phase", type=int, default=700,
                         help="requests in the warm and settle phases (the "
                              "rollout phase drives twice this)")
    rollout.add_argument("--n-queries", type=int, default=120,
                         help="distinct queries in the Zipf traffic universe")
    rollout.add_argument("--inter-arrival-ms", type=float, default=5.0)
    rollout.add_argument("--scrape-interval-s", type=float, default=0.5,
                         help="scrape grid; the controller advances one "
                              "rollout step per scrape")
    rollout.add_argument("--latency-slo-s", type=float, default=0.25)
    rollout.add_argument("--max-batch-size", type=int, default=16)
    rollout.add_argument("--max-batch-delay-s", type=float, default=0.25)
    rollout.add_argument("--max-queue-depth", type=int, default=300)
    rollout.add_argument("--out-timeline", type=str, default="",
                         help="write the repro.obs.timeseries/v1 JSON here")
    rollout.add_argument("--out-alerts", type=str, default="",
                         help="write the repro.obs.alerts/v1 JSON here")
    rollout.add_argument("--out-events", type=str, default="",
                         help="write the repro.obs.events/v1 JSONL here")
    rollout.set_defaults(func=cmd_rollout)

    kghealth = sub.add_parser(
        "kghealth",
        help="knowledge-plane health drive: snapshot drift detection "
             "and quality-gated rollout")
    kghealth.add_argument("--seed", type=int, default=7)
    kghealth.add_argument("--scenario", choices=("healthy", "poisoned"),
                          default="healthy",
                          help="healthy rolls an organically-grown snapshot "
                               "to completion; poisoned rolls one whose "
                               "knowledge collapsed (relation mix + critic "
                               "scores) and must be gate-blocked")
    kghealth.add_argument("--replicas", type=int, default=3)
    kghealth.add_argument("--requests-per-phase", type=int, default=500,
                          help="requests in the warm and settle phases (the "
                               "rollout phase drives twice this)")
    kghealth.add_argument("--n-queries", type=int, default=120,
                          help="distinct queries in the Zipf traffic universe")
    kghealth.add_argument("--inter-arrival-ms", type=float, default=5.0)
    kghealth.add_argument("--scrape-interval-s", type=float, default=0.5,
                          help="scrape grid; the controller advances one "
                               "rollout step per scrape")
    kghealth.add_argument("--latency-slo-s", type=float, default=0.25)
    kghealth.add_argument("--max-batch-size", type=int, default=16)
    kghealth.add_argument("--max-batch-delay-s", type=float, default=0.25)
    kghealth.add_argument("--max-queue-depth", type=int, default=300)
    kghealth.add_argument("--out-health", type=str, default="",
                          help="write the repro.obs.kg_health/v1 JSON here")
    kghealth.add_argument("--out-events", type=str, default="",
                          help="write the repro.obs.events/v1 JSONL here")
    kghealth.set_defaults(func=cmd_kghealth)

    lint = sub.add_parser(
        "lint", help="run cosmolint, the repo's static invariant checker")
    lint.add_argument("paths", nargs="*", default=["src", "benchmarks", "examples"],
                      help="files or directories to lint")
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument("--fix", action="store_true",
                      help="apply safe autofixes before linting")
    lint.add_argument("--cache", metavar="PATH", default=None,
                      help="analysis cache file (default .cosmolint-cache.json)")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the incremental analysis cache")
    lint.add_argument("--cache-stats", action="store_true",
                      help="print cache hit/miss counts to stderr")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="baseline file of accepted findings")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
