"""Unified observability layer: metrics, tracing, and profiling.

Three dependency-free parts (DESIGN.md §9):

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges and fixed-bucket streaming histograms (bounded
  memory, percentile estimates without sample lists);
* :mod:`repro.obs.tracing` — a :class:`Tracer` of nested spans timed on
  an *injectable clock callable*, exporting Chrome trace-event JSON;
* :mod:`repro.obs.timebase` — the sole sanctioned wall-clock call site,
  for real-time profiling only.

Exporters live in :mod:`repro.obs.export` (text, JSON snapshot with a
validating schema, Prometheus exposition format).
"""

from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    render_prometheus,
    render_text,
    snapshot,
    validate_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.timebase import WallProfiler, wall_now
from repro.obs.tracing import Span, Tracer, chrome_trace, validate_chrome_trace

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "SNAPSHOT_SCHEMA",
    "snapshot",
    "render_text",
    "render_prometheus",
    "validate_snapshot",
    "WallProfiler",
    "wall_now",
]
