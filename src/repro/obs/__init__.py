"""Unified observability layer: metrics, tracing, and profiling.

Three dependency-free parts (DESIGN.md §9):

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges and fixed-bucket streaming histograms (bounded
  memory, percentile estimates without sample lists);
* :mod:`repro.obs.tracing` — a :class:`Tracer` of nested spans timed on
  an *injectable clock callable*, exporting Chrome trace-event JSON;
* :mod:`repro.obs.timebase` — the sole sanctioned wall-clock call site,
  for real-time profiling only.

Continuous monitoring (DESIGN.md §11) builds on those parts:

* :mod:`repro.obs.timeseries` — a grid-aligned scrape loop turning the
  registry into bounded ring-buffer series (counter rates, gauge points,
  windowed histogram percentiles);
* :mod:`repro.obs.events` — a bounded, byte-deterministic structured
  event log for operational transitions (``repro.obs.events/v1``);
* :mod:`repro.obs.slo` — declarative SLO objectives with multi-window
  burn-rate rules and a pending→firing→resolved alert state machine
  that cross-references event ids.

Knowledge-plane observability (DESIGN.md §14) extends the same
discipline to the data the system serves:

* :mod:`repro.obs.kg_health` — per-snapshot :class:`KgHealthReport`
  computed in one vectorized pass over the KG's columnar arrays, with a
  ``repro.obs.kg_health/v1`` export + validator;
* :mod:`repro.obs.drift` — parent→child distribution-shift scoring
  (Jensen–Shannon mixes, critic-score shift, edge churn) under
  declarative :class:`DriftRule` thresholds.

Exporters live in :mod:`repro.obs.export` (text, JSON snapshot with a
validating schema, Prometheus exposition format).
"""

from repro.obs.drift import (
    DriftBreach,
    DriftReport,
    DriftRule,
    default_drift_rules,
    evaluate_drift,
    js_divergence,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    Event,
    EventLog,
    render_events,
    validate_events,
)
from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    render_prometheus,
    render_text,
    snapshot,
    validate_snapshot,
)
from repro.obs.kg_health import (
    KG_HEALTH_SCHEMA,
    DegreeSummary,
    KgHealthReport,
    ScoreHistogram,
    compute_kg_health,
    funnel_from_registry,
    kg_health_report,
    publish_kg_health,
    validate_kg_health,
)
from repro.obs.slo import (
    ALERTS_SCHEMA,
    Alert,
    BurnRateRule,
    MetricSum,
    SloEvaluator,
    SloSpec,
    alert_report,
    validate_alert_report,
)
from repro.obs.timeseries import (
    TIMELINE_SCHEMA,
    Series,
    TimeSeriesCollector,
    timeline,
    validate_timeline,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.sampling import TailSampler
from repro.obs.timebase import WallProfiler, wall_now
from repro.obs.trace_query import (
    TRACES_SCHEMA,
    PathStep,
    TraceAnalyzer,
    TraceNode,
    stage_for,
    trace_summary,
    validate_trace_summary,
)
from repro.obs.tracing import (
    TRACE_ID_ATTR,
    Span,
    TraceContext,
    Tracer,
    chrome_trace,
    make_trace_id,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "TRACE_ID_ATTR",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "make_trace_id",
    "validate_chrome_trace",
    "TailSampler",
    "TRACES_SCHEMA",
    "PathStep",
    "TraceAnalyzer",
    "TraceNode",
    "stage_for",
    "trace_summary",
    "validate_trace_summary",
    "SNAPSHOT_SCHEMA",
    "snapshot",
    "render_text",
    "render_prometheus",
    "validate_snapshot",
    "WallProfiler",
    "wall_now",
    "EVENTS_SCHEMA",
    "Event",
    "EventLog",
    "render_events",
    "validate_events",
    "TIMELINE_SCHEMA",
    "Series",
    "TimeSeriesCollector",
    "timeline",
    "validate_timeline",
    "ALERTS_SCHEMA",
    "Alert",
    "BurnRateRule",
    "MetricSum",
    "SloSpec",
    "SloEvaluator",
    "alert_report",
    "validate_alert_report",
    "KG_HEALTH_SCHEMA",
    "DegreeSummary",
    "ScoreHistogram",
    "KgHealthReport",
    "compute_kg_health",
    "publish_kg_health",
    "funnel_from_registry",
    "kg_health_report",
    "validate_kg_health",
    "DriftRule",
    "DriftBreach",
    "DriftReport",
    "default_drift_rules",
    "evaluate_drift",
    "js_divergence",
]
