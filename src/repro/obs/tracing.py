"""Span tracing on an injectable clock, with cross-tracer trace context.

A :class:`Tracer` produces nested :class:`Span` context managers and
never reads a clock of its own: ``clock`` is any zero-argument callable
returning seconds.  The serving layer passes ``SimClock.now`` so spans
are timed on simulated time (keeping chaos/bench determinism and the
cosmolint ``wall-clock`` contract); the pipeline passes its simulated
LLM-seconds accumulator.  The only wall-clock timing in the repo lives
in :mod:`repro.obs.timebase`.

Distributed tracing: a request that hops between tracers (cluster →
replica → batcher) carries a :class:`TraceContext`.  While a context is
attached (:meth:`Tracer.attach`), every opened span is tagged with the
context's ``trace_id``, and stack-root spans record the context's
``parent_ref`` — a ``"tracer_name:span_id"`` reference to their remote
parent — so :class:`~repro.obs.trace_query.TraceAnalyzer` can reassemble
one tree across tracers.  Trace ids are deterministic
(:func:`make_trace_id` hashes request sequence + key).

Retention: untraced spans fall under the legacy ``max_spans`` head
truncation; trace-tagged spans are instead buffered into an optional
tail sampler (:class:`~repro.obs.sampling.TailSampler`) that decides
keep/drop per *trace* at completion.  Either way the export never emits
a dangling ``parent_id``: each span remembers its nearest retained
ancestor, and :func:`chrome_trace` clamps to it (or to -1).

Finished traces export as Chrome trace-event JSON (load into
``chrome://tracing`` / Perfetto) via :func:`chrome_trace` — cross-tracer
parent links become flow events (``ph: "s"/"f"``) — or render as an
indented text tree via :meth:`Tracer.render_tree`.
"""

from __future__ import annotations

from zlib import crc32
from typing import TYPE_CHECKING, Callable, Mapping, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.sampling import TailSampler

__all__ = [
    "TRACE_ID_ATTR",
    "Span",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "make_trace_id",
    "validate_chrome_trace",
]

AttrValue = Union[str, int, float, bool]

#: The one sanctioned attribute key under which a span/event carries its
#: trace id.  Serving code never writes this key by hand — trace ids
#: flow through :meth:`Tracer.attach` and ``EventLog.trace_scope``, and
#: the cosmolint ``trace-id-contract`` rule rejects ad-hoc variants.
TRACE_ID_ATTR = "trace_id"


def _zero_clock() -> float:
    return 0.0


def make_trace_id(sequence: int, key: str) -> str:
    """Deterministic 16-hex-char trace id for one request.

    The low half is a CRC-32 of the query key (readable correlation —
    the same query always shares a suffix); the high half is the
    request's global sequence number, which alone guarantees uniqueness.
    Stable across runs, no wall-clock or RNG state, and cheap enough to
    mint per request (one id per traced request; ``bench_trace_overhead``
    pins the budget — a crypto hash here costs ~4% of the request path).
    """
    return "%016x" % ((sequence & 0xFFFFFFFF) << 32 | crc32(key.encode("utf-8")))


class TraceContext:
    """Propagated request identity: trace id + remote parent span ref.

    ``parent_ref`` is a ``"tracer_name:span_id"`` string naming the span
    (in another tracer) under which this hop's root spans should hang;
    None for the trace's origin hop.  Immutable by convention; a plain
    ``__slots__`` class (not a frozen dataclass) because two are minted
    per traced request and frozen-dataclass construction costs ~2x.
    """

    __slots__ = ("trace_id", "parent_ref")

    def __init__(self, trace_id: str, parent_ref: str | None = None):
        self.trace_id = trace_id
        self.parent_ref = parent_ref

    def __repr__(self) -> str:
        return f"TraceContext(trace_id={self.trace_id!r}, parent_ref={self.parent_ref!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (self.trace_id == other.trace_id
                and self.parent_ref == other.parent_ref)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.parent_ref))

    def child(self, parent_ref: str) -> "TraceContext":
        """The context to hand downstream, parented under ``parent_ref``."""
        return TraceContext(self.trace_id, parent_ref)


class Span:
    """One timed operation: name, parentage, attributes, error tag.

    ``export_parent_id`` is the nearest *retained* same-tracer ancestor
    (falls back to ``parent_id``); ``remote_parent`` is the cross-tracer
    parent ref a context-attached stack-root span inherited.

    A span is its own context manager: :meth:`Tracer.span` opens it (the
    open happens at the call, not at ``__enter__``) and the ``with``
    block's exit closes it.  Hand-rolled ``__slots__`` rather than a
    dataclass/contextlib pairing — span open/close sits on the
    per-request hot path six times over, and ``bench_trace_overhead``
    pins the traced/bare ratio.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_s", "depth",
                 "end_s", "attributes", "status", "error_type", "trace_id",
                 "remote_parent", "export_parent_id", "retained", "_tracer")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 start_s: float, depth: int,
                 end_s: float | None = None,
                 attributes: dict[str, AttrValue] | None = None,
                 status: str = "ok", error_type: str | None = None,
                 trace_id: str | None = None,
                 remote_parent: str | None = None,
                 export_parent_id: int | None = None,
                 retained: bool = True):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.depth = depth
        self.end_s = end_s
        self.attributes = {} if attributes is None else attributes
        self.status = status
        self.error_type = error_type
        self.trace_id = trace_id
        self.remote_parent = remote_parent
        self.export_parent_id = export_parent_id
        self.retained = retained
        self._tracer: "Tracer | None" = None

    def __repr__(self) -> str:
        return (f"Span(name={self.name!r}, span_id={self.span_id}, "
                f"parent_id={self.parent_id}, start_s={self.start_s}, "
                f"end_s={self.end_s}, trace_id={self.trace_id!r}, "
                f"status={self.status!r})")

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def set_attribute(self, key: str, value: AttrValue) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.error_type = exc_type.__name__
        tracer = self._tracer
        self.end_s = tracer.clock()
        tracer._stack.pop()
        return False


class _Attachment:
    """Enter/exit handle returned by :meth:`Tracer.attach`.

    Optionally swaps the tracer's clock for the scope's duration too
    (``Tracer.attach(context, clock=...)``) — one handle, one
    enter/exit, instead of stacking ``attach`` and ``clocked``.
    """

    __slots__ = ("_tracer", "_context", "_clock", "_previous", "_previous_clock")

    def __init__(self, tracer: "Tracer", context: TraceContext,
                 clock: Callable[[], float] | None = None):
        self._tracer = tracer
        self._context = context
        self._clock = clock
        self._previous: TraceContext | None = None
        self._previous_clock: Callable[[], float] | None = None

    def __enter__(self) -> "Tracer":
        tracer = self._tracer
        self._previous = tracer._context
        tracer._context = self._context
        if self._clock is not None:
            self._previous_clock = tracer.clock
            tracer.clock = self._clock
        return tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        tracer._context = self._previous
        if self._clock is not None:
            tracer.clock = self._previous_clock
        return False


class _ClockOverride:
    """Enter/exit handle returned by :meth:`Tracer.clocked`."""

    __slots__ = ("_tracer", "_clock", "_previous")

    def __init__(self, tracer: "Tracer", clock: Callable[[], float]):
        self._tracer = tracer
        self._clock = clock
        self._previous: Callable[[], float] | None = None

    def __enter__(self) -> "Tracer":
        tracer = self._tracer
        self._previous = tracer.clock
        tracer.clock = self._clock
        return tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.clock = self._previous
        return False


class Tracer:
    """Builds nested spans; bounded memory via ``max_spans`` or a sampler.

    Untraced spans beyond ``max_spans`` still time correctly and
    participate in nesting, but are not retained (``dropped`` counts
    them) — tracing a long-running service never grows without bound.
    Trace-tagged spans (opened while a :class:`TraceContext` is
    attached) go through ``sampler`` when one is set: the whole trace is
    kept or dropped at completion (tail-based sampling) instead of being
    head-truncated mid-request.

    ``name`` identifies this tracer in cross-tracer span refs and must
    be unique among tracers merged into one trace/export.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 max_spans: int = 10_000, name: str = "tracer",
                 sampler: "TailSampler | None" = None):
        self.clock: Callable[[], float] = clock if clock is not None else _zero_clock
        self.max_spans = max_spans
        self.name = name
        self.sampler = sampler
        self.dropped = 0
        self._spans: list[Span] = []  # retained spans, in start order
        self._stack: list[Span] = []
        self._next_id = 1
        self._context: TraceContext | None = None

    # -- trace-context propagation --------------------------------------
    @property
    def active_context(self) -> TraceContext | None:
        """The currently attached :class:`TraceContext`, if any."""
        return self._context

    def attach(self, context: TraceContext,
               clock: Callable[[], float] | None = None) -> _Attachment:
        """Tag spans opened inside with ``context``'s trace id.

        Stack-root spans opened while attached additionally record the
        context's ``parent_ref`` as their remote parent, linking this
        tracer's subtree under the upstream span.  ``clock`` additionally
        retimes spans for the scope (equivalent to nesting
        :meth:`clocked`, one context manager cheaper).
        """
        return _Attachment(self, context, clock)

    def ref(self, span: Span) -> str:
        """The cross-tracer reference naming ``span`` in this tracer."""
        return f"{self.name}:{span.span_id}"

    # -- span construction ----------------------------------------------
    def _open(self, name: str, start_s: float,
              attributes: dict[str, AttrValue],
              parent: Span | None) -> Span:
        # Direct __new__ + attribute sets: this constructor runs for
        # every span of every traced request, and skipping __init__'s
        # parameter binding is a measurable slice of the traced/bare
        # ratio pinned by bench_trace_overhead.
        record = Span.__new__(Span)
        record.name = name
        record.span_id = self._next_id
        record.start_s = start_s
        record.end_s = None
        record.attributes = attributes
        record.status = "ok"
        record.error_type = None
        record.trace_id = None
        record.remote_parent = None
        record.retained = True
        record._tracer = None
        if parent is not None:
            record.parent_id = parent.span_id
            record.depth = parent.depth + 1
            record.export_parent_id = (parent.span_id if parent.retained
                                       else parent.export_parent_id)
        else:
            record.parent_id = None
            record.depth = 0
            record.export_parent_id = None
        self._next_id += 1
        context = self._context
        if context is not None:
            record.trace_id = context.trace_id
            if parent is None:
                record.remote_parent = context.parent_ref
        sampler = self.sampler
        if record.trace_id is not None and sampler is not None:
            # Tail sampling: tentatively retained, buffered until the
            # trace finishes and the sampler decides keep/drop.  The
            # buffer fast path is inlined (equivalent to
            # ``sampler.buffer(self, record)``) — a call per span is a
            # measurable slice of the bench_trace_overhead budget.
            if sampler._buffered_spans < sampler.max_buffered_spans:
                buffers = sampler._buffers
                entries = buffers.get(record.trace_id)
                if entries is None:
                    buffers[record.trace_id] = [(self, record)]
                else:
                    entries.append((self, record))
                sampler._buffered_spans += 1
            else:
                sampler.overflow += 1
                self.dropped += 1
                record.retained = False
        elif len(self._spans) < self.max_spans:
            self._spans.append(record)
        else:
            self.dropped += 1
            record.retained = False
        return record

    def _commit(self, record: Span) -> None:
        """Sampler callback: the record's trace was kept."""
        if len(self._spans) < self.max_spans:
            self._spans.append(record)
        else:
            self.dropped += 1
            record.retained = False

    def _discard(self, record: Span) -> None:
        """Sampler callback: the record's trace was sampled out."""
        self.dropped += 1
        record.retained = False

    def span(self, name: str, **attributes: AttrValue) -> Span:
        """Open a child span of the current span (or a root span).

        The span opens *now* — use the return value as a context manager
        immediately (``with tracer.span(...) as s:``); the block's exit
        closes it.
        """
        stack = self._stack
        record = self._open(name, self.clock(), attributes,
                            stack[-1] if stack else None)
        record._tracer = self
        stack.append(record)
        return record

    def record(self, name: str, start_s: float, end_s: float,
               parent: Span | None = None,
               **attributes: AttrValue) -> Span:
        """Append a completed span with explicit timestamps.

        For retroactive spans whose window is known only after the fact
        (e.g. queueing delay computed at dispatch).  ``parent`` overrides
        stack parentage; with no parent and no open span it is a root.
        """
        if end_s < start_s:
            raise ValueError(f"span {name!r} ends ({end_s}) before it "
                             f"starts ({start_s})")
        record = self._open(
            name, float(start_s), dict(attributes),
            parent if parent is not None
            else (self._stack[-1] if self._stack else None),
        )
        record.end_s = float(end_s)
        return record

    def clocked(self, clock: Callable[[], float]) -> _ClockOverride:
        """Temporarily time spans on a different clock callable."""
        return _ClockOverride(self, clock)

    def spans(self) -> list[Span]:
        return list(self._spans)

    def render_tree(self) -> str:
        """Indented text rendering of the retained spans."""
        lines = []
        for span in self._spans:
            attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            status = "" if span.status == "ok" else f" !{span.status}:{span.error_type}"
            lines.append(
                f"{'  ' * span.depth}{span.name}  {span.duration_s * 1000:.3f}ms"
                + (f"  [{attrs}]" if attrs else "") + status
            )
        if self.dropped:
            lines.append(f"... {self.dropped} span(s) dropped (max_spans={self.max_spans})")
        return "\n".join(lines)


def chrome_trace(tracers: Sequence[tuple[str, Tracer]]) -> dict:
    """Merge tracers into one Chrome trace-event JSON payload.

    Each ``(process_name, tracer)`` pair becomes one pid so timelines
    with different clocks (pipeline simulated seconds vs serving
    SimClock) render side by side without sharing an axis.  Complete
    ("X") events carry span attributes, ids, trace ids and error status
    in ``args``; ``parent_id`` is clamped to the nearest retained
    ancestor (or -1) so it always resolves.  Cross-tracer parent refs
    export as flow-event pairs (``ph: "s"`` at the parent, ``ph: "f"``
    at the child) linking the request across pids.  Output is
    deterministic for deterministic span times.
    """
    refs: dict[str, tuple[int, Span]] = {}
    retained_ids: list[set[int]] = []
    for pid, (process, tracer) in enumerate(tracers, start=1):
        ids = {span.span_id for span in tracer.spans() if span.end_s is not None}
        retained_ids.append(ids)
        for span in tracer.spans():
            if span.end_s is not None:
                refs[f"{tracer.name}:{span.span_id}"] = (pid, span)
    events: list[dict] = []
    flows: list[dict] = []
    flow_id = 0
    for pid, (process, tracer) in enumerate(tracers, start=1):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": process},
        })
        ids = retained_ids[pid - 1]
        for span in tracer.spans():
            if span.end_s is None:
                continue
            parent = span.export_parent_id
            if parent is None:
                parent = span.parent_id
            if parent is None or parent not in ids:
                parent = -1
            args: dict[str, AttrValue] = {
                "span_id": span.span_id,
                "parent_id": parent,
                "status": span.status,
            }
            if span.error_type is not None:
                args["error_type"] = span.error_type
            if span.trace_id is not None:
                args[TRACE_ID_ATTR] = span.trace_id
            args.update(span.attributes)
            events.append({
                "name": span.name,
                "cat": process,
                "ph": "X",
                "ts": span.start_s * 1e6,  # microseconds
                "dur": (span.end_s - span.start_s) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            })
            if span.remote_parent is not None:
                linked = refs.get(span.remote_parent)
                if linked is not None:
                    parent_pid, parent_span = linked
                    flow_id += 1
                    flows.append({
                        "name": "trace", "cat": "trace", "ph": "s",
                        "id": flow_id, "pid": parent_pid, "tid": 1,
                        "ts": parent_span.start_s * 1e6,
                    })
                    flows.append({
                        "name": "trace", "cat": "trace", "ph": "f",
                        "bp": "e", "id": flow_id, "pid": pid, "tid": 1,
                        "ts": span.start_s * 1e6,
                    })
    return {"displayTimeUnit": "ms", "traceEvents": events + flows}


def _require_int(where: str, key: str, value: object) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{where}: {key!r} must be an integer")
    return value


def validate_chrome_trace(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a structurally
    valid Chrome trace-event document as produced by :func:`chrome_trace`.

    Beyond shape checks this enforces referential integrity: within each
    pid, ``args.span_id`` values are unique and every ``args.parent_id``
    is -1 or names a span event in the same pid; flow start/finish
    events pair up by id.  Booleans masquerading as ints (``pid``,
    ``tid``, ``ts``...) and negative timestamps are rejected.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must have a 'traceEvents' list")
    span_ids: dict[int, set[int]] = {}
    parent_refs: list[tuple[str, int, int]] = []
    flow_phases: dict[int, set[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            raise ValueError(f"{where}: event must be an object")
        phase = event.get("ph")
        if phase not in ("M", "X", "s", "f"):
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        pid = _require_int(where, "pid", event.get("pid"))
        _require_int(where, "tid", event.get("tid"))
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: 'name' must be a string")
        if not isinstance(event.get("args", {}), Mapping):
            raise ValueError(f"{where}: 'args' must be an object")
        if phase in ("X", "s", "f"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool):
                raise ValueError(f"{where}: 'ts' must be a number")
            if ts < 0:
                raise ValueError(f"{where}: 'ts' must be non-negative")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                raise ValueError(f"{where}: 'dur' must be a number")
            if dur < 0:
                raise ValueError(f"{where}: 'dur' must be non-negative")
            args = event.get("args", {})
            if "span_id" in args:
                span_id = _require_int(where, "args.span_id", args["span_id"])
                if span_id < 1:
                    raise ValueError(f"{where}: 'args.span_id' must be positive")
                pid_ids = span_ids.setdefault(pid, set())
                if span_id in pid_ids:
                    raise ValueError(
                        f"{where}: duplicate span_id {span_id} in pid {pid}")
                pid_ids.add(span_id)
            if "parent_id" in args:
                parent = _require_int(where, "args.parent_id", args["parent_id"])
                if parent != -1:
                    parent_refs.append((where, pid, parent))
        elif phase in ("s", "f"):
            flow = _require_int(where, "id", event.get("id"))
            flow_phases.setdefault(flow, set()).add(phase)
    for where, pid, parent in parent_refs:
        if parent not in span_ids.get(pid, set()):
            raise ValueError(
                f"{where}: parent_id {parent} does not resolve to any "
                f"span_id in pid {pid}")
    for flow, phases in flow_phases.items():
        if phases != {"s", "f"}:
            raise ValueError(
                f"flow id {flow} must have exactly a start ('s') and a "
                f"finish ('f') event, got phases {sorted(phases)}")
