"""Span tracing on an injectable clock.

A :class:`Tracer` produces nested :class:`Span` context managers and
never reads a clock of its own: ``clock`` is any zero-argument callable
returning seconds.  The serving layer passes ``SimClock.now`` so spans
are timed on simulated time (keeping chaos/bench determinism and the
cosmolint ``wall-clock`` contract); the pipeline passes its simulated
LLM-seconds accumulator.  The only wall-clock timing in the repo lives
in :mod:`repro.obs.timebase`.

Finished traces export as Chrome trace-event JSON (load into
``chrome://tracing`` / Perfetto) via :func:`chrome_trace`, or render as
an indented text tree via :meth:`Tracer.render_tree`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence, Union

__all__ = ["Span", "Tracer", "chrome_trace", "validate_chrome_trace"]

AttrValue = Union[str, int, float, bool]


def _zero_clock() -> float:
    return 0.0


@dataclass
class Span:
    """One timed operation: name, parentage, attributes, error tag."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    depth: int
    end_s: float | None = None
    attributes: dict[str, AttrValue] = field(default_factory=dict)
    status: str = "ok"
    error_type: str | None = None

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def set_attribute(self, key: str, value: AttrValue) -> None:
        self.attributes[key] = value


class Tracer:
    """Builds nested spans; bounded memory via ``max_spans``.

    Spans beyond ``max_spans`` still time correctly and participate in
    nesting, but are not retained (``dropped`` counts them) — tracing a
    long-running service never grows without bound.
    """

    def __init__(self, clock: Callable[[], float] | None = None,
                 max_spans: int = 10_000):
        self.clock: Callable[[], float] = clock if clock is not None else _zero_clock
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: list[Span] = []  # retained spans, in start order
        self._stack: list[Span] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attributes: AttrValue) -> Iterator[Span]:
        """Open a child span of the current span (or a root span)."""
        record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=float(self.clock()),
            depth=len(self._stack),
            attributes=dict(attributes),
        )
        self._next_id += 1
        if len(self._spans) < self.max_spans:
            self._spans.append(record)
        else:
            self.dropped += 1
        self._stack.append(record)
        try:
            yield record
        except BaseException as error:
            record.status = "error"
            record.error_type = type(error).__name__
            raise
        finally:
            record.end_s = float(self.clock())
            self._stack.pop()

    @contextmanager
    def clocked(self, clock: Callable[[], float]) -> Iterator["Tracer"]:
        """Temporarily time spans on a different clock callable."""
        previous, self.clock = self.clock, clock
        try:
            yield self
        finally:
            self.clock = previous

    def spans(self) -> list[Span]:
        return list(self._spans)

    def render_tree(self) -> str:
        """Indented text rendering of the retained spans."""
        lines = []
        for span in self._spans:
            attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            status = "" if span.status == "ok" else f" !{span.status}:{span.error_type}"
            lines.append(
                f"{'  ' * span.depth}{span.name}  {span.duration_s * 1000:.3f}ms"
                + (f"  [{attrs}]" if attrs else "") + status
            )
        if self.dropped:
            lines.append(f"... {self.dropped} span(s) dropped (max_spans={self.max_spans})")
        return "\n".join(lines)


def chrome_trace(tracers: Sequence[tuple[str, Tracer]]) -> dict:
    """Merge tracers into one Chrome trace-event JSON payload.

    Each ``(process_name, tracer)`` pair becomes one pid so timelines
    with different clocks (pipeline simulated seconds vs serving
    SimClock) render side by side without sharing an axis.  Complete
    ("X") events carry span attributes, ids and error status in
    ``args``.  Output is deterministic for deterministic span times.
    """
    events: list[dict] = []
    for pid, (process, tracer) in enumerate(tracers, start=1):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": process},
        })
        for span in tracer.spans():
            if span.end_s is None:
                continue
            args: dict[str, AttrValue] = {
                "span_id": span.span_id,
                "parent_id": -1 if span.parent_id is None else span.parent_id,
                "status": span.status,
            }
            if span.error_type is not None:
                args["error_type"] = span.error_type
            args.update(span.attributes)
            events.append({
                "name": span.name,
                "cat": process,
                "ph": "X",
                "ts": span.start_s * 1e6,  # microseconds
                "dur": (span.end_s - span.start_s) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            })
    return {"displayTimeUnit": "ms", "traceEvents": events}


def validate_chrome_trace(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a structurally
    valid Chrome trace-event document as produced by :func:`chrome_trace`."""
    if not isinstance(payload, Mapping):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must have a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            raise ValueError(f"{where}: event must be an object")
        phase = event.get("ph")
        if phase not in ("M", "X"):
            raise ValueError(f"{where}: unsupported phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: 'name' must be a string")
        if not isinstance(event.get("args", {}), Mapping):
            raise ValueError(f"{where}: 'args' must be an object")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"{where}: {key!r} must be a number")
            if event["dur"] < 0:
                raise ValueError(f"{where}: 'dur' must be non-negative")
