"""Cross-tracer trace assembly, critical-path and stage analysis.

The serving stack traces one request across several tracers: the cluster
times arrival/queueing on the arrival clock, each replica times its
serve/batch work on its own clock (the clocks share an epoch, so the
timelines compose).  :class:`TraceAnalyzer` reassembles those fragments
by trace id — same-tracer parentage via ``parent_id``, cross-tracer
parentage via ``remote_parent`` refs — into one tree per trace, then
answers the questions latency work needs:

* :meth:`TraceAnalyzer.critical_path` — the chain of spans that carried
  the request's latency, each step with its *self time* (duration minus
  time covered by its children, clipped to its ancestors' window);
* :meth:`TraceAnalyzer.stage_breakdown` — self time bucketed into
  serving stages (queueing / cache / generation / retry / degradation /
  batch / other).  Because spans nest and children are clipped to their
  parents, the stage totals sum to the root span's duration — i.e. to
  the latency the request was actually charged.  Post-request async work
  (batch flushes the request triggered) is attributed to the trace but
  clips to zero inside the charged window;
* :meth:`TraceAnalyzer.aggregate` — per-stage totals across traces, the
  "where do the milliseconds go" table.

:func:`trace_summary` renders the analysis as a deterministic JSON
payload (schema ``repro.obs.traces/v1``) and
:func:`validate_trace_summary` checks it structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.obs.tracing import Span, Tracer

__all__ = [
    "TRACES_SCHEMA",
    "PathStep",
    "TraceAnalyzer",
    "TraceNode",
    "stage_for",
    "trace_summary",
    "validate_trace_summary",
]

TRACES_SCHEMA = "repro.obs.traces/v1"

#: Span-name prefix → serving stage, first match wins.
_STAGE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("cluster.queueing", "queueing"),
    ("cluster.flush", "batch"),
    ("serving.run_batch", "batch"),
    ("cache.", "cache"),
    ("serving.cache", "cache"),
    ("serving.degraded", "degradation"),
    ("serving.fallback", "degradation"),
    ("resilience.backoff", "retry"),
    ("resilience.attempt", "generation"),
    ("serving.generate", "generation"),
    ("router.", "routing"),
)


def stage_for(name: str) -> str:
    """The serving stage a span name belongs to (``"other"`` if none)."""
    for prefix, stage in _STAGE_PREFIXES:
        if name.startswith(prefix):
            return stage
    return "other"


@dataclass
class TraceNode:
    """One span placed in its trace's tree."""

    process: str
    ref: str
    span: Span
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    @property
    def start_s(self) -> float:
        return self.span.start_s

    @property
    def end_s(self) -> float:
        return self.span.end_s if self.span.end_s is not None else self.span.start_s


@dataclass(frozen=True)
class PathStep:
    """One hop on a trace's critical path."""

    ref: str
    name: str
    process: str
    start_s: float
    duration_s: float
    self_s: float
    stage: str


class TraceAnalyzer:
    """Assembled view over the traces retained by a set of tracers.

    ``tracers`` are ``(process_name, tracer)`` pairs exactly as passed
    to :func:`~repro.obs.tracing.chrome_trace`; tracer names must be
    unique because cross-tracer refs resolve through them.
    """

    def __init__(self, tracers: Sequence[tuple[str, Tracer]]):
        names = [tracer.name for _, tracer in tracers]
        if len(set(names)) != len(names):
            raise ValueError(f"tracer names must be unique, got {names}")
        self._traces: dict[str, list[TraceNode]] = {}
        nodes_by_ref: dict[str, TraceNode] = {}
        for process, tracer in tracers:
            for span in tracer.spans():
                if span.trace_id is None or span.end_s is None:
                    continue
                node = TraceNode(process=process, ref=tracer.ref(span),
                                 span=span)
                nodes_by_ref[node.ref] = node
                self._traces.setdefault(span.trace_id, []).append(node)
        self._roots: dict[str, list[TraceNode]] = {}
        for trace_id, nodes in self._traces.items():
            in_trace = {node.ref for node in nodes}
            for node in nodes:
                parent_ref = node.span.remote_parent
                if parent_ref is None and node.span.parent_id is not None:
                    tracer_name = node.ref.rsplit(":", 1)[0]
                    parent_ref = f"{tracer_name}:{node.span.parent_id}"
                if parent_ref is not None and parent_ref in in_trace:
                    nodes_by_ref[parent_ref].children.append(node)
                else:
                    self._roots.setdefault(trace_id, []).append(node)
            for node in nodes:
                node.children.sort(key=lambda c: (c.start_s, c.ref))
            self._roots[trace_id].sort(key=lambda n: (n.start_s, n.ref))

    # ------------------------------------------------------------------
    def trace_ids(self) -> list[str]:
        """Retained trace ids, ordered by root start time then id."""
        return sorted(self._traces,
                      key=lambda t: (self._roots[t][0].start_s, t))

    def spans_for(self, trace_id: str) -> list[TraceNode]:
        return list(self._traces[trace_id])

    def roots(self, trace_id: str) -> list[TraceNode]:
        return list(self._roots[trace_id])

    def is_connected(self, trace_id: str) -> bool:
        """True when every span hangs off one single root."""
        return len(self._roots[trace_id]) == 1

    def root(self, trace_id: str) -> TraceNode:
        return self._roots[trace_id][0]

    # ------------------------------------------------------------------
    def _walk(self, node: TraceNode, window: tuple[float, float],
              stages: dict[str, float] | None,
              path: list[PathStep] | None) -> float:
        """Clipped duration of ``node``; accumulates self-times.

        ``window`` is the enclosing ancestors' interval; every span is
        clipped to it so async overhang (batch work charged after the
        request's latency window) never inflates the breakdown.
        """
        lo = max(node.start_s, window[0])
        hi = max(min(node.end_s, window[1]), lo)
        clipped = hi - lo
        covered = 0.0
        best: TraceNode | None = None
        best_duration = -1.0
        for child in node.children:
            child_clipped = self._walk(child, (lo, hi), stages, None)
            covered += child_clipped
            if child_clipped > best_duration:
                best, best_duration = child, child_clipped
        self_s = max(clipped - covered, 0.0)
        if stages is not None:
            stages[stage_for(node.name)] = (
                stages.get(stage_for(node.name), 0.0) + self_s)
        if path is not None:
            path.append(PathStep(
                ref=node.ref, name=node.name, process=node.process,
                start_s=lo, duration_s=clipped, self_s=self_s,
                stage=stage_for(node.name),
            ))
            if best is not None and best_duration > 0.0:
                self._walk(best, (lo, hi), None, path)
        return clipped

    def duration_s(self, trace_id: str) -> float:
        """The charged window: the (first) root span's duration."""
        root = self.root(trace_id)
        return root.end_s - root.start_s

    def stage_breakdown(self, trace_id: str) -> dict[str, float]:
        """Self time per stage; sums to :meth:`duration_s` for a
        connected trace (children clip to their parents' window)."""
        stages: dict[str, float] = {}
        for root in self._roots[trace_id]:
            self._walk(root, (root.start_s, root.end_s), stages, None)
        return stages

    def critical_path(self, trace_id: str) -> list[PathStep]:
        """Root-to-leaf chain following the child with the largest
        clipped duration at every level."""
        path: list[PathStep] = []
        root = self.root(trace_id)
        self._walk(root, (root.start_s, root.end_s), None, path)
        return path

    def aggregate(self) -> dict:
        """Per-stage self-time totals and span counts across all traces."""
        totals: dict[str, dict[str, float]] = {}
        span_count = 0
        for trace_id, nodes in self._traces.items():
            span_count += len(nodes)
            for stage, seconds in self.stage_breakdown(trace_id).items():
                entry = totals.setdefault(stage, {"total_s": 0.0, "traces": 0})
                entry["total_s"] += seconds
                entry["traces"] += 1
        return {"traces": len(self._traces), "spans": span_count,
                "stages": {stage: totals[stage] for stage in sorted(totals)}}


def trace_summary(analyzer: TraceAnalyzer) -> dict:
    """Deterministic JSON-able analysis payload for a set of traces."""
    traces = []
    for trace_id in analyzer.trace_ids():
        root = analyzer.root(trace_id)
        nodes = analyzer.spans_for(trace_id)
        stages = analyzer.stage_breakdown(trace_id)
        path = [
            {"name": step.name, "process": step.process,
             "start_s": step.start_s, "self_s": step.self_s,
             "stage": step.stage}
            for step in analyzer.critical_path(trace_id)
        ]
        traces.append({
            "trace_id": trace_id,
            "root": root.name,
            "connected": analyzer.is_connected(trace_id),
            "processes": sorted({node.process for node in nodes}),
            "spans": len(nodes),
            "duration_s": analyzer.duration_s(trace_id),
            "outcome": str(root.span.attributes.get("outcome", "")),
            "source": str(root.span.attributes.get("source", "")),
            "status": ("error" if any(n.span.status != "ok" for n in nodes)
                       else "ok"),
            "stages": {stage: stages[stage] for stage in sorted(stages)},
            "critical_path": path,
        })
    return {"schema": TRACES_SCHEMA, "traces": traces,
            "aggregate": analyzer.aggregate()}


def _fail(where: str, message: str) -> None:
    raise ValueError(f"invalid trace summary at {where}: {message}")


def _check_number(where: str, value: object) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(where, f"expected a number, got {type(value).__name__}")


def validate_trace_summary(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the
    ``repro.obs.traces/v1`` schema produced by :func:`trace_summary`."""
    if not isinstance(payload, Mapping):
        raise ValueError("trace summary must be a JSON object")
    if payload.get("schema") != TRACES_SCHEMA:
        _fail("schema", f"expected {TRACES_SCHEMA!r}, got "
                        f"{payload.get('schema')!r}")
    traces = payload.get("traces")
    if not isinstance(traces, list):
        _fail("traces", "expected a list")
    for index, trace in enumerate(traces):
        where = f"traces[{index}]"
        if not isinstance(trace, Mapping):
            _fail(where, "expected an object")
        for key in ("trace_id", "root", "outcome", "source", "status"):
            if not isinstance(trace.get(key), str):
                _fail(f"{where}.{key}", "expected a string")
        if not isinstance(trace.get("connected"), bool):
            _fail(f"{where}.connected", "expected a boolean")
        spans = trace.get("spans")
        if not isinstance(spans, int) or isinstance(spans, bool) or spans < 1:
            _fail(f"{where}.spans", "expected a positive integer")
        _check_number(f"{where}.duration_s", trace.get("duration_s"))
        processes = trace.get("processes")
        if (not isinstance(processes, list) or not processes
                or not all(isinstance(p, str) for p in processes)):
            _fail(f"{where}.processes", "expected a non-empty string list")
        stages = trace.get("stages")
        if not isinstance(stages, Mapping):
            _fail(f"{where}.stages", "expected an object")
        for stage, seconds in stages.items():
            _check_number(f"{where}.stages[{stage!r}]", seconds)
            if seconds < 0:
                _fail(f"{where}.stages[{stage!r}]", "must be non-negative")
        path = trace.get("critical_path")
        if not isinstance(path, list) or not path:
            _fail(f"{where}.critical_path", "expected a non-empty list")
        for s_index, step in enumerate(path):
            s_where = f"{where}.critical_path[{s_index}]"
            if not isinstance(step, Mapping):
                _fail(s_where, "expected an object")
            for key in ("name", "process", "stage"):
                if not isinstance(step.get(key), str):
                    _fail(f"{s_where}.{key}", "expected a string")
            for key in ("start_s", "self_s"):
                _check_number(f"{s_where}.{key}", step.get(key))
    aggregate = payload.get("aggregate")
    if not isinstance(aggregate, Mapping):
        _fail("aggregate", "expected an object")
    for key in ("traces", "spans"):
        value = aggregate.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(f"aggregate.{key}", "expected a non-negative integer")
    if aggregate.get("traces") != len(traces):
        _fail("aggregate.traces", "must equal the number of trace entries")
    stages = aggregate.get("stages")
    if not isinstance(stages, Mapping):
        _fail("aggregate.stages", "expected an object")
    for stage, entry in stages.items():
        if not isinstance(entry, Mapping):
            _fail(f"aggregate.stages[{stage!r}]", "expected an object")
        _check_number(f"aggregate.stages[{stage!r}].total_s",
                      entry.get("total_s"))
