"""Deterministic time-series telemetry scraped from a metrics registry.

The metrics snapshot (:mod:`repro.obs.export`) is an end-of-run
aggregate; continuous monitoring needs the *trajectory*.  A
:class:`TimeSeriesCollector` samples a shared
:class:`~repro.obs.metrics.MetricsRegistry` on a fixed simulated-time
grid and keeps the result in bounded ring-buffer :class:`Series`:

* **counters** become per-interval *rates* (``<key>:rate``, delta over
  elapsed grid time);
* **gauges** become point-in-time samples (``<key>``);
* **histograms** become *windowed* percentiles and rates
  (``<key>:p50``/``:p99``/``:rate``) — each scrape diffs the cumulative
  histogram against the previous scrape's state via
  :meth:`~repro.obs.metrics.Histogram.delta`, so the percentile reflects
  only the samples of the last interval, which is what a burn-rate
  latency SLO needs.

The scrape loop is *pull-based and driven by the caller's clock*: the
cluster driver calls :meth:`TimeSeriesCollector.maybe_scrape` with the
current simulated time and the collector performs every grid-aligned
scrape that has come due (timestamps ``k * interval_s``).  Nothing here
reads the wall clock, so the exported timeline (schema id
``repro.obs.timeseries/v1``) replays byte-identically for a fixed seed.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Mapping

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "TIMELINE_SCHEMA",
    "Series",
    "TimeSeriesCollector",
    "timeline",
    "validate_timeline",
]

TIMELINE_SCHEMA = "repro.obs.timeseries/v1"

_KINDS = ("rate", "gauge", "percentile")


class Series:
    """One bounded ring buffer of ``(ts, value)`` points."""

    __slots__ = ("key", "kind", "capacity", "dropped", "_points")

    def __init__(self, key: str, kind: str, capacity: int):
        if kind not in _KINDS:
            raise ValueError(f"unknown series kind {kind!r}")
        if capacity < 1:
            raise ValueError("series capacity must be at least 1")
        self.key = key
        self.kind = kind
        self.capacity = capacity
        self.dropped = 0
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._points)

    def append(self, ts: float, value: float) -> None:
        if len(self._points) >= self.capacity:
            self.dropped += 1
        self._points.append((float(ts), float(value)))

    def points(self) -> list[tuple[float, float]]:
        return list(self._points)

    def latest(self) -> tuple[float, float] | None:
        return self._points[-1] if self._points else None


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return f"{name}{{{inner}}}"


class TimeSeriesCollector:
    """Grid-aligned scraper of one registry into bounded series.

    ``interval_s`` sets the scrape grid (``k * interval_s`` timestamps);
    ``capacity`` bounds every series' retained points; ``percentiles``
    picks which windowed quantiles each histogram child yields.  Metric
    children that appear mid-run simply start their series at the next
    scrape; a counter's first rate point treats its pre-monitoring value
    as having accrued over one interval.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 1.0,
        capacity: int = 720,
        percentiles: tuple[float, ...] = (50.0, 99.0),
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        for q in percentiles:
            if not 0.0 <= q <= 100.0:
                raise ValueError(f"percentile must be in [0, 100], got {q}")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.capacity = capacity
        self.percentiles = tuple(percentiles)
        self.scrapes = 0
        self.last_scrape_ts: float | None = None
        self._series: dict[str, Series] = {}
        self._prev_counters: dict[str, float] = {}
        self._prev_histograms: dict[str, Histogram] = {}
        self._grid_index = 0  # last performed scrape's grid multiple

    # ------------------------------------------------------------------
    def maybe_scrape(self, now: float) -> list[float]:
        """Perform every grid scrape due at or before ``now``.

        Returns the grid timestamps scraped (empty when none were due).
        Driving this after every request keeps the grid exact no matter
        how unevenly simulated time advances.
        """
        due = math.floor(now / self.interval_s + 1e-9)
        performed: list[float] = []
        while self._grid_index < due:
            self._grid_index += 1
            ts = self._grid_index * self.interval_s
            self.scrape(ts)
            performed.append(ts)
        return performed

    def scrape(self, ts: float) -> None:
        """Sample every registered family at timestamp ``ts``."""
        ts = float(ts)
        elapsed = (self.interval_s if self.last_scrape_ts is None
                   else ts - self.last_scrape_ts)
        if elapsed <= 0:
            raise ValueError(f"scrape timestamps must increase, got {ts}")
        for family in self.registry.families():
            for labels, child in family.samples():
                key = _series_key(family.name, labels)
                if family.kind == "counter":
                    previous = self._prev_counters.get(key, 0.0)
                    value = child.value
                    self._record(f"{key}:rate", "rate", ts,
                                 (value - previous) / elapsed)
                    self._prev_counters[key] = value
                elif family.kind == "gauge":
                    self._record(key, "gauge", ts, child.value)
                else:
                    previous_h = self._prev_histograms.get(key)
                    window = (child.delta(previous_h) if previous_h is not None
                              else child)
                    for q in self.percentiles:
                        self._record(f"{key}:p{q:g}", "percentile", ts,
                                     window.percentile(q))
                    self._record(f"{key}:rate", "rate", ts,
                                 window.count / elapsed)
                    self._prev_histograms[key] = Histogram(child.bounds).merge(child)
        self.scrapes += 1
        self.last_scrape_ts = ts

    def _record(self, key: str, kind: str, ts: float, value: float) -> None:
        series = self._series.get(key)
        if series is None:
            series = Series(key, kind, self.capacity)
            self._series[key] = series
        series.append(ts, value)

    # ------------------------------------------------------------------
    def series(self) -> list[Series]:
        """All series sorted by key (deterministic exports)."""
        return [self._series[key] for key in sorted(self._series)]

    def get(self, key: str) -> Series:
        return self._series[key]

    def __contains__(self, key: str) -> bool:
        return key in self._series


def timeline(collector: TimeSeriesCollector) -> dict:
    """Deterministic JSON-able export of every series."""
    return {
        "schema": TIMELINE_SCHEMA,
        "interval_s": collector.interval_s,
        "scrapes": collector.scrapes,
        "series": [
            {
                "key": series.key,
                "kind": series.kind,
                "dropped": series.dropped,
                "points": [[ts, value] for ts, value in series.points()],
            }
            for series in collector.series()
        ],
    }


def _fail(where: str, message: str) -> None:
    raise ValueError(f"invalid timeline at {where}: {message}")


def _check_number(where: str, value: object) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(where, f"expected a number, got {type(value).__name__}")


def validate_timeline(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the
    ``repro.obs.timeseries/v1`` schema produced by :func:`timeline`."""
    if not isinstance(payload, Mapping):
        raise ValueError("timeline must be a JSON object")
    if payload.get("schema") != TIMELINE_SCHEMA:
        _fail("schema", f"expected {TIMELINE_SCHEMA!r}, got {payload.get('schema')!r}")
    interval = payload.get("interval_s")
    _check_number("interval_s", interval)
    if interval <= 0:
        _fail("interval_s", "must be positive")
    scrapes = payload.get("scrapes")
    if not isinstance(scrapes, int) or scrapes < 0:
        _fail("scrapes", "expected a non-negative integer")
    series = payload.get("series")
    if not isinstance(series, list):
        _fail("series", "expected a list")
    previous_key = ""
    for index, entry in enumerate(series):
        where = f"series[{index}]"
        if not isinstance(entry, Mapping):
            _fail(where, "expected an object")
        key = entry.get("key")
        if not isinstance(key, str) or not key:
            _fail(f"{where}.key", "expected a non-empty string")
        if key <= previous_key:
            _fail(f"{where}.key", "series must be sorted by key, without duplicates")
        previous_key = key
        if entry.get("kind") not in _KINDS:
            _fail(f"{where}.kind", f"expected one of {_KINDS}, got {entry.get('kind')!r}")
        dropped = entry.get("dropped")
        if not isinstance(dropped, int) or dropped < 0:
            _fail(f"{where}.dropped", "expected a non-negative integer")
        points = entry.get("points")
        if not isinstance(points, list):
            _fail(f"{where}.points", "expected a list")
        previous_ts = float("-inf")
        for p_index, point in enumerate(points):
            p_where = f"{where}.points[{p_index}]"
            if not isinstance(point, list) or len(point) != 2:
                _fail(p_where, "expected a [ts, value] pair")
            _check_number(f"{p_where}[0]", point[0])
            _check_number(f"{p_where}[1]", point[1])
            if point[0] <= previous_ts:
                _fail(f"{p_where}[0]", "timestamps must be strictly increasing")
            previous_ts = point[0]
