"""Registry exporters: JSON snapshot, text rendering, Prometheus text.

The JSON snapshot is the machine-readable contract (schema id
``repro.obs.metrics/v1``) the CI obs-smoke step and the benchmark
conftest validate against via :func:`validate_snapshot`; it is fully
deterministic for deterministic metric values (families sorted by name,
samples sorted by label values, no timestamps).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.obs.metrics import Histogram, MetricFamily, MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "snapshot",
    "render_text",
    "render_prometheus",
    "validate_snapshot",
]

SNAPSHOT_SCHEMA = "repro.obs.metrics/v1"

_KINDS = ("counter", "gauge", "histogram")


def _bound_repr(bound: float) -> str | float:
    return "+Inf" if math.isinf(bound) else bound


def snapshot(registry: MetricsRegistry) -> dict:
    """Deterministic JSON-able snapshot of every family and sample."""
    metrics = []
    for family in registry.families():
        samples = []
        for labels, child in family.samples():
            sample: dict = {"labels": labels}
            if isinstance(child, Histogram):
                exemplars = {
                    _bound_repr(bound): {"trace_id": trace_id, "value": value}
                    for bound, trace_id, value in child.exemplars()
                }
                buckets = []
                for bound, count in child.bucket_counts():
                    bucket: dict = {"le": _bound_repr(bound), "count": count}
                    exemplar = exemplars.get(bucket["le"])
                    if exemplar is not None:
                        bucket["exemplar"] = exemplar
                    buckets.append(bucket)
                sample.update(
                    count=child.count,
                    sum=child.sum,
                    min=child.min,
                    max=child.max,
                    p50=child.percentile(50),
                    p99=child.percentile(99),
                    buckets=buckets,
                )
            else:
                sample["value"] = child.value
            samples.append(sample)
        metrics.append({
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
            "samples": samples,
        })
    return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


def _format_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.6g}"


def _label_suffix(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_text(registry: MetricsRegistry) -> str:
    """Human-readable rendering of the registry (one line per sample)."""
    lines = []
    for family in registry.families():
        header = f"# {family.name} ({family.kind})"
        if family.help:
            header += f" — {family.help}"
        lines.append(header)
        for labels, child in family.samples():
            suffix = _label_suffix(labels)
            if isinstance(child, Histogram):
                lines.append(
                    f"{family.name}{suffix} count={child.count} "
                    f"sum={_format_value(child.sum)} min={_format_value(child.min)} "
                    f"p50={_format_value(child.percentile(50))} "
                    f"p99={_format_value(child.percentile(99))} "
                    f"max={_format_value(child.max)}"
                )
            else:
                lines.append(f"{family.name}{suffix} {_format_value(child.value)}")
    return "\n".join(lines)


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition-format rendering (text format 0.0.4)."""
    lines = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                exemplars = {bound: (trace_id, value)
                             for bound, trace_id, value in child.exemplars()}
                for bound, count in child.bucket_counts():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    suffix = _label_suffix(labels, f'le="{le}"')
                    line = f"{family.name}_bucket{suffix} {count}"
                    exemplar = exemplars.get(bound)
                    if exemplar is not None:
                        # OpenMetrics-style exemplar annotation: a
                        # representative trace id for this latency band.
                        trace_id, value = exemplar
                        line += (f' # {{trace_id="{_escape(trace_id)}"}} '
                                 f"{_format_value(value)}")
                    lines.append(line)
                suffix = _label_suffix(labels)
                lines.append(f"{family.name}_sum{suffix} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{suffix} {child.count}")
            else:
                suffix = _label_suffix(labels)
                lines.append(f"{family.name}{suffix} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def _fail(where: str, message: str) -> None:
    raise ValueError(f"invalid metrics snapshot at {where}: {message}")


def _check_number(where: str, value: object) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(where, f"expected a number, got {type(value).__name__}")


def validate_snapshot(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the
    ``repro.obs.metrics/v1`` snapshot schema produced by :func:`snapshot`."""
    if not isinstance(payload, Mapping):
        raise ValueError("snapshot must be a JSON object")
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        _fail("schema", f"expected {SNAPSHOT_SCHEMA!r}, got {payload.get('schema')!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        _fail("metrics", "expected a list")
    for m_index, metric in enumerate(metrics):
        where = f"metrics[{m_index}]"
        if not isinstance(metric, Mapping):
            _fail(where, "expected an object")
        name = metric.get("name")
        if not isinstance(name, str) or not name:
            _fail(f"{where}.name", "expected a non-empty string")
        kind = metric.get("kind")
        if kind not in _KINDS:
            _fail(f"{where}.kind", f"expected one of {_KINDS}, got {kind!r}")
        if not isinstance(metric.get("labelnames"), list):
            _fail(f"{where}.labelnames", "expected a list")
        samples = metric.get("samples")
        if not isinstance(samples, list):
            _fail(f"{where}.samples", "expected a list")
        for s_index, sample in enumerate(samples):
            s_where = f"{where}.samples[{s_index}]"
            if not isinstance(sample, Mapping):
                _fail(s_where, "expected an object")
            labels = sample.get("labels")
            if not isinstance(labels, Mapping):
                _fail(f"{s_where}.labels", "expected an object")
            if sorted(labels) != sorted(metric["labelnames"]):
                _fail(f"{s_where}.labels", "label keys must match labelnames")
            if kind == "histogram":
                _validate_histogram_sample(s_where, sample)
            else:
                _check_number(f"{s_where}.value", sample.get("value"))


def _validate_histogram_sample(where: str, sample: Mapping) -> None:
    for key in ("sum", "min", "max", "p50", "p99"):
        _check_number(f"{where}.{key}", sample.get(key))
    count = sample.get("count")
    if not isinstance(count, int) or count < 0:
        _fail(f"{where}.count", "expected a non-negative integer")
    buckets = sample.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        _fail(f"{where}.buckets", "expected a non-empty list")
    previous = 0
    for b_index, bucket in enumerate(buckets):
        b_where = f"{where}.buckets[{b_index}]"
        if not isinstance(bucket, Mapping):
            _fail(b_where, "expected an object")
        bucket_count = bucket.get("count")
        if not isinstance(bucket_count, int) or bucket_count < previous:
            _fail(f"{b_where}.count", "bucket counts must be non-decreasing integers")
        previous = bucket_count
        le = bucket.get("le")
        if le != "+Inf":
            _check_number(f"{b_where}.le", le)
        exemplar = bucket.get("exemplar")
        if exemplar is not None:
            if not isinstance(exemplar, Mapping):
                _fail(f"{b_where}.exemplar", "expected an object")
            trace_id = exemplar.get("trace_id")
            if not isinstance(trace_id, str) or not trace_id:
                _fail(f"{b_where}.exemplar.trace_id",
                      "expected a non-empty string")
            _check_number(f"{b_where}.exemplar.value", exemplar.get("value"))
    if buckets[-1].get("le") != "+Inf":
        _fail(f"{where}.buckets", "last bucket must be the +Inf overflow bucket")
    if previous != count:
        _fail(f"{where}.buckets", "cumulative bucket count must equal sample count")
