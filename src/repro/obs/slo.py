"""Declarative SLOs with multi-window burn-rate alerting.

An SLO here is a *good/total ratio objective* over counters (or
histogram bucket counts) in a shared
:class:`~repro.obs.metrics.MetricsRegistry`:

* availability — (fresh + degraded serves) / requests;
* latency — requests under a threshold / requests, read from a
  histogram's cumulative bucket at ``le``;
* cache hit rate — hits / lookups.

Evaluation follows the multi-window burn-rate pattern: the *burn rate*
over a trailing window is ``bad_fraction / (1 - target)`` (how many
times faster than sustainable the error budget is burning), and a
:class:`BurnRateRule` fires only when **both** its long and short
windows exceed the threshold — the long window keeps alerts from firing
on blips, the short window makes them resolve promptly once the burn
stops.  Alerts step through a ``pending → firing → resolved`` state
machine (``for_s`` of sustained breach before firing,
``resolve_after_s`` of sustained recovery before resolving; a pending
alert that recovers early is ``cancelled``) and cross-reference the
:class:`~repro.obs.events.EventLog` ids active inside their window, so
an availability page carries the breaker trips and drains that explain
it.

Everything is evaluated on simulated time against deterministic
counters, so the alert report (schema id ``repro.obs.alerts/v1``)
replays byte-identically for a fixed seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "ALERTS_SCHEMA",
    "MetricSum",
    "BurnRateRule",
    "SloSpec",
    "Alert",
    "SloEvaluator",
    "alert_report",
    "validate_alert_report",
]

ALERTS_SCHEMA = "repro.obs.alerts/v1"

_STATES = ("pending", "firing", "resolved", "cancelled")

LabelFilter = tuple[tuple[str, Union[str, tuple[str, ...]]], ...]


@dataclass(frozen=True)
class MetricSum:
    """A summed reading over registry children: the SLI numerator or
    denominator.

    ``names`` are the metric families to sum (absent families read as
    0.0 — an SLO can be declared before its service emits).  ``where``
    filters children by label value: each entry is ``(label, value)`` or
    ``(label, (value, ...))`` and all entries must match.  For histogram
    families the reading is the cumulative bucket count at the largest
    bound ``<= le`` (requests at least that fast), or the total sample
    count when ``le`` is None.
    """

    names: tuple[str, ...]
    where: LabelFilter = ()
    le: float | None = None

    def __post_init__(self):
        if not self.names:
            raise ValueError("MetricSum needs at least one metric name")

    def read(self, registry: MetricsRegistry) -> float:
        total = 0.0
        for name in self.names:
            if name not in registry:
                continue
            for labels, child in registry.get(name).samples():
                if not self._matches(labels):
                    continue
                if isinstance(child, Histogram):
                    total += self._histogram_reading(child)
                else:
                    total += child.value
        return total

    def _matches(self, labels: Mapping[str, str]) -> bool:
        for label, accepted in self.where:
            values = (accepted,) if isinstance(accepted, str) else accepted
            if labels.get(label) not in values:
                return False
        return True

    def _histogram_reading(self, child: Histogram) -> float:
        if self.le is None:
            return float(child.count)
        reading = 0
        for bound, cumulative in child.bucket_counts():
            if bound <= self.le:
                reading = cumulative
            else:
                break
        return float(reading)


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when burn rate exceeds ``max_burn_rate`` over *both* windows."""

    long_s: float
    short_s: float
    max_burn_rate: float

    def __post_init__(self):
        if self.short_s <= 0 or self.long_s <= self.short_s:
            raise ValueError("windows must satisfy long_s > short_s > 0")
        if self.max_burn_rate <= 0:
            raise ValueError("max_burn_rate must be positive")

    def as_dict(self) -> dict:
        return {"long_s": self.long_s, "short_s": self.short_s,
                "max_burn_rate": self.max_burn_rate}


@dataclass(frozen=True)
class SloSpec:
    """One objective: a target ratio plus its burn-rate alert policy.

    ``for_s`` is how long the breach must sustain before a pending
    alert fires; ``resolve_after_s`` how long recovery must sustain
    before a firing alert resolves; ``event_lookback_s`` widens the
    event-correlation window before the alert went pending (breaker
    trips usually precede the SLI damage they cause).
    """

    name: str
    description: str
    target: float
    good: MetricSum
    total: MetricSum
    windows: tuple[BurnRateRule, ...]
    for_s: float = 0.0
    resolve_after_s: float = 0.0
    event_lookback_s: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if not self.windows:
            raise ValueError("SLO needs at least one burn-rate rule")
        if self.for_s < 0 or self.resolve_after_s < 0 or self.event_lookback_s < 0:
            raise ValueError("durations must be non-negative")


@dataclass
class Alert:
    """One alert instance walking pending → firing → resolved.

    A pending alert whose condition clears before ``for_s`` elapses is
    ``cancelled`` instead (it never paged).  ``event_ids`` are the
    structured-log events whose timestamps fall inside
    ``[pending_ts - event_lookback_s, resolved_ts]``.
    """

    alert_id: str
    objective: str
    state: str
    pending_ts: float
    firing_ts: float | None = None
    resolved_ts: float | None = None
    peak_burn_rate: float = 0.0
    event_ids: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "alert_id": self.alert_id,
            "objective": self.objective,
            "state": self.state,
            "pending_ts": self.pending_ts,
            "firing_ts": self.firing_ts,
            "resolved_ts": self.resolved_ts,
            "peak_burn_rate": self.peak_burn_rate,
            "event_ids": list(self.event_ids),
        }


class _SpecState:
    """Evaluator-internal bookkeeping for one objective."""

    __slots__ = ("spec", "history", "active", "done", "instances", "clear_since")

    def __init__(self, spec: SloSpec, history_points: int):
        self.spec = spec
        #: ``(ts, good, total)`` cumulative readings, oldest first.
        self.history: deque[tuple[float, float, float]] = deque(maxlen=history_points)
        self.active: Alert | None = None
        self.done: list[Alert] = []
        self.instances = 0
        self.clear_since: float | None = None

    def alerts(self) -> list[Alert]:
        return self.done + ([self.active] if self.active is not None else [])


class SloEvaluator:
    """Steps every objective's burn-rate rules and alert state machine.

    Call :meth:`evaluate` with the current simulated time whenever fresh
    telemetry is worth judging — the monitor command does so once per
    scrape.  Readings are cumulative, so evaluation frequency changes
    granularity, never correctness.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        specs: Sequence[SloSpec],
        event_log: EventLog | None = None,
        history_points: int = 4096,
    ):
        if not specs:
            raise ValueError("evaluator needs at least one SLO spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.registry = registry
        self.event_log = event_log
        self.evaluations = 0
        self.last_eval_ts: float | None = None
        self._states = {spec.name: _SpecState(spec, history_points)
                        for spec in specs}

    @property
    def specs(self) -> list[SloSpec]:
        return [state.spec for state in self._states.values()]

    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> list[Alert]:
        """Read every SLI, step every alert; returns alerts that changed
        state at this evaluation."""
        now = float(now)
        if self.last_eval_ts is not None and now < self.last_eval_ts:
            raise ValueError(f"evaluation time went backwards: {now}")
        changed: list[Alert] = []
        for state in self._states.values():
            spec = state.spec
            good = spec.good.read(self.registry)
            total = spec.total.read(self.registry)
            state.history.append((now, good, total))
            breached, strength = self._condition(state, now)
            alert = self._step(state, now, breached, strength)
            if alert is not None:
                changed.append(alert)
        self.evaluations += 1
        self.last_eval_ts = now
        return changed

    def _condition(self, state: _SpecState, now: float) -> tuple[bool, float]:
        """Whether any rule fires, and the strongest effective burn."""
        breached = False
        strength = 0.0
        for rule in state.spec.windows:
            long_burn = self._burn_rate(state, now, rule.long_s)
            short_burn = self._burn_rate(state, now, rule.short_s)
            effective = min(long_burn, short_burn)
            strength = max(strength, effective)
            if long_burn >= rule.max_burn_rate and short_burn >= rule.max_burn_rate:
                breached = True
        return breached, strength

    def _burn_rate(self, state: _SpecState, now: float, window_s: float) -> float:
        """Error-budget burn rate over the trailing ``window_s``.

        Counters all start at zero at simulation start, so when the
        window reaches past the oldest retained reading the baseline is
        exactly (0, 0).  A window with no traffic burns nothing.
        """
        base_good = 0.0
        base_total = 0.0
        cutoff = now - window_s
        for ts, good, total in reversed(state.history):
            if ts <= cutoff:
                base_good, base_total = good, total
                break
        _, current_good, current_total = state.history[-1]
        total_delta = current_total - base_total
        if total_delta <= 0:
            return 0.0
        bad_fraction = 1.0 - (current_good - base_good) / total_delta
        bad_fraction = min(1.0, max(0.0, bad_fraction))
        return bad_fraction / (1.0 - state.spec.target)

    def _step(self, state: _SpecState, now: float, breached: bool,
              strength: float) -> Alert | None:
        """Advance one objective's alert state machine; returns the alert
        when it changed state."""
        spec = state.spec
        alert = state.active
        if alert is None:
            if not breached:
                return None
            state.instances += 1
            alert = Alert(
                alert_id=f"{spec.name}#{state.instances}",
                objective=spec.name,
                state="pending",
                pending_ts=now,
                peak_burn_rate=strength,
            )
            state.active = alert
            state.clear_since = None
            if spec.for_s <= 0:
                alert.state = "firing"
                alert.firing_ts = now
            return alert
        alert.peak_burn_rate = max(alert.peak_burn_rate, strength)
        if alert.state == "pending":
            if not breached:
                alert.state = "cancelled"
                alert.resolved_ts = now
                self._finish(state, alert, now)
                return alert
            if now - alert.pending_ts >= spec.for_s:
                alert.state = "firing"
                alert.firing_ts = now
                return alert
            return None
        # firing
        if breached:
            state.clear_since = None
            return None
        if state.clear_since is None:
            state.clear_since = now
        if now - state.clear_since >= spec.resolve_after_s:
            alert.state = "resolved"
            alert.resolved_ts = now
            self._finish(state, alert, now)
            return alert
        return None

    def _finish(self, state: _SpecState, alert: Alert, now: float) -> None:
        alert.event_ids = self._events_for(state.spec, alert, now)
        state.done.append(alert)
        state.active = None
        state.clear_since = None

    def _events_for(self, spec: SloSpec, alert: Alert, until: float) -> list[int]:
        if self.event_log is None:
            return []
        start = alert.pending_ts - spec.event_lookback_s
        return [event.event_id
                for event in self.event_log.events_between(start, until)]

    # ------------------------------------------------------------------
    def alerts(self) -> list[Alert]:
        """Every alert instance (finished and active), grouped by
        objective in spec order."""
        out: list[Alert] = []
        for state in self._states.values():
            out.extend(state.alerts())
        return out

    @property
    def any_fired(self) -> bool:
        """True when any alert ever reached the firing state."""
        return any(alert.firing_ts is not None for alert in self.alerts())

    def sli(self, name: str) -> float:
        """The objective's overall good/total ratio so far (1.0 with no
        traffic — an idle service has violated nothing)."""
        state = self._states[name]
        if not state.history:
            return 1.0
        _, good, total = state.history[-1]
        return good / total if total > 0 else 1.0


def alert_report(evaluator: SloEvaluator) -> dict:
    """Deterministic JSON-able report of every objective and alert.

    Active alerts get their event correlation computed against the last
    evaluation time (their window is still open).
    """
    objectives = []
    for state in sorted(evaluator._states.values(), key=lambda s: s.spec.name):
        spec = state.spec
        alerts = []
        for alert in state.alerts():
            payload = alert.as_dict()
            if alert.resolved_ts is None and evaluator.last_eval_ts is not None:
                payload["event_ids"] = evaluator._events_for(
                    spec, alert, evaluator.last_eval_ts)
            alerts.append(payload)
        sli = evaluator.sli(spec.name)
        objectives.append({
            "name": spec.name,
            "description": spec.description,
            "target": spec.target,
            "sli": sli,
            "error_budget_used": min(1.0, max(0.0, 1.0 - sli)) / (1.0 - spec.target),
            "windows": [rule.as_dict() for rule in spec.windows],
            "alerts": alerts,
        })
    return {
        "schema": ALERTS_SCHEMA,
        "evaluations": evaluator.evaluations,
        "fired": evaluator.any_fired,
        "objectives": objectives,
    }


def _fail(where: str, message: str) -> None:
    raise ValueError(f"invalid alert report at {where}: {message}")


def _check_number(where: str, value: object, allow_none: bool = False) -> None:
    if value is None and allow_none:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(where, f"expected a number, got {type(value).__name__}")


def validate_alert_report(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the
    ``repro.obs.alerts/v1`` schema produced by :func:`alert_report`."""
    if not isinstance(payload, Mapping):
        raise ValueError("alert report must be a JSON object")
    if payload.get("schema") != ALERTS_SCHEMA:
        _fail("schema", f"expected {ALERTS_SCHEMA!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("evaluations"), int):
        _fail("evaluations", "expected an integer")
    if not isinstance(payload.get("fired"), bool):
        _fail("fired", "expected a boolean")
    objectives = payload.get("objectives")
    if not isinstance(objectives, list):
        _fail("objectives", "expected a list")
    fired_seen = False
    for o_index, objective in enumerate(objectives):
        where = f"objectives[{o_index}]"
        if not isinstance(objective, Mapping):
            _fail(where, "expected an object")
        if not isinstance(objective.get("name"), str) or not objective.get("name"):
            _fail(f"{where}.name", "expected a non-empty string")
        for key in ("target", "sli", "error_budget_used"):
            _check_number(f"{where}.{key}", objective.get(key))
        windows = objective.get("windows")
        if not isinstance(windows, list) or not windows:
            _fail(f"{where}.windows", "expected a non-empty list")
        for w_index, window in enumerate(windows):
            w_where = f"{where}.windows[{w_index}]"
            if not isinstance(window, Mapping):
                _fail(w_where, "expected an object")
            for key in ("long_s", "short_s", "max_burn_rate"):
                _check_number(f"{w_where}.{key}", window.get(key))
        alerts = objective.get("alerts")
        if not isinstance(alerts, list):
            _fail(f"{where}.alerts", "expected a list")
        for a_index, alert in enumerate(alerts):
            a_where = f"{where}.alerts[{a_index}]"
            if not isinstance(alert, Mapping):
                _fail(a_where, "expected an object")
            if not isinstance(alert.get("alert_id"), str):
                _fail(f"{a_where}.alert_id", "expected a string")
            alert_state = alert.get("state")
            if alert_state not in _STATES:
                _fail(f"{a_where}.state",
                      f"expected one of {_STATES}, got {alert_state!r}")
            _check_number(f"{a_where}.pending_ts", alert.get("pending_ts"))
            _check_number(f"{a_where}.firing_ts", alert.get("firing_ts"),
                          allow_none=True)
            _check_number(f"{a_where}.resolved_ts", alert.get("resolved_ts"),
                          allow_none=True)
            _check_number(f"{a_where}.peak_burn_rate", alert.get("peak_burn_rate"))
            if alert_state in ("firing", "resolved") and alert.get("firing_ts") is None:
                _fail(f"{a_where}.firing_ts", f"{alert_state} alert needs firing_ts")
            if alert_state in ("resolved", "cancelled") and alert.get("resolved_ts") is None:
                _fail(f"{a_where}.resolved_ts", "resolved alert needs resolved_ts")
            event_ids = alert.get("event_ids")
            if not isinstance(event_ids, list) or any(
                    not isinstance(i, int) for i in event_ids):
                _fail(f"{a_where}.event_ids", "expected a list of integers")
            if alert.get("firing_ts") is not None:
                fired_seen = True
    if bool(payload.get("fired")) != fired_seen:
        _fail("fired", "must reflect whether any alert carries a firing_ts")
