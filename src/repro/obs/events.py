"""Structured, byte-deterministic event log for operational transitions.

Metrics answer "how much"; the event log answers "what happened, when".
Serving components publish discrete lifecycle transitions — breaker
state changes, router drain/restore, degradation entry/exit, dead-letter
traffic, adaptive-batch flushes — as :class:`Event` records into one
shared :class:`EventLog`, and the SLO evaluator cross-references the
event ids active inside an alert's window so every alert carries its own
causal context.

Contracts:

* **deterministic** — timestamps are simulated seconds from the
  emitter's own clock and ids are assigned in emission order, so the
  JSONL rendering (schema id ``repro.obs.events/v1``) is byte-identical
  for a fixed seed;
* **bounded** — the log is a ring buffer: beyond ``max_events`` the
  oldest records fall off and ``dropped`` counts them (mirroring
  :class:`~repro.obs.tracing.Tracer`), so an always-on service never
  grows it without bound;
* **ordered by id, not time** — replicas run on their own clocks, so
  event timestamps are only monotone per component; ``event_id`` orders
  global emission.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Union

from repro.obs.tracing import TRACE_ID_ATTR

__all__ = ["EVENTS_SCHEMA", "Event", "EventLog", "render_events", "validate_events"]

EVENTS_SCHEMA = "repro.obs.events/v1"

#: Event kinds are dotted lowercase identifiers: ``component.transition``.
_KIND_RE = re.compile(r"^[a-z0-9_-]+(\.[a-z0-9_-]+)+$")

AttrValue = Union[str, int, float, bool]


@dataclass(frozen=True)
class Event:
    """One discrete operational transition.

    ``event_id`` is unique and ordered by emission; ``ts`` is simulated
    seconds on the *emitting component's* clock; ``kind`` names the
    transition (``breaker.open``, ``router.drain``, ...); ``attrs`` are
    scalar details (replica ids, counts, triggers).
    """

    event_id: int
    ts: float
    kind: str
    component: str
    attrs: Mapping[str, AttrValue]

    def as_dict(self) -> dict:
        return {
            "event_id": self.event_id,
            "ts": self.ts,
            "kind": self.kind,
            "component": self.component,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """Bounded, append-only sink for :class:`Event` records.

    Pass a shared :class:`~repro.obs.metrics.MetricsRegistry` to also
    count emissions as ``obs_events_total{kind}`` — which the time-series
    scrape loop then turns into per-kind event rates for free.
    """

    def __init__(self, max_events: int = 10_000, registry=None,
                 name: str = "events"):
        if max_events < 1:
            raise ValueError("max_events must be at least 1")
        self.max_events = max_events
        self.dropped = 0
        self.emitted = 0
        self._events: deque[Event] = deque(maxlen=max_events)
        self._next_id = 1
        self._counter_family = None
        if registry is not None:
            self._counter_family = registry.counter(
                "obs_events_total", "structured events emitted by kind",
                ("log", "kind"),
            )
        self._name = name
        self._trace_id: str | None = None

    def __len__(self) -> int:
        return len(self._events)

    def trace_scope(self, trace_id: str) -> "_TraceScope":
        """Stamp every event emitted inside with ``trace_id``.

        The cluster wraps each traced request in this scope so mid-request
        emitters (breaker transitions, dead-letters, batch flushes) need
        no plumbing of their own — their events automatically carry the
        request's trace id and correlate with spans and exemplars.
        """
        return _TraceScope(self, trace_id)

    def emit(self, kind: str, ts: float, component: str,
             **attrs: AttrValue) -> Event:
        """Append one event; returns the record (with its assigned id)."""
        if not _KIND_RE.match(kind):
            raise ValueError(
                f"invalid event kind {kind!r}; expected dotted lowercase "
                "like 'breaker.open'"
            )
        ts = float(ts)
        if ts < 0.0:
            raise ValueError(f"event timestamp must be non-negative, got {ts}")
        merged = dict(attrs)
        if self._trace_id is not None:
            merged.setdefault(TRACE_ID_ATTR, self._trace_id)
        event = Event(event_id=self._next_id, ts=ts, kind=kind,
                      component=component, attrs=merged)
        self._next_id += 1
        self.emitted += 1
        if len(self._events) >= self.max_events:
            self.dropped += 1
        self._events.append(event)
        if self._counter_family is not None:
            self._counter_family.labels(log=self._name, kind=kind).inc()
        return event

    def events(self) -> list[Event]:
        """Retained events in emission order."""
        return list(self._events)

    def events_between(self, start_ts: float, end_ts: float) -> list[Event]:
        """Retained events with ``start_ts <= ts <= end_ts`` (any clock).

        The SLO evaluator uses this to attach the events active inside
        an alert's window; because replica clocks can run ahead of the
        arrival clock the filter is on the timestamp value, not on id
        ranges.
        """
        return [e for e in self._events if start_ts <= e.ts <= end_ts]


class _TraceScope:
    """Enter/exit handle returned by :meth:`EventLog.trace_scope`.

    Hand-rolled (not ``contextlib``): it wraps every traced request, so
    it shares the hot-path budget measured by ``bench_trace_overhead``.
    """

    __slots__ = ("_log", "_trace_id", "_previous")

    def __init__(self, log: EventLog, trace_id: str):
        self._log = log
        self._trace_id = trace_id
        self._previous: str | None = None

    def __enter__(self) -> EventLog:
        log = self._log
        self._previous = log._trace_id
        log._trace_id = self._trace_id
        return log

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._log._trace_id = self._previous
        return False


def render_events(log: EventLog) -> str:
    """JSONL rendering: one header line, then one line per event.

    Compact separators and sorted keys make the output byte-identical
    for identical event streams.
    """
    header = {"schema": EVENTS_SCHEMA, "events": len(log),
              "emitted": log.emitted, "dropped": log.dropped}
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for event in log.events():
        lines.append(json.dumps(event.as_dict(), sort_keys=True,
                                separators=(",", ":")))
    return "\n".join(lines) + "\n"


def _fail(where: str, message: str) -> None:
    raise ValueError(f"invalid event log at {where}: {message}")


def validate_events(text: str) -> list[dict]:
    """Validate a ``repro.obs.events/v1`` JSONL document.

    Raises :class:`ValueError` on any structural violation; returns the
    parsed event dicts so callers (the CI smoke job, tests) can assert
    on content without re-parsing.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        _fail("header", "document is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ValueError(f"invalid event log at header: {error}") from error
    if not isinstance(header, dict) or header.get("schema") != EVENTS_SCHEMA:
        _fail("header.schema",
              f"expected {EVENTS_SCHEMA!r}, got {header.get('schema')!r}"
              if isinstance(header, dict) else "header must be an object")
    for key in ("events", "emitted", "dropped"):
        value = header.get(key)
        if not isinstance(value, int) or value < 0:
            _fail(f"header.{key}", "expected a non-negative integer")
    body = lines[1:]
    if header["events"] != len(body):
        _fail("header.events",
              f"header says {header['events']} events, found {len(body)} lines")
    if header["emitted"] != header["events"] + header["dropped"]:
        _fail("header.emitted", "emitted must equal events + dropped")
    events: list[dict] = []
    previous_id = 0
    for index, line in enumerate(body):
        where = f"events[{index}]"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid event log at {where}: {error}") from error
        if not isinstance(event, dict):
            _fail(where, "expected an object")
        event_id = event.get("event_id")
        if not isinstance(event_id, int) or event_id <= previous_id:
            _fail(f"{where}.event_id", "ids must be strictly increasing integers")
        previous_id = event_id
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            _fail(f"{where}.ts", "expected a non-negative number")
        kind = event.get("kind")
        if not isinstance(kind, str) or not _KIND_RE.match(kind):
            _fail(f"{where}.kind", f"expected a dotted lowercase kind, got {kind!r}")
        if not isinstance(event.get("component"), str):
            _fail(f"{where}.component", "expected a string")
        attrs = event.get("attrs")
        if not isinstance(attrs, dict):
            _fail(f"{where}.attrs", "expected an object")
        for key, value in attrs.items():
            if not isinstance(value, (str, int, float, bool)):
                _fail(f"{where}.attrs[{key!r}]", "attribute values must be scalars")
        events.append(event)
    return events
