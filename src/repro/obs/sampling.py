"""Tail-based trace sampling: decide keep/drop when the trace *ends*.

Head truncation (``Tracer.max_spans``) keeps whatever came first, which
is exactly wrong for diagnosing incidents: the interesting traces — the
errors, the degraded serves, the slow outliers — arrive after the buffer
filled.  :class:`TailSampler` inverts that.  Trace-tagged spans are
buffered as they open (one shared sampler can back many tracers); when
the driver reports the trace finished (:meth:`TailSampler.finish`), the
sampler applies its policy:

* **always retain** traces flagged interesting by the caller (errors,
  degraded/fallback outcomes) — reason ``"flagged"``;
* **slowest-k per window**: ordinary traces compete on duration inside a
  fixed time window; when the window closes, the k slowest commit
  (reason ``"slow"``) and the rest drop;
* **head sampling**: every ``head_every``-th ordinary trace commits
  unconditionally (reason ``"head"``) so the sampler keeps a baseline of
  normal traffic for comparison.

Committed spans flow back into their tracer's retained list (still
subject to the tracer's own ``max_spans`` hard cap); dropped traces
count into each involved tracer's ``dropped``.  Memory is bounded by
``max_buffered_spans``: past the bound, new spans are refused at buffer
time (``overflow`` counter) rather than growing without bound.

Everything is driven by caller-supplied simulated timestamps — the
sampler never reads a clock — so decisions are deterministic and the
resulting artifacts byte-stable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.tracing import Span, Tracer

__all__ = ["TailSampler"]


class TailSampler:
    """Shared tail-sampling policy over one or more tracers.

    ``slowest_k`` ordinary traces per ``window_s`` commit by duration;
    every ``head_every``-th ordinary trace commits as a baseline sample
    (0 disables head sampling); flagged traces always commit.  The span
    buffer is bounded by ``max_buffered_spans``.
    """

    def __init__(self, slowest_k: int = 3, window_s: float = 60.0,
                 head_every: int = 100, max_buffered_spans: int = 50_000):
        if slowest_k < 0:
            raise ValueError("slowest_k must be non-negative")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if head_every < 0:
            raise ValueError("head_every must be non-negative")
        if max_buffered_spans < 1:
            raise ValueError("max_buffered_spans must be at least 1")
        self.slowest_k = slowest_k
        self.window_s = window_s
        self.head_every = head_every
        self.max_buffered_spans = max_buffered_spans
        #: trace id → buffered ``(tracer, span)`` pairs, in open order.
        self._buffers: dict[str, list[tuple[Tracer, Span]]] = {}
        self._buffered_spans = 0
        #: window candidates: ``(duration_s, finish order, trace_id)``.
        self._candidates: list[tuple[float, int, str]] = []
        self._window_start: float | None = None
        self._finished = 0  # ordinary-trace counter for head sampling
        self.overflow = 0  # spans refused because the buffer was full
        #: committed/dropped trace counts by reason.
        self.decisions: dict[str, int] = {
            "flagged": 0, "slow": 0, "head": 0, "dropped": 0,
        }

    # ------------------------------------------------------------------
    def buffer(self, tracer: "Tracer", span: "Span") -> None:
        """Hold one trace-tagged span until its trace's verdict."""
        if span.trace_id is None:
            raise ValueError("tail sampler only buffers trace-tagged spans")
        if self._buffered_spans >= self.max_buffered_spans:
            self.overflow += 1
            tracer._discard(span)
            return
        self._buffers.setdefault(span.trace_id, []).append((tracer, span))
        self._buffered_spans += 1

    @property
    def buffered_spans(self) -> int:
        return self._buffered_spans

    @property
    def pending_traces(self) -> int:
        return len(self._buffers)

    # ------------------------------------------------------------------
    def finish(self, trace_id: str, ts: float, duration_s: float,
               flagged: bool = False) -> str:
        """Report a trace complete; returns its (possibly deferred) fate.

        ``ts`` is the trace's completion timestamp on the driver's
        clock; it advances the sampling window.  ``flagged`` marks the
        trace always-retain (error/degraded/fallback).  Returns
        ``"flagged"``, ``"head"``, or ``"deferred"`` (window candidate —
        resolved at window close or :meth:`flush`).
        """
        self._roll_window(ts)
        if flagged:
            self._commit(trace_id, "flagged")
            return "flagged"
        self._finished += 1
        if self.head_every and self._finished % self.head_every == 1 % self.head_every:
            self._commit(trace_id, "head")
            return "head"
        self._candidates.append((duration_s, self._finished, trace_id))
        return "deferred"

    def flush(self) -> None:
        """Close the open window and resolve its candidates (end of drive)."""
        self._close_window()
        self._window_start = None

    # ------------------------------------------------------------------
    def _roll_window(self, ts: float) -> None:
        if self._window_start is None:
            self._window_start = ts
            return
        while ts >= self._window_start + self.window_s:
            self._close_window()
            self._window_start += self.window_s

    def _close_window(self) -> None:
        if not self._candidates:
            return
        # Slowest first; ties broken by finish order so the decision is
        # deterministic even when durations repeat (the common case for
        # fixed cache latencies).
        ranked = sorted(self._candidates, key=lambda c: (-c[0], c[1]))
        for duration_s, _, trace_id in ranked[:self.slowest_k]:
            self._commit(trace_id, "slow")
        for duration_s, _, trace_id in ranked[self.slowest_k:]:
            self._drop(trace_id)
        self._candidates.clear()

    def _pop(self, trace_id: str) -> list[tuple["Tracer", "Span"]]:
        spans = self._buffers.pop(trace_id, [])
        self._buffered_spans -= len(spans)
        return spans

    def _commit(self, trace_id: str, reason: str) -> None:
        for tracer, span in self._pop(trace_id):
            tracer._commit(span)
        self.decisions[reason] += 1

    def _drop(self, trace_id: str) -> None:
        for tracer, span in self._pop(trace_id):
            tracer._discard(span)
        self.decisions["dropped"] += 1
