"""Snapshot drift detection: parent→child knowledge distribution shift.

A refresh that silently corrupts the knowledge graph — relation mix
collapsing onto one relation, critic scores cratering, half the edges
vanishing — is invisible to serving SLOs as long as requests stay fast.
This module compares two :class:`~repro.obs.kg_health.KgHealthReport`
objects along a snapshot lineage edge and scores the shift:

* Jensen–Shannon divergence (base 2, in ``[0, 1]``) on the relation and
  domain edge distributions;
* JS divergence on the critic-score histograms plus the raw drop in
  mean plausibility (a divergence can be large while quality *improves*;
  the mean-drop metric is directional);
* added/removed edge and entry rates relative to the parent.

Thresholds are declared as :class:`DriftRule` objects — the same
spec-shape discipline as :class:`~repro.obs.slo.SloSpec` — and a breach
materializes as a :class:`DriftBreach` mirroring the
:class:`~repro.obs.slo.Alert` surface (stable id, state, as_dict), so
the rollout controller can treat "knowledge drifted" exactly like "SLO
burned".  Everything here is pure python over plain report data: no
numpy, no clock, no registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.obs.kg_health import KgHealthReport

__all__ = [
    "js_divergence",
    "DriftRule",
    "DriftBreach",
    "DriftReport",
    "default_drift_rules",
    "evaluate_drift",
]


def js_divergence(p: Mapping[str, float] | Sequence[float],
                  q: Mapping[str, float] | Sequence[float]) -> float:
    """Jensen–Shannon divergence between two count distributions.

    Base-2, so the result is in ``[0, 1]``: 0 for identical mixes, 1
    for disjoint support.  Inputs are raw (unnormalized) counts, either
    as label→count mappings (aligned by key) or as parallel sequences
    (aligned by index).  Two empty distributions are identical (0.0);
    one empty against one populated is maximal (1.0).
    """
    if isinstance(p, Mapping) or isinstance(q, Mapping):
        p_map = dict(p) if isinstance(p, Mapping) else dict(enumerate(p))
        q_map = dict(q) if isinstance(q, Mapping) else dict(enumerate(q))
        keys = sorted(set(p_map) | set(q_map), key=str)
        p_counts = [float(p_map.get(key, 0.0)) for key in keys]
        q_counts = [float(q_map.get(key, 0.0)) for key in keys]
    else:
        width = max(len(p), len(q))
        p_counts = [float(v) for v in p] + [0.0] * (width - len(p))
        q_counts = [float(v) for v in q] + [0.0] * (width - len(q))
    p_total = sum(p_counts)
    q_total = sum(q_counts)
    if p_total <= 0.0 and q_total <= 0.0:
        return 0.0
    if p_total <= 0.0 or q_total <= 0.0:
        return 1.0

    def _kl_to_mixture(counts: list[float], total: float) -> float:
        acc = 0.0
        for c_self, c_p, c_q in zip(counts, p_counts, q_counts):
            if c_self <= 0.0:
                continue
            prob = c_self / total
            mix = 0.5 * (c_p / p_total + c_q / q_total)
            acc += prob * math.log2(prob / mix)
        return acc

    value = 0.5 * _kl_to_mixture(p_counts, p_total) \
        + 0.5 * _kl_to_mixture(q_counts, q_total)
    return min(1.0, max(0.0, value))


@dataclass(frozen=True)
class DriftRule:
    """One thresholded drift metric, declared like an SLO spec.

    ``metric`` names a key in the :class:`DriftReport` metrics mapping;
    the rule breaches when the observed value exceeds ``max_value``.
    """

    name: str
    description: str
    metric: str
    max_value: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("drift rule needs a name")
        if not self.metric:
            raise ValueError(f"drift rule {self.name!r} needs a metric")
        if not math.isfinite(self.max_value) or self.max_value < 0.0:
            raise ValueError(
                f"drift rule {self.name!r} needs a finite non-negative "
                f"max_value, got {self.max_value!r}"
            )


@dataclass(frozen=True)
class DriftBreach:
    """A drift rule exceeded its threshold — the knowledge-plane analogue
    of a firing :class:`~repro.obs.slo.Alert`."""

    breach_id: str
    rule: str
    metric: str
    value: float
    threshold: float
    state: str = "firing"

    def as_dict(self) -> dict:
        return {
            "breach_id": self.breach_id,
            "rule": self.rule,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "state": self.state,
        }


@dataclass(frozen=True)
class DriftReport:
    """All drift metrics for one parent→child lineage edge."""

    parent_version: str
    child_version: str
    metrics: Mapping[str, float]
    breaches: tuple[DriftBreach, ...]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def as_dict(self) -> dict:
        return {
            "parent_version": self.parent_version,
            "child_version": self.child_version,
            "metrics": dict(sorted(self.metrics.items())),
            "breaches": [breach.as_dict() for breach in self.breaches],
        }


def default_drift_rules() -> tuple[DriftRule, ...]:
    """The stock knowledge-quality gate.

    Mix-shift thresholds (0.35 bits) allow healthy growth — adding a
    relation or rebalancing domains moves JS divergence by well under
    0.1 — while a collapse onto a single relation scores near 1.0.
    Edge-rate bounds catch mass deletion (>25% of parent edges gone)
    and runaway growth (child more than 5× parent).  Entry rates are
    *measured* but unruled: an empty serving table is the serving
    guard's failure to catch, and ruling on it here would double-fire.
    """
    return (
        DriftRule(
            name="relation-mix-shift",
            description="relation edge distribution diverged from parent",
            metric="relation_js",
            max_value=0.35,
        ),
        DriftRule(
            name="domain-mix-shift",
            description="domain edge distribution diverged from parent",
            metric="domain_js",
            max_value=0.35,
        ),
        DriftRule(
            name="critic-plausibility-shift",
            description="plausibility score histogram diverged from parent",
            metric="plausibility_js",
            max_value=0.35,
        ),
        DriftRule(
            name="critic-typicality-shift",
            description="typicality score histogram diverged from parent",
            metric="typicality_js",
            max_value=0.35,
        ),
        DriftRule(
            name="critic-plausibility-collapse",
            description="mean plausibility dropped versus parent",
            metric="plausibility_mean_drop",
            max_value=0.2,
        ),
        DriftRule(
            name="edge-removal-rate",
            description="edges present in parent vanished from child",
            metric="removed_edge_rate",
            max_value=0.25,
        ),
        DriftRule(
            name="edge-growth-rate",
            description="child added edges far beyond parent volume",
            metric="added_edge_rate",
            max_value=4.0,
        ),
    )


def evaluate_drift(
    parent: KgHealthReport,
    child: KgHealthReport,
    *,
    added_edges: int = 0,
    removed_edges: int = 0,
    entries_added: int = 0,
    entries_removed: int = 0,
    rules: Sequence[DriftRule] | None = None,
) -> DriftReport:
    """Score a parent→child snapshot edge against drift rules.

    The distributional metrics come straight off the two health
    reports; the add/remove rates need the caller to diff the edge and
    entry sets (the reports only carry aggregates) — see
    :func:`repro.refresh.quality.snapshot_health` for the adapter that
    does both.
    """
    if rules is None:
        rules = default_drift_rules()
    parent_edges = max(parent.triples, 1)
    parent_entries = max(parent.entries, 1)
    metrics: dict[str, float] = {
        "relation_js": js_divergence(parent.relation_edges, child.relation_edges),
        "domain_js": js_divergence(parent.domain_edges, child.domain_edges),
        "plausibility_js": js_divergence(parent.plausibility.counts,
                                         child.plausibility.counts),
        "typicality_js": js_divergence(parent.typicality.counts,
                                       child.typicality.counts),
        "plausibility_mean_drop": max(
            0.0, parent.plausibility.mean - child.plausibility.mean),
        "typicality_mean_drop": max(
            0.0, parent.typicality.mean - child.typicality.mean),
        "added_edge_rate": added_edges / parent_edges,
        "removed_edge_rate": removed_edges / parent_edges,
        "entry_added_rate": entries_added / parent_entries,
        "entry_removed_rate": entries_removed / parent_entries,
    }
    breaches = []
    for rule in rules:
        value = metrics.get(rule.metric)
        if value is None:
            raise ValueError(
                f"drift rule {rule.name!r} references unknown metric "
                f"{rule.metric!r}"
            )
        if value > rule.max_value:
            breaches.append(DriftBreach(
                breach_id=f"{rule.name}#1",
                rule=rule.name,
                metric=rule.metric,
                value=value,
                threshold=rule.max_value,
            ))
    return DriftReport(
        parent_version=parent.version,
        child_version=child.version,
        metrics=metrics,
        breaches=tuple(breaches),
    )
