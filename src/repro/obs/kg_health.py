"""Knowledge-plane health: per-snapshot KG quality metrics.

The serving plane answers "are requests fast and successful"; this
module answers "is the *knowledge* itself healthy".  A
:class:`KgHealthReport` is computed in one vectorized pass directly off
a knowledge graph's columnar arrays (the ``columns()`` surface of
:class:`~repro.core.kg.KnowledgeGraph` — id columns, intern tables and
the lazy CSR ordering all reduce to ``np.bincount``/``np.histogram``
calls here):

* triple counts and per-relation / per-domain / per-behavior edge
  distributions (the relation-mix a drifting refresh corrupts first);
* head/tail degree distributions (hub collapse or explosion);
* critic-score histograms for plausibility and typicality (the Table 4
  quality signal — a snapshot whose scores collapsed is poisoned even
  if it serves fast);
* dedup accounting (support mass vs distinct edges) and the pipeline
  funnel (candidates → filtered → critic-accepted).

Reports publish into the shared
:class:`~repro.obs.metrics.MetricsRegistry` as labeled gauges and
export as a byte-deterministic ``repro.obs.kg_health/v1`` document
(:func:`kg_health_report` / :func:`validate_kg_health`), the same
exporter/validator pairing every other obs artifact uses.

Layering: this module is pure observation — it consumes a plain
``columns()`` mapping and never imports the core or refresh packages
(``obs`` depends only on ``utils``).  The adapter that walks snapshots
and stores lives in :mod:`repro.refresh.quality`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "KG_HEALTH_SCHEMA",
    "SCORE_BUCKET_EDGES",
    "DEGREE_BUCKETS",
    "FUNNEL_STAGES",
    "DegreeSummary",
    "ScoreHistogram",
    "KgHealthReport",
    "compute_kg_health",
    "publish_kg_health",
    "funnel_from_registry",
    "kg_health_report",
    "validate_kg_health",
]

KG_HEALTH_SCHEMA = "repro.obs.kg_health/v1"

#: Critic scores live in [0, 1]; ten equal-width bins.
SCORE_BUCKET_EDGES: tuple[float, ...] = tuple(round(i / 10.0, 1) for i in range(11))

#: Power-of-two degree bucket upper bounds; one implicit +Inf overflow.
DEGREE_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

#: The knowledge funnel stages, widest first.
FUNNEL_STAGES: tuple[str, ...] = ("candidates", "filtered", "critic_accepted")

#: Counter family the pipeline and refresher publish funnel items into.
FUNNEL_METRIC = "pipeline_funnel_total"


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution of one endpoint column (heads or tails).

    ``buckets`` are cumulative node counts at the :data:`DEGREE_BUCKETS`
    bounds plus a final ``+Inf`` overflow — the Prometheus histogram
    shape, so the validator can reuse the non-decreasing invariant.
    """

    nodes: int
    max: int
    mean: float
    buckets: tuple[tuple[float, int], ...]

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                {"le": "+Inf" if bound == float("inf") else bound, "count": count}
                for bound, count in self.buckets
            ],
        }


@dataclass(frozen=True)
class ScoreHistogram:
    """Fixed ten-bin histogram of one critic score column."""

    counts: tuple[int, ...]
    mean: float
    min: float
    max: float

    def as_dict(self) -> dict:
        return {
            "edges": list(SCORE_BUCKET_EDGES),
            "counts": list(self.counts),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


@dataclass(frozen=True)
class KgHealthReport:
    """One snapshot's knowledge-plane health, fully JSON-able."""

    version: str
    parent: str | None
    triples: int
    nodes: int
    entries: int
    relation_edges: Mapping[str, int]
    domain_edges: Mapping[str, int]
    behavior_edges: Mapping[str, int]
    head_degree: DegreeSummary
    tail_degree: DegreeSummary
    plausibility: ScoreHistogram
    typicality: ScoreHistogram
    support_total: int
    merged_edges: int
    dedup_ratio: float
    funnel: Mapping[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "parent": self.parent,
            "triples": self.triples,
            "nodes": self.nodes,
            "entries": self.entries,
            "relation_edges": dict(sorted(self.relation_edges.items())),
            "domain_edges": dict(sorted(self.domain_edges.items())),
            "behavior_edges": dict(sorted(self.behavior_edges.items())),
            "head_degree": self.head_degree.as_dict(),
            "tail_degree": self.tail_degree.as_dict(),
            "plausibility": self.plausibility.as_dict(),
            "typicality": self.typicality.as_dict(),
            "support_total": self.support_total,
            "merged_edges": self.merged_edges,
            "dedup_ratio": self.dedup_ratio,
            "funnel": dict(sorted(self.funnel.items())),
        }


def _labeled_counts(ids: np.ndarray, table: Sequence[str]) -> dict[str, int]:
    """Per-label edge counts via one bincount over an id column."""
    if len(ids) == 0:
        return {}
    counts = np.bincount(ids, minlength=len(table))
    return {table[i]: int(counts[i]) for i in np.nonzero(counts)[0]}


def _degree_summary(ids: np.ndarray, n_nodes: int) -> DegreeSummary:
    """Degree distribution of one endpoint column via bincount."""
    if len(ids) == 0:
        buckets = tuple((float(b), 0) for b in DEGREE_BUCKETS) + ((float("inf"), 0),)
        return DegreeSummary(nodes=0, max=0, mean=0.0, buckets=buckets)
    degrees = np.bincount(ids, minlength=n_nodes)
    active = degrees[degrees > 0]
    bounds = np.array(DEGREE_BUCKETS, dtype=np.float64)
    cumulative = np.searchsorted(np.sort(active), bounds, side="right")
    buckets = tuple(
        (float(b), int(c)) for b, c in zip(DEGREE_BUCKETS, cumulative)
    ) + ((float("inf"), int(active.size)),)
    return DegreeSummary(
        nodes=int(active.size),
        max=int(active.max()),
        mean=float(active.mean()),
        buckets=buckets,
    )


def _score_histogram(values: np.ndarray) -> ScoreHistogram:
    if len(values) == 0:
        return ScoreHistogram(counts=(0,) * (len(SCORE_BUCKET_EDGES) - 1),
                              mean=0.0, min=0.0, max=0.0)
    clipped = np.clip(values, 0.0, 1.0)
    counts, _ = np.histogram(clipped, bins=np.asarray(SCORE_BUCKET_EDGES))
    return ScoreHistogram(
        counts=tuple(int(c) for c in counts),
        mean=float(clipped.mean()),
        min=float(clipped.min()),
        max=float(clipped.max()),
    )


def compute_kg_health(
    columns: Mapping[str, Any],
    *,
    version: str = "",
    parent: str | None = None,
    entries: int = 0,
    funnel: Mapping[str, int] | None = None,
) -> KgHealthReport:
    """One vectorized pass over a graph's ``columns()`` mapping.

    ``columns`` is the surface :meth:`repro.core.kg.KnowledgeGraph.columns`
    returns: parallel numpy id/score columns plus intern-table string
    tuples.  Everything here is bincount/histogram work — no per-edge
    Python loop — so health stays cheap next to snapshot building
    (``bench_kg_health_overhead`` pins the ratio).
    """
    heads = np.asarray(columns["head"])
    tails = np.asarray(columns["tail"])
    support = np.asarray(columns["support"])
    nodes = columns["nodes"]
    n_edges = int(len(heads))
    support_total = int(support.sum()) if n_edges else 0
    merged = int(np.count_nonzero(support > 1)) if n_edges else 0
    return KgHealthReport(
        version=version,
        parent=parent,
        triples=n_edges,
        nodes=len(nodes),
        entries=int(entries),
        relation_edges=_labeled_counts(np.asarray(columns["relation"]),
                                       columns["relations"]),
        domain_edges=_labeled_counts(np.asarray(columns["domain"]),
                                     columns["domains"]),
        behavior_edges=_labeled_counts(np.asarray(columns["behavior"]),
                                       columns["behaviors"]),
        head_degree=_degree_summary(heads, len(nodes)),
        tail_degree=_degree_summary(tails, len(nodes)),
        plausibility=_score_histogram(np.asarray(columns["plausibility"])),
        typicality=_score_histogram(np.asarray(columns["typicality"])),
        support_total=support_total,
        merged_edges=merged,
        dedup_ratio=(support_total / n_edges) if n_edges else 1.0,
        funnel=dict(funnel or {}),
    )


def publish_kg_health(report: KgHealthReport, registry: Any) -> None:
    """Publish one report into a shared metrics registry as gauges.

    Every family is labeled by snapshot ``version`` so successive
    snapshots coexist in one registry and the time-series scrape loop
    picks up knowledge health for free.
    """
    version = report.version or "unversioned"
    for name, help_text, value in (
        ("kg_health_triples", "distinct KG edges in the snapshot", report.triples),
        ("kg_health_nodes", "interned nodes in the snapshot graph", report.nodes),
        ("kg_health_entries", "serving-table entries in the snapshot", report.entries),
        ("kg_health_support_total", "total support mass across edges", report.support_total),
        ("kg_health_merged_edges", "edges that absorbed duplicates (support > 1)", report.merged_edges),
        ("kg_health_dedup_ratio", "support mass per distinct edge", report.dedup_ratio),
        ("kg_health_head_degree_max", "largest head out-degree", report.head_degree.max),
        ("kg_health_tail_degree_max", "largest tail in-degree", report.tail_degree.max),
    ):
        registry.gauge(name, help_text, ("version",)).labels(version=version).set(value)
    for family, label, counts in (
        ("kg_health_relation_edges", "relation", report.relation_edges),
        ("kg_health_domain_edges", "domain", report.domain_edges),
        ("kg_health_behavior_edges", "behavior", report.behavior_edges),
    ):
        gauge = registry.gauge(family, f"edges per {label}", ("version", label))
        for value_name, count in sorted(counts.items()):
            gauge.labels(**{"version": version, label: value_name}).set(count)
    score_gauge = registry.gauge("kg_health_critic_score_mean",
                                 "mean critic score per dimension",
                                 ("version", "score"))
    score_gauge.labels(version=version, score="plausibility").set(report.plausibility.mean)
    score_gauge.labels(version=version, score="typicality").set(report.typicality.mean)
    if report.funnel:
        funnel = registry.gauge("kg_health_funnel_items",
                                "knowledge funnel items per stage",
                                ("version", "stage"))
        for stage, items in sorted(report.funnel.items()):
            funnel.labels(version=version, stage=stage).set(items)


def funnel_from_registry(registry: Any) -> dict[str, int]:
    """Read the pipeline funnel counters back as a plain stage map.

    The pipeline and the refresher both publish into
    ``pipeline_funnel_total{stage}``; this folds the family into the
    ``funnel`` mapping :func:`compute_kg_health` accepts.
    """
    if FUNNEL_METRIC not in registry:
        return {}
    out: dict[str, int] = {}
    for labels, child in registry.get(FUNNEL_METRIC).samples():
        out[labels["stage"]] = int(child.value)
    return out


def _payload(item: Any) -> Mapping[str, Any]:
    return item.as_dict() if hasattr(item, "as_dict") else item


def kg_health_report(
    reports: Sequence[KgHealthReport],
    drift: Sequence[Any] = (),
    gates: Sequence[Any] = (),
) -> dict:
    """The ``repro.obs.kg_health/v1`` document: snapshot health reports
    in lineage order, plus any drift reports and gate decisions.

    ``drift`` / ``gates`` items may be dataclasses with ``as_dict`` (the
    shapes from :mod:`repro.obs.drift` and
    :mod:`repro.refresh.quality`) or already-rendered mappings.  Fully
    deterministic for deterministic inputs — no timestamps, no ids.
    """
    return {
        "schema": KG_HEALTH_SCHEMA,
        "snapshots": [report.as_dict() for report in reports],
        "drift": [dict(_payload(item)) for item in drift],
        "gates": [dict(_payload(item)) for item in gates],
    }


def _fail(where: str, message: str) -> None:
    raise ValueError(f"invalid kg health report at {where}: {message}")


def _check_number(where: str, value: object) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(where, f"expected a number, got {type(value).__name__}")


def _check_count(where: str, value: object) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        _fail(where, "expected a non-negative integer")
    return int(value)  # for mypy; _fail always raises


def _check_count_map(where: str, value: object) -> int:
    if not isinstance(value, Mapping):
        _fail(where, "expected an object")
        return 0
    total = 0
    for key, count in value.items():
        if not isinstance(key, str) or not key:
            _fail(where, "keys must be non-empty strings")
        total += _check_count(f"{where}[{key!r}]", count)
    return total


def _check_buckets(where: str, value: object) -> None:
    if not isinstance(value, list) or not value:
        _fail(where, "expected a non-empty list")
        return
    previous = 0
    for index, bucket in enumerate(value):
        b_where = f"{where}[{index}]"
        if not isinstance(bucket, Mapping):
            _fail(b_where, "expected an object")
        count = _check_count(f"{b_where}.count", bucket.get("count"))
        if count < previous:
            _fail(f"{b_where}.count", "bucket counts must be non-decreasing")
        previous = count
        le = bucket.get("le")
        if le != "+Inf":
            _check_number(f"{b_where}.le", le)
    if value[-1].get("le") != "+Inf":
        _fail(where, "last bucket must be the +Inf overflow bucket")


def _check_degree(where: str, value: object) -> None:
    if not isinstance(value, Mapping):
        _fail(where, "expected an object")
        return
    nodes = _check_count(f"{where}.nodes", value.get("nodes"))
    _check_count(f"{where}.max", value.get("max"))
    _check_number(f"{where}.mean", value.get("mean"))
    _check_buckets(f"{where}.buckets", value.get("buckets"))
    last = value["buckets"][-1]["count"]
    if last != nodes:
        _fail(f"{where}.buckets", f"overflow bucket holds {last} nodes, "
              f"summary says {nodes}")


def _check_score_histogram(where: str, value: object, triples: int) -> None:
    if not isinstance(value, Mapping):
        _fail(where, "expected an object")
        return
    edges = value.get("edges")
    if not isinstance(edges, list) or len(edges) < 2:
        _fail(f"{where}.edges", "expected a list of at least two bin edges")
    counts = value.get("counts")
    if not isinstance(counts, list) or len(counts) != len(edges) - 1:
        _fail(f"{where}.counts", "expected one count per bin")
    total = sum(_check_count(f"{where}.counts[{i}]", c)
                for i, c in enumerate(counts))
    if total != triples:
        _fail(f"{where}.counts", f"bin counts sum to {total}, "
              f"snapshot has {triples} triples")
    for key in ("mean", "min", "max"):
        _check_number(f"{where}.{key}", value.get(key))


def _check_snapshot(where: str, snap: object) -> None:
    if not isinstance(snap, Mapping):
        _fail(where, "expected an object")
        return
    if not isinstance(snap.get("version"), str):
        _fail(f"{where}.version", "expected a string")
    parent = snap.get("parent")
    if parent is not None and not isinstance(parent, str):
        _fail(f"{where}.parent", "expected a string or null")
    triples = _check_count(f"{where}.triples", snap.get("triples"))
    for key in ("nodes", "entries", "support_total", "merged_edges"):
        _check_count(f"{where}.{key}", snap.get(key))
    _check_number(f"{where}.dedup_ratio", snap.get("dedup_ratio"))
    for key in ("relation_edges", "domain_edges", "behavior_edges"):
        total = _check_count_map(f"{where}.{key}", snap.get(key))
        if total != triples:
            _fail(f"{where}.{key}", f"edge counts sum to {total}, "
                  f"snapshot has {triples} triples")
    for key in ("head_degree", "tail_degree"):
        _check_degree(f"{where}.{key}", snap.get(key))
    for key in ("plausibility", "typicality"):
        _check_score_histogram(f"{where}.{key}", snap.get(key), triples)
    funnel = snap.get("funnel")
    _check_count_map(f"{where}.funnel", funnel)
    assert isinstance(funnel, Mapping)  # narrowed by _check_count_map
    if all(stage in funnel for stage in FUNNEL_STAGES):
        widths = [funnel[stage] for stage in FUNNEL_STAGES]
        if any(a < b for a, b in zip(widths, widths[1:])):
            _fail(f"{where}.funnel",
                  "funnel must narrow: candidates >= filtered >= critic_accepted")


def _check_drift(where: str, item: object) -> None:
    if not isinstance(item, Mapping):
        _fail(where, "expected an object")
        return
    for key in ("parent_version", "child_version"):
        if not isinstance(item.get(key), str):
            _fail(f"{where}.{key}", "expected a string")
    metrics = item.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        _fail(f"{where}.metrics", "expected a non-empty object")
        return
    for key, value in metrics.items():
        _check_number(f"{where}.metrics[{key!r}]", value)
    breaches = item.get("breaches")
    if not isinstance(breaches, list):
        _fail(f"{where}.breaches", "expected a list")
        return
    for index, breach in enumerate(breaches):
        b_where = f"{where}.breaches[{index}]"
        if not isinstance(breach, Mapping):
            _fail(b_where, "expected an object")
        for key in ("breach_id", "rule", "metric"):
            if not isinstance(breach.get(key), str) or not breach.get(key):
                _fail(f"{b_where}.{key}", "expected a non-empty string")
        if breach["metric"] not in metrics:
            _fail(f"{b_where}.metric",
                  f"breached metric {breach['metric']!r} missing from metrics")
        for key in ("value", "threshold"):
            _check_number(f"{b_where}.{key}", breach.get(key))
        if breach.get("state") != "firing":
            _fail(f"{b_where}.state", "gate breaches always report as firing")


def _check_gate(where: str, item: object) -> None:
    if not isinstance(item, Mapping):
        _fail(where, "expected an object")
        return
    if not isinstance(item.get("version"), str):
        _fail(f"{where}.version", "expected a string")
    if not isinstance(item.get("promote"), bool):
        _fail(f"{where}.promote", "expected a boolean")
    breaches = item.get("breaches")
    if not isinstance(breaches, list) or any(
            not isinstance(b, str) for b in breaches):
        _fail(f"{where}.breaches", "expected a list of strings")
    if item["promote"] and breaches:
        _fail(f"{where}.promote", "a promoting decision cannot carry breaches")
    if not item["promote"] and not breaches:
        _fail(f"{where}.promote", "a blocking decision must name its breaches")


def validate_kg_health(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the
    ``repro.obs.kg_health/v1`` schema produced by :func:`kg_health_report`."""
    if not isinstance(payload, Mapping):
        raise ValueError("kg health report must be a JSON object")
    if payload.get("schema") != KG_HEALTH_SCHEMA:
        _fail("schema",
              f"expected {KG_HEALTH_SCHEMA!r}, got {payload.get('schema')!r}")
    snapshots = payload.get("snapshots")
    if not isinstance(snapshots, list):
        _fail("snapshots", "expected a list")
        return
    for index, snap in enumerate(snapshots):
        _check_snapshot(f"snapshots[{index}]", snap)
    drift = payload.get("drift")
    if not isinstance(drift, list):
        _fail("drift", "expected a list")
        return
    for index, item in enumerate(drift):
        _check_drift(f"drift[{index}]", item)
    gates = payload.get("gates")
    if not isinstance(gates, list):
        _fail("gates", "expected a list")
        return
    for index, item in enumerate(gates):
        _check_gate(f"gates[{index}]", item)
