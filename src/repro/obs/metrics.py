"""Dependency-free metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named metric families; a family fans
out into labeled children (one instrument per label-value combination),
mirroring the Prometheus data model so the exposition exporter in
:mod:`repro.obs.export` is a direct rendering.

The :class:`Histogram` is a *streaming* fixed-bucket estimator: it keeps
one integer per bucket plus exact ``count``/``sum``/``min``/``max`` and
never stores individual samples, so metric memory stays O(buckets)
regardless of traffic volume — the fix for the unbounded
``request_latencies_s`` list the serving layer used to grow.  Percentile
estimates interpolate linearly inside the bucket that contains the
requested rank, clamped to the observed ``[min, max]`` range, which
keeps them exact when a bucket holds a single repeated value (the common
case for the fixed cache/degraded latencies).
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterable, Iterator

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]

#: Log-ish spaced latency buckets (seconds) spanning cache lookups
#: (~2 ms) through direct 30B-parameter model calls (whole minutes).
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064,
    0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 120.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing value (requests, retries, ...)."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        self._value += amount


class Gauge:
    """A value that can go up and down (queue depth, breaker state)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Histogram:
    """Fixed-bucket streaming distribution with percentile estimates.

    ``bounds`` are strictly increasing bucket upper bounds with ``le``
    (less-or-equal) semantics; one implicit overflow bucket catches
    everything above the last bound.  Memory is O(len(bounds)) forever.
    """

    kind = "histogram"
    __slots__ = ("bounds", "_counts", "count", "sum", "_min", "_max",
                 "_exemplars")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        #: per-bucket representative observation: (trace_id, value).
        self._exemplars: list[tuple[str, float] | None] = \
            [None] * (len(bounds) + 1)

    @property
    def min(self) -> float:
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        return 0.0 if self._max is None else self._max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def observe(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        self._counts[index] += 1
        self.count += 1
        self.sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if exemplar is not None:
            # Latest-wins per bucket: each bucket remembers one concrete
            # trace id an operator can pull up for "what does a request
            # in this latency band look like".
            self._exemplars[index] = (exemplar, value)

    def exemplars(self) -> list[tuple[float, str, float]]:
        """``(bucket upper bound, trace_id, value)`` for occupied buckets."""
        out: list[tuple[float, str, float]] = []
        for index, entry in enumerate(self._exemplars):
            if entry is None:
                continue
            bound = (self.bounds[index] if index < len(self.bounds)
                     else float("inf"))
            out.append((bound, entry[0], entry[1]))
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's samples into this one, in place.

        Both histograms must share identical bucket bounds; counts and
        sums add exactly, min/max stay exact.  Returns ``self`` so a
        fresh copy reads ``Histogram(h.bounds).merge(h)`` — the scrape
        loop uses exactly that to remember the previous cumulative state.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{len(self.bounds)} vs {len(other.bounds)} buckets"
            )
        for index, bucket in enumerate(other._counts):
            self._counts[index] += bucket
            if other._exemplars[index] is not None:
                self._exemplars[index] = other._exemplars[index]
        self.count += other.count
        self.sum += other.sum
        if other._min is not None:
            self._min = other._min if self._min is None else min(self._min, other._min)
        if other._max is not None:
            self._max = other._max if self._max is None else max(self._max, other._max)
        return self

    def delta(self, earlier: "Histogram") -> "Histogram":
        """The window of samples observed since ``earlier`` was captured.

        ``earlier`` must be a previous state of this histogram (same
        bounds, per-bucket counts no larger than the current ones);
        counts and sum subtract exactly.  The window's min/max cannot be
        recovered exactly from cumulative state, so they are estimated
        at bucket resolution: min is the tightest known lower bound of
        the lowest occupied bucket, max the tightest known upper bound
        of the highest — :meth:`percentile` on the window stays monotone
        and clamped to a range that contains every windowed sample.
        """
        if earlier.bounds != self.bounds:
            raise ValueError(
                f"cannot diff histograms with different bounds: "
                f"{len(self.bounds)} vs {len(earlier.bounds)} buckets"
            )
        window = Histogram(self.bounds)
        for index, bucket in enumerate(earlier._counts):
            diff = self._counts[index] - bucket
            if diff < 0:
                raise ValueError(
                    "delta() needs an earlier state of the same histogram; "
                    f"bucket {index} shrank from {bucket} to {self._counts[index]}"
                )
            window._counts[index] = diff
        window.count = self.count - earlier.count
        window.sum = self.sum - earlier.sum
        occupied = [i for i, c in enumerate(window._counts) if c > 0]
        if occupied:
            lo, hi = occupied[0], occupied[-1]
            low_bound = self.min if lo == 0 else max(self.min, self.bounds[lo - 1])
            high_bound = self.max if hi == len(self.bounds) else min(self.max, self.bounds[hi])
            window._min = low_bound
            window._max = max(high_bound, low_bound)
        else:
            window.sum = 0.0
        return window

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs; the overflow bucket
        is reported with ``float('inf')`` as its bound."""
        cumulative = 0
        out: list[tuple[float, int]] = []
        for bound, bucket in zip((*self.bounds, float("inf")), self._counts):
            cumulative += bucket
            out.append((bound, cumulative))
        return out

    def percentile(self, q: float) -> float:
        """Streaming estimate of the ``q``-th percentile (``q`` in [0, 100]).

        Exact at the extremes (``min``/``max`` are tracked exactly);
        inside a bucket the estimate interpolates linearly between the
        bucket's effective bounds.  Monotone in ``q`` by construction.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if q <= 0.0 or self._min == self._max:
            return self.min
        if q >= 100.0:
            return self.max
        rank = q / 100.0 * self.count
        cumulative = 0
        for index, bucket in enumerate(self._counts):
            if bucket == 0:
                continue
            if cumulative + bucket >= rank:
                raw_lo = self.bounds[index - 1] if index > 0 else self.min
                raw_hi = self.bounds[index] if index < len(self.bounds) else self.max
                lo = max(raw_lo, self.min)
                hi = max(min(raw_hi, self.max), lo)
                fraction = (rank - cumulative) / bucket
                return lo + fraction * (hi - lo)
            cumulative += bucket
        return self.max


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and per-label children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in _INSTRUMENTS:
            raise ValueError(f"unknown metric kind {kind!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS_S)
            else:
                child = _INSTRUMENTS[self.kind]()
            self._children[key] = child
        return child

    def samples(self) -> Iterator[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """``(labels, child)`` pairs in deterministic label order."""
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]

    # -- unlabeled convenience (valid only when labelnames is empty) ----
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.labels().set(value)  # type: ignore[union-attr]

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.labels().observe(value, exemplar)  # type: ignore[union-attr, call-arg]

    def percentile(self, q: float) -> float:
        return self.labels().percentile(q)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self.labels().value  # type: ignore[union-attr]


class MetricsRegistry:
    """Named metric families with get-or-create registration.

    Re-registering an existing name returns the existing family after
    validating that kind, label schema and buckets agree — so components
    sharing a registry (e.g. two :class:`CosmoService` instances in one
    bench) converge on one family and differ only by label values.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._register(name, "counter", help, labelnames, None)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, tuple(buckets))

    def get(self, name: str) -> MetricFamily:
        return self._families[name]

    def families(self) -> list[MetricFamily]:
        """Registered families sorted by name (deterministic exports)."""
        return [self._families[name] for name in sorted(self._families)]

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, got {tuple(labelnames)}"
                )
            if kind == "histogram" and buckets is not None and existing.buckets != buckets:
                raise ValueError(f"metric {name!r} already registered with other buckets")
            return existing
        family = MetricFamily(name, kind, help, tuple(labelnames), buckets)
        self._families[name] = family
        return family
