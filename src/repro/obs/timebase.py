"""The repo's one sanctioned wall-clock call site.

Everything that *behaves* on time runs on simulated clocks —
:class:`~repro.serving.clock.SimClock` in serving, the LLM
simulated-seconds accumulator in the pipeline — so tests, benches and
chaos scenarios replay bit-identically.  Real elapsed-time *profiling*
(how long did this stage actually take on this machine?) is inherently
nondeterministic, and this module is the narrow waist it flows through:
cosmolint's ``wall-clock`` rule allowlists exactly ``obs/timebase.py``;
a ``time.perf_counter`` call anywhere else in the tree is a lint error.

Wall-clock numbers must never feed metrics snapshots, traces, or any
other artifact that is asserted byte-identical across runs — keep them
in clearly-marked profile sections only.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["wall_now", "WallProfiler"]


def wall_now() -> float:
    """Monotonic wall-clock seconds (the only ``perf_counter`` call)."""
    return time.perf_counter()


class WallProfiler:
    """Accumulates real elapsed seconds per named section.

    The report is explicitly marked nondeterministic so downstream
    tooling never mistakes it for simulated-time output.
    """

    def __init__(self) -> None:
        self._sections: dict[str, tuple[float, int]] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        started = wall_now()
        try:
            yield
        finally:
            elapsed = wall_now() - started
            total, count = self._sections.get(name, (0.0, 0))
            self._sections[name] = (total + elapsed, count + 1)

    def total_s(self, name: str) -> float:
        return self._sections.get(name, (0.0, 0))[0]

    def report(self) -> str:
        lines = ["wall-clock profile (nondeterministic; for humans only):"]
        for name, (total, count) in self._sections.items():
            lines.append(f"  {name:<24s} {total:9.3f}s  ({count} run(s))")
        if len(lines) == 1:
            lines.append("  (no sections profiled)")
        return "\n".join(lines)
