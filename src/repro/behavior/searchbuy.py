"""Search-buy behavior simulator (§3.1, §3.2.1).

A search-buy record is a (query, purchased product) pair with click and
purchase counts.  Broad queries buy products serving the query's latent
intent; specific queries buy products of the named type; a noise fraction
buys an unrelated product.  Query engagement (clicks/purchases) follows
the query popularity so the purchase-rate and click-rate thresholds of
the paper's sampling strategy have real distributions to cut.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.behavior.world import World
from repro.catalog.queries import Query
from repro.utils.rng import spawn_rng

__all__ = ["SearchBuyRecord", "SearchBuyLog", "simulate_searchbuy"]


@dataclass(frozen=True)
class SearchBuyRecord:
    """An aggregated (query, product) purchase edge."""

    record_id: str
    query_id: str
    product_id: str
    domain: str
    clicks: int
    purchases: int
    intent_id: str | None  # ground truth; None for noise records


class SearchBuyLog:
    """Aggregated search-buy records with engagement lookups."""

    def __init__(self, records: list[SearchBuyRecord]):
        self.records = records
        self._query_purchases: Counter[str] = Counter()
        self._query_clicks: Counter[str] = Counter()
        self._product_purchases: Counter[str] = Counter()
        for record in records:
            self._query_purchases[record.query_id] += record.purchases
            self._query_clicks[record.query_id] += record.clicks
            self._product_purchases[record.product_id] += record.purchases

    def __len__(self) -> int:
        return len(self.records)

    def for_domain(self, domain: str) -> list[SearchBuyRecord]:
        return [record for record in self.records if record.domain == domain]

    def query_engagement(self, query_id: str) -> tuple[int, int]:
        """Total (clicks, purchases) observed for a query."""
        return self._query_clicks[query_id], self._query_purchases[query_id]

    def purchase_rate(self, query_id: str) -> float:
        clicks, purchases = self.query_engagement(query_id)
        if clicks == 0:
            return 0.0
        return purchases / clicks

    def product_degree(self, product_id: str) -> int:
        """Purchases of a product across all queries (popularity proxy)."""
        return self._product_purchases[product_id]


def _pick_product(world: World, query: Query, rng: np.random.Generator):
    """Choose the purchased product for a query, honoring ground truth."""
    if query.breadth == "broad" and query.intent_id is not None:
        candidates = world.catalog.serving_intent(query.intent_id)
        intent_id = query.intent_id
    elif query.product_type is not None:
        candidates = world.catalog.for_type(query.domain, query.product_type)
        intent_id = None
    else:
        candidates = []
        intent_id = None
    if not candidates:
        return None
    popularity = np.array([p.popularity for p in candidates])
    chosen = candidates[int(rng.choice(len(candidates), p=popularity / popularity.sum()))]
    if intent_id is None and chosen.intent_ids:
        # Specific-query purchases still have a latent reason: one of the
        # product's own intents, used by the oracle when judging knowledge.
        intent_id = chosen.intent_ids[int(rng.integers(len(chosen.intent_ids)))]
    return chosen, intent_id


def simulate_searchbuy(
    world: World,
    records_per_domain: int = 150,
    noise_rate: float = 0.12,
    seed: int = 0,
) -> SearchBuyLog:
    """Emit search-buy behavior for every domain of the world."""
    rng = spawn_rng(seed, "searchbuy")
    records: list[SearchBuyRecord] = []
    for domain_index, domain in enumerate(sorted({q.domain for q in world.queries.all()})):
        queries = world.queries.for_domain(domain)
        popularity = np.array([q.popularity for q in queries])
        weights = popularity / popularity.sum()
        counter = 0
        for _ in range(records_per_domain):
            query = queries[int(rng.choice(len(queries), p=weights))]
            if rng.random() < noise_rate:
                products = world.catalog.all()
                product = products[int(rng.integers(len(products)))]
                intent_id = None
            else:
                picked = _pick_product(world, query, rng)
                if picked is None:
                    continue
                product, intent_id = picked
            clicks = int(rng.geometric(1.0 / (2.0 + query.popularity)))
            purchases = max(1, int(rng.binomial(clicks, 0.4)))
            records.append(
                SearchBuyRecord(
                    record_id=f"sb{domain_index:02d}-{counter:05d}",
                    query_id=query.query_id,
                    product_id=product.product_id,
                    domain=domain,
                    clicks=max(clicks, purchases),
                    purchases=purchases,
                    intent_id=intent_id,
                )
            )
            counter += 1
    return SearchBuyLog(records)
