"""The assembled synthetic world: intents + catalog + queries.

A :class:`World` is the single source of ground truth every simulator and
evaluation reads from.  Its size is controlled by :class:`WorldConfig`, so
tests run on a tiny world while benchmarks scale the same code up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.behavior.intents import IntentSpace
from repro.catalog.products import ProductCatalog, build_catalog
from repro.catalog.queries import QueryLog, SpecificityService, build_queries

__all__ = ["WorldConfig", "World"]


@dataclass(frozen=True)
class WorldConfig:
    """Scale knobs for world generation."""

    seed: int = 0
    products_per_domain: int = 60
    broad_queries_per_domain: int = 30
    specific_queries_per_domain: int = 30

    def scaled(self, factor: float) -> "WorldConfig":
        """A config with all population sizes multiplied by ``factor``."""
        return WorldConfig(
            seed=self.seed,
            products_per_domain=max(1, int(self.products_per_domain * factor)),
            broad_queries_per_domain=max(1, int(self.broad_queries_per_domain * factor)),
            specific_queries_per_domain=max(1, int(self.specific_queries_per_domain * factor)),
        )


class World:
    """Ground-truth container for one simulated marketplace."""

    def __init__(self, config: WorldConfig | None = None):
        self.config = config or WorldConfig()
        self.intents = IntentSpace(seed=self.config.seed)
        self.catalog: ProductCatalog = build_catalog(
            self.intents,
            products_per_domain=self.config.products_per_domain,
            seed=self.config.seed,
        )
        self.queries: QueryLog = build_queries(
            self.intents,
            self.catalog,
            broad_per_domain=self.config.broad_queries_per_domain,
            specific_per_domain=self.config.specific_queries_per_domain,
            seed=self.config.seed,
        )
        self.specificity = SpecificityService(self.catalog)

    def describe(self) -> dict[str, int]:
        """Summary counts (useful in logs and docs)."""
        return {
            "intents": len(self.intents),
            "products": len(self.catalog),
            "queries": len(self.queries),
        }
