"""ESCI-style search-relevance dataset generator (§4.1.1, Table 5).

Reproduces the KDD Cup 2022 Shopping Queries task shape: each example is
a (query, product) pair labeled **Exact / Substitute / Complement /
Irrelevant**, with the realistic Exact-heavy class imbalance.  Labels are
derived from world ground truth:

* *Exact* — the product serves the query's intent (broad) or is of the
  named type (specific);
* *Substitute* — a different-type product serving a sibling/similar
  intent;
* *Complement* — a product sharing one of an exact product's *other*
  intents (the "bought together" relation);
* *Irrelevant* — a random product from another domain.

Multiple locales (KDD Cup public, US, CA, UK, IN) differ in size and in
surface vocabulary via locale word-substitution maps, mimicking the
language-habit drift §4.1.4 studies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.behavior.world import World
from repro.catalog.products import Product
from repro.catalog.queries import Query
from repro.utils.rng import spawn_rng

__all__ = ["ESCILabel", "ESCIExample", "ESCIDataset", "LOCALES", "generate_esci"]

ESCI_LABELS: tuple[str, ...] = ("Exact", "Substitute", "Complement", "Irrelevant")

# Target class mix (Exact-heavy, as in the real ESCI data / Table 5's
# "# Exact Pairs" dominating the totals).
_LABEL_WEIGHTS = {"Exact": 0.62, "Substitute": 0.20, "Complement": 0.08, "Irrelevant": 0.10}

# Locale word drift: applied to query and title text.
_LOCALE_SUBSTITUTIONS: dict[str, dict[str, str]] = {
    "KDD Cup": {},
    "US": {},
    "CA": {"waterproof": "water resistant", "holiday": "winter holiday"},
    "UK": {
        "diaper": "nappy", "stroller": "pushchair", "flashlight": "torch",
        "waterproof": "showerproof", "vacation": "holiday", "sneakers": "trainers",
    },
    "IN": {
        "waterproof": "monsoon proof", "rain": "monsoon", "winter": "cold season",
        "backyard": "terrace", "holiday": "festival",
    },
}

LOCALES: tuple[str, ...] = tuple(_LOCALE_SUBSTITUTIONS)

# Relative dataset sizes per locale (Table 5: CA is smallest, IN largest).
LOCALE_SCALE: dict[str, float] = {
    "KDD Cup": 1.0, "US": 0.85, "CA": 0.16, "UK": 0.34, "IN": 1.05,
}


class ESCILabel:
    """Label constants (kept as plain strings for easy reporting)."""

    EXACT = "Exact"
    SUBSTITUTE = "Substitute"
    COMPLEMENT = "Complement"
    IRRELEVANT = "Irrelevant"


@dataclass(frozen=True)
class ESCIExample:
    """One labeled (query, product) relevance pair."""

    example_id: str
    locale: str
    query_id: str
    query_text: str
    product_id: str
    product_title: str
    label: str
    # Ground-truth intent of the query (None for specific/irrelevant pairs);
    # used only by the knowledge generator and the oracle, never by models.
    intent_id: str | None


@dataclass
class ESCIDataset:
    """Train/test split for one locale."""

    locale: str
    train: list[ESCIExample]
    test: list[ESCIExample]

    def stats(self) -> dict[str, int]:
        """Table 5-shaped statistics for this locale."""
        examples = self.train + self.test
        labels = Counter(e.label for e in examples)
        return {
            "train_pairs": len(self.train),
            "test_pairs": len(self.test),
            "exact_pairs": labels[ESCILabel.EXACT],
            "unique_queries": len({e.query_id for e in examples}),
            "unique_products": len({e.product_id for e in examples}),
        }

    def label_distribution(self) -> Counter:
        return Counter(e.label for e in self.train + self.test)


def _localize(text: str, locale: str) -> str:
    for source, target in _LOCALE_SUBSTITUTIONS[locale].items():
        text = text.replace(source, target)
    return text


class _LabelSampler:
    """Samples products for each label given a query's ground truth."""

    def __init__(self, world: World, rng: np.random.Generator):
        self.world = world
        self.rng = rng
        self._all_products = world.catalog.all()

    def exact(self, query: Query) -> Product | None:
        if query.breadth == "broad" and query.intent_id is not None:
            candidates = self.world.catalog.serving_intent(query.intent_id)
        elif query.product_type is not None:
            candidates = self.world.catalog.for_type(query.domain, query.product_type)
        else:
            candidates = []
        return self._pick(candidates)

    def substitute(self, query: Query) -> Product | None:
        """Different-type product serving a *similar* intent."""
        anchor_intent = self._query_intent(query)
        if anchor_intent is None:
            return None
        exact_types = {
            p.product_type for p in self.world.catalog.serving_intent(anchor_intent)
        }
        similar = [
            intent
            for intent in self.world.intents.for_domain(query.domain)
            if intent.intent_id != anchor_intent
            and self.world.intents.similarity(intent.intent_id, anchor_intent) > 0.2
        ]
        candidates = [
            p
            for intent in similar
            for p in self.world.catalog.serving_intent(intent.intent_id)
            if p.product_type not in exact_types
        ]
        return self._pick(candidates)

    def complement(self, query: Query) -> Product | None:
        """Product sharing one of an exact product's *other* intents."""
        anchor_intent = self._query_intent(query)
        if anchor_intent is None:
            return None
        exacts = self.world.catalog.serving_intent(anchor_intent)
        if not exacts:
            return None
        exact = exacts[int(self.rng.integers(len(exacts)))]
        other_intents = [i for i in exact.intent_ids if i != anchor_intent]
        if not other_intents:
            return None
        partner_intent = other_intents[int(self.rng.integers(len(other_intents)))]
        candidates = [
            p
            for p in self.world.catalog.serving_intent(partner_intent)
            if p.product_type != exact.product_type
        ]
        return self._pick(candidates)

    def irrelevant(self, query: Query) -> Product | None:
        candidates = [p for p in self._all_products if p.domain != query.domain]
        return self._pick(candidates)

    def _query_intent(self, query: Query) -> str | None:
        if query.intent_id is not None:
            return query.intent_id
        if query.product_type is not None:
            typed = self.world.catalog.for_type(query.domain, query.product_type)
            pools = [p.intent_ids for p in typed if p.intent_ids]
            if pools:
                pool = pools[int(self.rng.integers(len(pools)))]
                return pool[int(self.rng.integers(len(pool)))]
        return None

    def _pick(self, candidates: list[Product]) -> Product | None:
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]


def generate_esci(
    world: World,
    locale: str = "KDD Cup",
    pairs_per_query: int = 8,
    max_queries: int | None = None,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> ESCIDataset:
    """Generate an ESCI dataset for one locale.

    ``pairs_per_query`` products are drawn per query with the Exact-heavy
    label mix; queries and titles are passed through the locale's word
    substitution map.
    """
    if locale not in _LOCALE_SUBSTITUTIONS:
        raise ValueError(f"unknown locale {locale!r}; valid: {LOCALES}")
    rng = spawn_rng(seed, f"esci:{locale}")
    sampler = _LabelSampler(world, rng)
    queries = world.queries.all()
    scale = LOCALE_SCALE[locale]
    n_queries = int(len(queries) * min(scale, 1.0))
    if max_queries is not None:
        n_queries = min(n_queries, max_queries)
    order = rng.permutation(len(queries))[:n_queries]
    labels = list(_LABEL_WEIGHTS)
    label_p = np.array([_LABEL_WEIGHTS[l] for l in labels])

    samplers = {
        ESCILabel.EXACT: sampler.exact,
        ESCILabel.SUBSTITUTE: sampler.substitute,
        ESCILabel.COMPLEMENT: sampler.complement,
        ESCILabel.IRRELEVANT: sampler.irrelevant,
    }
    examples: list[ESCIExample] = []
    for query_index in order:
        query = queries[int(query_index)]
        for pair_index in range(pairs_per_query):
            label = labels[int(rng.choice(len(labels), p=label_p))]
            product = samplers[label](query)
            if product is None:
                continue
            examples.append(
                ESCIExample(
                    example_id=f"esci-{locale}-{len(examples):06d}",
                    locale=locale,
                    query_id=query.query_id,
                    query_text=_localize(query.text, locale),
                    product_id=product.product_id,
                    product_title=_localize(product.title, locale),
                    label=label,
                    intent_id=query.intent_id,
                )
            )
    rng.shuffle(examples)
    split = int(len(examples) * (1.0 - test_fraction))
    return ESCIDataset(locale=locale, train=examples[:split], test=examples[split:])
