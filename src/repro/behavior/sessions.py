"""Session log simulator for session-based recommendation (§4.2.1).

A session is a chronological sequence of (search query, clicked item)
steps driven by one latent intent, ending in a purchase.  Users may
*revise* their query mid-session (switching to a refined variant of the
intent), which is the behavior Table 7 quantifies: *electronics* sessions
are longer and contain more unique queries than *clothing* sessions, and
§4.2.4 attributes COSMO-GNN's larger gain on electronics to exactly this
query dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.behavior.intents import Intent
from repro.behavior.world import World
from repro.utils.rng import spawn_rng

__all__ = ["SessionStep", "Session", "SessionLog", "SessionConfig", "simulate_sessions"]


@dataclass(frozen=True)
class SessionStep:
    """One interaction: the active query and the clicked item."""

    query_text: str
    item_id: str
    intent_id: str  # ground-truth intent active at this step


@dataclass(frozen=True)
class Session:
    """An anonymous behavior sequence ending in a purchase."""

    session_id: str
    domain: str
    day: int  # 0-6; §4.2.1 splits train/dev/test by day
    steps: tuple[SessionStep, ...] = field(hash=False)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def item_sequence(self) -> list[str]:
        return [step.item_id for step in self.steps]

    @property
    def query_sequence(self) -> list[str]:
        return [step.query_text for step in self.steps]

    @property
    def unique_queries(self) -> int:
        return len(set(self.query_sequence))


@dataclass(frozen=True)
class SessionConfig:
    """Per-domain session dynamics (calibrated to Table 7 shape)."""

    domain: str
    n_sessions: int = 2000
    mean_length: float = 8.8
    revise_prob: float = 0.045
    min_length: int = 3
    max_length: int = 20
    days: int = 7


class SessionLog:
    """All sessions for one domain configuration."""

    def __init__(self, sessions: list[Session], domain: str):
        self.sessions = sessions
        self.domain = domain

    def __len__(self) -> int:
        return len(self.sessions)

    def by_day(self, days: set[int]) -> list[Session]:
        return [s for s in self.sessions if s.day in days]

    def stats(self) -> dict[str, float]:
        """Table 7 statistics: session length, query length, unique queries."""
        if not self.sessions:
            return {"sessions": 0, "avg_session_len": 0.0, "avg_query_len": 0.0,
                    "avg_unique_queries": 0.0}
        lengths = [len(s) for s in self.sessions]
        uniques = [s.unique_queries for s in self.sessions]
        return {
            "sessions": len(self.sessions),
            "avg_session_len": float(np.mean(lengths)),
            # Query sequence length equals session length in this world
            # (every step carries the active query), matching the near-equal
            # "Avg. Sess. L." vs "Avg. Q. L." columns of Table 7.
            "avg_query_len": float(np.mean(lengths)),
            "avg_unique_queries": float(np.mean(uniques)),
        }


def _query_for_intent(world: World, intent: Intent, rng: np.random.Generator) -> str:
    """A broad query text verbalizing ``intent`` (fresh phrasing each call)."""
    from repro.catalog.queries import render_broad_query

    return render_broad_query(intent.tail_type, intent.tail, rng)


def _next_item(world, intent, previous_id, rng):
    """Sample the next clicked item: stays within the intent's products."""
    candidates = world.catalog.serving_intent(intent.intent_id)
    candidates = [c for c in candidates if c.product_id != previous_id]
    if not candidates:
        candidates = world.catalog.for_domain(intent.domain)
    popularity = np.array([c.popularity for c in candidates])
    index = int(rng.choice(len(candidates), p=popularity / popularity.sum()))
    return candidates[index]


def simulate_sessions(world: World, config: SessionConfig, seed: int = 0) -> SessionLog:
    """Generate one domain's session log."""
    rng = spawn_rng(seed, f"sessions:{config.domain}")
    intents = world.intents.for_domain(config.domain)
    sessions: list[Session] = []
    for session_index in range(config.n_sessions):
        intent = intents[int(rng.integers(len(intents)))]
        length = int(np.clip(rng.poisson(config.mean_length),
                             config.min_length, config.max_length))
        query_text = _query_for_intent(world, intent, rng)
        steps: list[SessionStep] = []
        previous = None
        for _ in range(length):
            if steps and rng.random() < config.revise_prob:
                # Query revision: refine to a child intent when one exists,
                # otherwise re-verbalize the same intent differently.
                children = world.intents.children(intent.intent_id)
                if children:
                    intent = children[int(rng.integers(len(children)))]
                query_text = _query_for_intent(world, intent, rng)
            item = _next_item(world, intent, previous, rng)
            previous = item.product_id
            steps.append(SessionStep(query_text=query_text,
                                     item_id=item.product_id,
                                     intent_id=intent.intent_id))
        sessions.append(
            Session(
                session_id=f"s-{config.domain[:4]}-{session_index:06d}",
                domain=config.domain,
                day=int(rng.integers(config.days)),
                steps=tuple(steps),
            )
        )
    return SessionLog(sessions, config.domain)
