"""The latent purchase-intent model behind all simulated behaviors.

The paper's premise (§1, Figure 1) is that user behaviors are *caused* by
latent intentions ("attend a wedding party" → "buy normal clothes").  Our
world model makes this causal structure explicit: an :class:`Intent` is a
ground-truth (domain, relation, tail) the behavior simulators condition
on.  The pipeline under test never sees intents directly — it only sees
the behaviors and the teacher LLM's noisy verbalizations — which is what
makes knowledge extraction a real inference problem here.

Activities additionally carry a coarse→fine hierarchy ("camping" →
"winter camping"), the structure §4.3 organizes navigation around
(Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.domains import Domain, all_domains
from repro.catalog.vocab import ACTIVITY_MODIFIERS
from repro.core.relations import Relation, TailType, relations_for_tail_type
from repro.utils.rng import spawn_rng

__all__ = ["Intent", "IntentSpace"]

# Latent embedding dimensionality for intents (behavior models only).
INTENT_DIM = 16

# How many modified variants each base activity spawns.
_VARIANTS_PER_ACTIVITY = 2


@dataclass(frozen=True)
class Intent:
    """A ground-truth purchase intention.

    ``tail`` is the natural-language phrase ("winter camping"),
    ``relation`` the COSMO relation it instantiates, ``parent`` the
    coarse intent id for refined activities (None for base intents).
    """

    intent_id: str
    domain: str
    relation: Relation
    tail_type: TailType
    tail: str
    parent: str | None = None


class IntentSpace:
    """All intents of the world, with per-domain and hierarchy indexes."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._intents: dict[str, Intent] = {}
        self._by_domain: dict[str, list[Intent]] = {}
        self._children: dict[str, list[str]] = {}
        self._vectors: dict[str, np.ndarray] = {}
        self._build()

    # ------------------------------------------------------------------
    def _add(self, intent: Intent, rng: np.random.Generator) -> None:
        self._intents[intent.intent_id] = intent
        self._by_domain.setdefault(intent.domain, []).append(intent)
        self._vectors[intent.intent_id] = rng.normal(size=INTENT_DIM)
        if intent.parent is not None:
            self._children.setdefault(intent.parent, []).append(intent.intent_id)

    def _build(self) -> None:
        rng = spawn_rng(self.seed, "intent-space")
        for domain_index, domain in enumerate(all_domains()):
            counter = 0
            for tail_type, phrases in self._iter_banks(domain):
                relations = relations_for_tail_type(tail_type)
                for phrase_index, phrase in enumerate(phrases):
                    relation = relations[phrase_index % len(relations)]
                    base_id = f"i{domain_index:02d}-{counter:03d}"
                    counter += 1
                    base = Intent(
                        intent_id=base_id,
                        domain=domain.name,
                        relation=relation,
                        tail_type=tail_type,
                        tail=phrase,
                    )
                    self._add(base, rng)
                    if tail_type == TailType.ACTIVITY:
                        counter = self._add_variants(
                            base, domain_index, counter, rng
                        )

    def _add_variants(
        self,
        base: Intent,
        domain_index: int,
        counter: int,
        rng: np.random.Generator,
    ) -> int:
        """Spawn refined activity intents, e.g. camping → winter camping."""
        modifiers = rng.choice(
            len(ACTIVITY_MODIFIERS), size=_VARIANTS_PER_ACTIVITY, replace=False
        )
        for modifier_index in modifiers:
            modifier = ACTIVITY_MODIFIERS[int(modifier_index)]
            variant = Intent(
                intent_id=f"i{domain_index:02d}-{counter:03d}",
                domain=base.domain,
                relation=base.relation,
                tail_type=base.tail_type,
                tail=f"{modifier} {base.tail}",
                parent=base.intent_id,
            )
            counter += 1
            # Child vectors stay close to the parent so refined intents
            # behave like specializations in embedding space.
            child_vec = self._vectors[base.intent_id] + 0.3 * rng.normal(size=INTENT_DIM)
            self._intents[variant.intent_id] = variant
            self._by_domain.setdefault(variant.domain, []).append(variant)
            self._vectors[variant.intent_id] = child_vec
            self._children.setdefault(base.intent_id, []).append(variant.intent_id)
        return counter

    @staticmethod
    def _iter_banks(domain: Domain):
        for tail_type in TailType:
            phrases = domain.tail_phrases(tail_type)
            if tail_type == TailType.CONCEPT:
                # Product-type tails are IS_A knowledge about the product
                # itself; keep a couple per domain to exercise IS_A/USED_AS.
                phrases = phrases[:3]
            if phrases:
                yield tail_type, phrases

    # ------------------------------------------------------------------
    # Lookup API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._intents)

    def __contains__(self, intent_id: str) -> bool:
        return intent_id in self._intents

    def get(self, intent_id: str) -> Intent:
        return self._intents[intent_id]

    def all(self) -> list[Intent]:
        return list(self._intents.values())

    def for_domain(self, domain: str) -> list[Intent]:
        return list(self._by_domain.get(domain, []))

    def vector(self, intent_id: str) -> np.ndarray:
        """The latent embedding used by behavior simulators."""
        return self._vectors[intent_id]

    def children(self, intent_id: str) -> list[Intent]:
        """Refined variants of a coarse intent (Figure 8 hierarchy)."""
        return [self._intents[i] for i in self._children.get(intent_id, [])]

    def roots(self, domain: str | None = None) -> list[Intent]:
        """Base (unrefined) intents, optionally restricted to a domain."""
        return [
            intent
            for intent in self._intents.values()
            if intent.parent is None and (domain is None or intent.domain == domain)
        ]

    def similarity(self, intent_a: str, intent_b: str) -> float:
        """Cosine similarity between two latent intent vectors."""
        a, b = self._vectors[intent_a], self._vectors[intent_b]
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))
