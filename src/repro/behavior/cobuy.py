"""Co-purchase behavior simulator (§3.1, §3.2.1).

Co-buy pairs are emitted from the latent-intent world: with probability
``intentional_rate`` a pair of *different-type* products sharing an intent
is co-bought (the signal COSMO mines); otherwise a random pair is emitted
(the noise the sampling heuristics must reject).  Edge multiplicities are
geometric, giving the co-buy graph a realistic heavy tail, and node
degrees feed the popularity term of the Eq. 2 annotation re-weighting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.behavior.world import World
from repro.utils.rng import spawn_rng

__all__ = ["CoBuyPair", "CoBuyLog", "simulate_cobuy"]


@dataclass(frozen=True)
class CoBuyPair:
    """An aggregated co-purchase edge.

    ``intent_id`` is the ground-truth shared intent (None for random
    co-purchases) — visible to the simulator and the annotation oracle,
    never to the pipeline under test.
    """

    pair_id: str
    product_a: str
    product_b: str
    domain: str
    count: int
    intent_id: str | None


class CoBuyLog:
    """Aggregated co-buy pairs with degree (popularity) lookups."""

    def __init__(self, pairs: list[CoBuyPair]):
        self.pairs = pairs
        self._degree: Counter[str] = Counter()
        for pair in pairs:
            self._degree[pair.product_a] += pair.count
            self._degree[pair.product_b] += pair.count

    def __len__(self) -> int:
        return len(self.pairs)

    def degree(self, product_id: str) -> int:
        """Weighted degree of a product in the co-buy graph."""
        return self._degree[product_id]

    def for_domain(self, domain: str) -> list[CoBuyPair]:
        return [pair for pair in self.pairs if pair.domain == domain]

    def intentional_fraction(self) -> float:
        """Fraction of pairs carrying a ground-truth intent."""
        if not self.pairs:
            return 0.0
        return sum(p.intent_id is not None for p in self.pairs) / len(self.pairs)


def simulate_cobuy(
    world: World,
    pairs_per_domain: int = 120,
    intentional_rate: float = 0.8,
    seed: int = 0,
) -> CoBuyLog:
    """Emit co-buy behavior for every domain of the world."""
    rng = spawn_rng(seed, "cobuy")
    pairs: list[CoBuyPair] = []
    for domain_index, domain in enumerate(sorted({p.domain for p in world.catalog.all()})):
        products = world.catalog.for_domain(domain)
        popularity = np.array([p.popularity for p in products])
        weights = popularity / popularity.sum()
        counter = 0
        for _ in range(pairs_per_domain):
            pair = _sample_pair(world, domain, products, weights, intentional_rate, rng)
            if pair is None:
                continue
            product_a, product_b, intent_id = pair
            pairs.append(
                CoBuyPair(
                    pair_id=f"cb{domain_index:02d}-{counter:05d}",
                    product_a=product_a,
                    product_b=product_b,
                    domain=domain,
                    count=int(rng.geometric(0.3)),
                    intent_id=intent_id,
                )
            )
            counter += 1
    return CoBuyLog(pairs)


def _sample_pair(world, domain, products, weights, intentional_rate, rng):
    """One co-buy event; returns (a, b, intent_id|None) or None."""
    if rng.random() < intentional_rate:
        # A few retries: some (anchor, intent) draws have no different-type
        # partner at small catalog scales.
        for _ in range(4):
            anchor = products[int(rng.choice(len(products), p=weights))]
            if not anchor.intent_ids:
                continue
            intent_id = anchor.intent_ids[int(rng.integers(len(anchor.intent_ids)))]
            partners = [
                p
                for p in world.catalog.serving_intent(intent_id)
                if p.product_id != anchor.product_id
                and p.product_type != anchor.product_type
            ]
            if partners:
                partner = partners[int(rng.integers(len(partners)))]
                return anchor.product_id, partner.product_id, intent_id
        return None
    first, second = rng.choice(len(products), size=2, replace=False)
    return products[int(first)].product_id, products[int(second)].product_id, None
