"""Behavior simulators: the proprietary-log substitute (see DESIGN.md §2)."""

from repro.behavior.cobuy import CoBuyLog, CoBuyPair, simulate_cobuy
from repro.behavior.esci import (
    ESCIDataset,
    ESCIExample,
    ESCILabel,
    LOCALES,
    generate_esci,
)
from repro.behavior.intents import Intent, IntentSpace
from repro.behavior.searchbuy import SearchBuyLog, SearchBuyRecord, simulate_searchbuy
from repro.behavior.sessions import (
    Session,
    SessionConfig,
    SessionLog,
    SessionStep,
    simulate_sessions,
)
from repro.behavior.world import World, WorldConfig

__all__ = [
    "Intent",
    "IntentSpace",
    "World",
    "WorldConfig",
    "CoBuyPair",
    "CoBuyLog",
    "simulate_cobuy",
    "SearchBuyRecord",
    "SearchBuyLog",
    "simulate_searchbuy",
    "Session",
    "SessionStep",
    "SessionConfig",
    "SessionLog",
    "simulate_sessions",
    "ESCILabel",
    "ESCIExample",
    "ESCIDataset",
    "LOCALES",
    "generate_esci",
]
