"""A minimal reverse-mode autodiff engine over numpy arrays.

Every neural model in this reproduction (critic classifiers, relevance
encoders, the COSMO-LM student, the session recommenders) is built on this
engine, so the "LLM finetuning" and "GNN training" in the paper are real
gradient-based optimization rather than mocked numbers.

The design is deliberately small: a :class:`Tensor` wraps an
``numpy.ndarray``, records the backward closure of the op that produced it,
and :meth:`Tensor.backward` runs a topological sweep.  Broadcasting is
handled by summing gradients back to the operand shape.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "vocab_scatter", "embedding_lookup"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Whether new ops record backward closures."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64 or value.dtype == np.float32:
            return value
        return value.astype(np.float64)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with an optional autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free the closure so intermediate buffers can be collected.
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self):
        return self**0.5

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / count

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Distribute gradient among ties evenly.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / denom)

        return Tensor._make(out_data, (self,), backward)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor"):
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        arrays = [t.data for t in tensors]
        out_data = np.concatenate(arrays, axis=axis)
        sizes = [a.shape[axis] for a in arrays]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            slabs = np.moveaxis(grad, axis, 0)
            for tensor, slab in zip(tensors, slabs):
                if tensor.requires_grad:
                    tensor._accumulate(slab)

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)


def vocab_scatter(weights: Tensor, ids: np.ndarray, vocab_size: int) -> Tensor:
    """Scatter per-position weights onto vocabulary ids.

    ``weights`` is (batch, positions); ``ids`` the same shape of integer
    token ids.  Returns (batch, vocab_size) where each id's weight mass
    accumulates — the copy distribution of a pointer-generator network.
    Backward is the corresponding gather.
    """
    ids = np.asarray(ids, dtype=np.int64)
    batch, positions = weights.shape
    out_data = np.zeros((batch, vocab_size))
    rows = np.repeat(np.arange(batch), positions)
    np.add.at(out_data, (rows, ids.reshape(-1)), weights.data.reshape(-1))

    def backward(grad):
        if weights.requires_grad:
            gathered = grad[rows, ids.reshape(-1)].reshape(batch, positions)
            weights._accumulate(gathered)

    return Tensor._make(out_data, (weights,), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` with scatter-add backward.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + (dim,)``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = table.data[indices]

    def backward(grad):
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, table.data.shape[-1]))
            table._accumulate(full)

    return Tensor._make(out_data, (table,), backward)
