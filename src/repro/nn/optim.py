"""Optimizers: SGD (with momentum), Adam, AdamW, and gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clipping norm (useful for training diagnostics).
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base class storing the parameter list."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the decay skips the moments)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
