"""Weight initialization helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "uniform"]


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for (fan_in, fan_out) weights."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """He uniform initialization suitable for ReLU stacks."""
    fan_in = shape[0]
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Gaussian initialization (the transformer-style default)."""
    return rng.normal(0.0, std, size=shape)


def uniform(rng: np.random.Generator, shape: tuple[int, ...], bound: float) -> np.ndarray:
    """Uniform initialization in ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape)
