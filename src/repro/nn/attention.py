"""Attention primitives used by STAMP, GC-SAN and the GNN readouts."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["scaled_dot_product_attention", "SelfAttention", "AdditiveAttention"]

_NEG_INF = -1e9


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> Tensor:
    """Standard attention ``softmax(QK^T / sqrt(d)) V``.

    ``mask`` is a boolean array broadcastable to the score shape with True
    at *valid* positions.
    """
    dim = query.shape[-1]
    scores = (query @ key.transpose(0, 2, 1)) / np.sqrt(dim)
    if mask is not None:
        bias = np.where(mask, 0.0, _NEG_INF)
        scores = scores + Tensor(bias)
    weights = softmax(scores, axis=-1)
    return weights @ value


class SelfAttention(Module):
    """Single-head self-attention block with a residual connection."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attended = scaled_dot_product_attention(
            self.q_proj(x), self.k_proj(x), self.v_proj(x), mask=mask
        )
        return x + self.out_proj(attended)


class AdditiveAttention(Module):
    """Additive (Bahdanau-style) attention pooling over a sequence.

    Computes ``alpha_t = v^T sigmoid(W1 x_t + W2 c + b)`` and returns the
    weighted sum of the sequence — the readout used by SR-GNN and STAMP.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.w_item = Linear(dim, dim, rng, bias=False)
        self.w_context = Linear(dim, dim, rng)
        self.v = Linear(dim, 1, rng, bias=False)

    def forward(
        self,
        sequence: Tensor,
        context: Tensor,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        """``sequence``: (batch, time, dim); ``context``: (batch, dim)."""
        batch, steps, dim = sequence.shape
        expanded = context.reshape(batch, 1, dim)
        energy = (self.w_item(sequence) + self.w_context(expanded)).sigmoid()
        scores = self.v(energy)  # (batch, time, 1)
        if mask is not None:
            scores = scores * Tensor(mask[..., None].astype(np.float64))
        weighted = sequence * scores
        return weighted.sum(axis=1)
