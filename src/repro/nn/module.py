"""Module / Parameter abstractions mirroring the familiar torch-style API."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with recursive parameter discovery and train/eval mode."""

    def __init__(self):
        self.training = True

    # -- parameter traversal -------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{index}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{name}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{key}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count (used for model-size reporting)."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -- train / eval ----------------------------------------------------
    def _submodules(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield item

    def train(self) -> "Module":
        self.training = True
        for module in self._submodules():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._submodules():
            module.eval()
        return self

    # -- state (de)serialization ------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].copy()

    def save(self, path: str) -> None:
        """Persist all parameters to a ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Restore parameters previously written by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({key: archive[key] for key in archive.files})

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
