"""Functional building blocks on top of the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "dropout",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weights: np.ndarray | None = None,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean softmax cross-entropy over integer class ``targets``.

    ``logits`` has shape ``(..., num_classes)``; ``targets`` has the
    leading shape.  ``weights`` optionally re-weights each example.
    ``ignore_index`` positions contribute zero loss (used to mask padding
    in LM training).
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)

    mask = np.ones(flat_targets.shape[0], dtype=np.float64)
    if ignore_index is not None:
        mask = (flat_targets != ignore_index).astype(np.float64)
        flat_targets = np.where(flat_targets == ignore_index, 0, flat_targets)
    if weights is not None:
        mask = mask * np.asarray(weights, dtype=np.float64).reshape(-1)

    logp = log_softmax(flat_logits, axis=-1)
    rows = np.arange(flat_targets.shape[0])
    picked = logp[rows, flat_targets]
    denom = max(mask.sum(), 1.0)
    return -(picked * Tensor(mask)).sum() / denom


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE for binary ``targets`` given raw ``logits``.

    Uses the stable formulation ``max(x,0) - x*t + log(1+exp(-|x|))``.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    x = logits
    positive = x.relu()
    abs_x = (x * x).sqrt()
    loss = positive - x * targets_t + ((-abs_x).exp() + 1.0).log()
    return loss.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant ``target`` array."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or rate 0."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
