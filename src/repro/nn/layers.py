"""Core layers: Linear, Embedding, LayerNorm, Dropout, MLP, Sequential."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.functional import dropout
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, embedding_lookup

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MLP",
]


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, padding_idx: int | None = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        weight = init.normal(rng, (num_embeddings, dim), std=0.1)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout layer with its own random stream."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self._rng, self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers.

    ``sizes`` gives the layer widths including input and output, e.g.
    ``MLP([64, 32, 4], rng)`` is a 64→32→4 network with one hidden layer.
    """

    def __init__(
        self,
        sizes: list[int],
        rng: np.random.Generator,
        dropout_rate: float = 0.0,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        layers: list[Module] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, rng))
            is_last = index == len(sizes) - 2
            if not is_last:
                layers.append(ReLU())
                if dropout_rate > 0:
                    layers.append(Dropout(dropout_rate, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
