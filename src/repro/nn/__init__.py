"""A minimal neural-network library on numpy with reverse-mode autodiff.

Provides everything the COSMO reproduction trains: MLP critics, bi/cross
encoders, GRU language models, attention blocks, and the gated GNNs of the
session recommenders.
"""

from repro.nn.attention import AdditiveAttention, SelfAttention, scaled_dot_product_attention
from repro.nn.functional import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    log_softmax,
    mse_loss,
    softmax,
)
from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.rnn import GRU, GRUCell
from repro.nn.tensor import Tensor, embedding_lookup, no_grad, vocab_scatter

__all__ = [
    "Tensor",
    "no_grad",
    "embedding_lookup",
    "vocab_scatter",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MLP",
    "GRU",
    "GRUCell",
    "SelfAttention",
    "AdditiveAttention",
    "scaled_dot_product_attention",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "dropout",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
]
