"""Recurrent layers: GRUCell and a batched multi-step GRU.

The GRU drives both GRU4Rec (§4.2.2) and the COSMO-LM student language
model (§3.4 stand-in).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single gated recurrent unit step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / np.sqrt(hidden_size)
        # Gates packed as [reset | update | candidate].
        self.w_ih = Parameter(init.uniform(rng, (input_size, 3 * hidden_size), bound))
        self.w_hh = Parameter(init.uniform(rng, (hidden_size, 3 * hidden_size), bound))
        self.b_ih = Parameter(np.zeros(3 * hidden_size))
        self.b_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One step: ``x`` is (batch, input), ``h`` is (batch, hidden)."""
        hs = self.hidden_size
        gi = x @ self.w_ih + self.b_ih
        gh = h @ self.w_hh + self.b_hh
        i_r, i_z, i_n = gi[:, :hs], gi[:, hs : 2 * hs], gi[:, 2 * hs :]
        h_r, h_z, h_n = gh[:, :hs], gh[:, hs : 2 * hs], gh[:, 2 * hs :]
        reset = (i_r + h_r).sigmoid()
        update = (i_z + h_z).sigmoid()
        candidate = (i_n + reset * h_n).tanh()
        return update * h + (1.0 - update) * candidate


class GRU(Module):
    """Batched GRU unrolled over the time axis.

    Input shape ``(batch, time, input_size)``; returns the sequence of
    hidden states ``(batch, time, hidden_size)`` and the final state.
    An optional boolean mask ``(batch, time)`` freezes the state at padded
    positions so variable-length sequences batch cleanly.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(
        self,
        x: Tensor,
        h0: Tensor | None = None,
        mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs: list[Tensor] = []
        for t in range(steps):
            x_t = x[:, t, :]
            h_next = self.cell(x_t, h)
            if mask is not None:
                keep = Tensor(mask[:, t : t + 1].astype(np.float64))
                h = h_next * keep + h * (1.0 - keep)
            else:
                h = h_next
            outputs.append(h)
        sequence = Tensor.stack(outputs, axis=1)
        return sequence, h
