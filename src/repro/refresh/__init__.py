"""Incremental knowledge refresh and zero-downtime rollout.

The offline pipeline (§3.2-§3.4) is one-shot: it produces a knowledge
graph and the serving layer consumes it forever.  Production COSMO
regenerates knowledge continuously, which raises two problems this
package solves:

* **versioned snapshots** — :mod:`repro.refresh.snapshot` freezes each
  refresh round into an immutable, content-addressed
  :class:`KgSnapshot` (triples + serving entries + a
  :class:`SnapshotManifest` with checksum and parent lineage), so the
  serving layer can name exactly which knowledge it is serving and roll
  between versions atomically;
* **incremental ingestion** — :class:`KnowledgeRefresher` drives
  mini-batches of new behaviors through the existing candidate
  generation → filtering → critic scoring stages and merges the
  survivors into a child snapshot, with a bounded per-round LLM call
  budget (the E-CARE-motivated cost cap);
* **blue/green rollout** — :class:`RolloutController` rolls a child
  snapshot across a :class:`~repro.serving.cluster.CosmoCluster` one
  replica at a time (drain → swap+warm → restore) while watching the
  :class:`~repro.obs.slo.SloEvaluator` burn-rate signals, and rolls the
  cluster back to the parent snapshot automatically when availability
  or latency SLOs start burning mid-rollout;
* **quality gating** — :mod:`repro.refresh.quality` adapts the
  knowledge-plane observability in :mod:`repro.obs.kg_health` /
  :mod:`repro.obs.drift` to snapshots: a
  :class:`SnapshotQualityGate` scores a candidate's health and drift
  against its lineage parent, and the rollout controller blocks or
  rolls back on a negative :class:`GateDecision` — so rollouts are
  guarded on knowledge quality, not just serving SLOs.

Snapshots are constructed only through :func:`build_snapshot` (the
``snapshot-builder-only`` cosmolint rule enforces this outside this
package), which is what makes version ids trustworthy: a version names
exactly one byte-for-byte content.
"""

from repro.refresh.builder import KnowledgeRefresher, RefreshConfig, RefreshReport
from repro.refresh.quality import (
    GateDecision,
    SnapshotQualityGate,
    edge_keys,
    snapshot_health,
)
from repro.refresh.rollout import (
    RolloutController,
    RolloutReport,
    RolloutState,
    SnapshotGenerator,
    mixed_version_violation,
    rollout_slo_specs,
)
from repro.refresh.snapshot import (
    KgSnapshot,
    SnapshotManifest,
    SnapshotStore,
    build_snapshot,
    columnar_digest,
)

__all__ = [
    "SnapshotManifest",
    "KgSnapshot",
    "SnapshotStore",
    "build_snapshot",
    "columnar_digest",
    "RefreshConfig",
    "RefreshReport",
    "KnowledgeRefresher",
    "RolloutState",
    "RolloutController",
    "RolloutReport",
    "SnapshotGenerator",
    "rollout_slo_specs",
    "mixed_version_violation",
    "GateDecision",
    "SnapshotQualityGate",
    "edge_keys",
    "snapshot_health",
]
