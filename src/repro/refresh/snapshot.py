"""Immutable, content-addressed knowledge-graph snapshots.

A snapshot is the unit of knowledge deployment: the triples a refresh
round produced, the query → knowledge serving table derived from them,
and a :class:`SnapshotManifest` naming the content.  Version ids are
content-addressed — ``v-<12 hex chars>`` of a BLAKE2b digest over the
parent version, the sorted serving entries and the sorted triple
identities — so two snapshots with the same content share a version and
any content difference yields a new one.  That property is what the
rollout layer leans on: "replica r1 is on ``v-3f2a...``" is a complete
statement about what r1 serves.

Snapshots are constructed **only** through :func:`build_snapshot`; the
:class:`KgSnapshot` constructor takes a private token and the
``snapshot-builder-only`` cosmolint rule bans direct construction
outside :mod:`repro.refresh`.  Entries are exposed through a read-only
mapping proxy and triples as a tuple, so a published version can never
drift from its checksum.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping

from repro.core.triples import KnowledgeTriple

__all__ = [
    "SnapshotManifest",
    "KgSnapshot",
    "SnapshotStore",
    "build_snapshot",
    "columnar_digest",
]

#: Construction capability for :class:`KgSnapshot`; owned by
#: :func:`build_snapshot`.
_BUILDER_TOKEN = object()


@dataclass(frozen=True)
class SnapshotManifest:
    """Identity and lineage of one snapshot.

    ``version`` is derived from ``checksum`` (``v-`` + its first 12 hex
    chars); ``parent`` is the version this snapshot was refreshed from
    (None for a root snapshot); ``note`` is free-form operator context
    (never hashed — annotating a snapshot does not re-version it).
    """

    version: str
    parent: str | None
    checksum: str
    entry_count: int
    triple_count: int
    note: str = ""
    #: BLAKE2b digest of the backing graph's columnar arrays (see
    #: :func:`columnar_digest`); "" when the snapshot was built without
    #: one.  Like ``note`` it is **not** hashed into ``checksum`` —
    #: versions are addressed by logical content (the triples), and an
    #: alternate physical encoding of the same content must not
    #: re-version the snapshot.  The digest is an integrity witness for
    #: serialized column archives, not part of the identity.
    columnar_digest: str = ""

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "parent": self.parent,
            "checksum": self.checksum,
            "entry_count": self.entry_count,
            "triple_count": self.triple_count,
            "note": self.note,
            "columnar_digest": self.columnar_digest,
        }


class KgSnapshot:
    """One immutable knowledge deployment unit.

    ``entries`` maps serving queries to knowledge text (what the cache
    warms from and the snapshot generator answers with); ``triples`` are
    the KG edges backing those entries.  Both views are read-only.
    """

    __slots__ = ("manifest", "_entries", "_triples")

    def __init__(self, manifest: SnapshotManifest,
                 entries: Mapping[str, str],
                 triples: tuple[KnowledgeTriple, ...],
                 token: object = None):
        if token is not _BUILDER_TOKEN:
            raise TypeError(
                "KgSnapshot must be constructed via "
                "repro.refresh.build_snapshot(); direct construction would "
                "bypass content addressing"
            )
        self.manifest = manifest
        self._entries = MappingProxyType(dict(entries))
        self._triples = triples

    @property
    def version(self) -> str:
        return self.manifest.version

    @property
    def parent(self) -> str | None:
        return self.manifest.parent

    @property
    def entries(self) -> Mapping[str, str]:
        """Read-only query → knowledge serving table."""
        return self._entries

    @property
    def triples(self) -> tuple[KnowledgeTriple, ...]:
        return self._triples

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"KgSnapshot({self.version}, parent={self.parent}, "
                f"{len(self._entries)} entries, {len(self._triples)} triples)")


def _checksum(parent: str | None, entries: Mapping[str, str],
              triples: Iterable[KnowledgeTriple]) -> str:
    """Canonical BLAKE2b digest of a snapshot's content.

    Triple identity is ``(head, relation, tail, support)`` — support
    merges from a refresh round change content, score jitter does not
    re-version an otherwise identical graph.
    """
    canonical = json.dumps(
        {
            "parent": parent,
            "entries": sorted(entries.items()),
            "triples": sorted(
                (t.head, t.relation.value, t.tail, t.support) for t in triples
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def columnar_digest(graph) -> str:
    """BLAKE2b digest of a :class:`~repro.core.kg.KnowledgeGraph`'s
    columnar arrays — the content address of the *physical* columns.

    Hashes every numeric column's raw bytes plus the intern tables (and
    the ragged provenance), so any bit difference in the arrays a
    columnar archive would serialize yields a different digest.  Used to
    pin a snapshot manifest to the exact column bytes it shipped with.
    """
    import numpy as np  # local: refresh must stay importable without a graph

    cols = graph.columns()
    digest = hashlib.blake2b(digest_size=16)
    for name in ("head", "relation", "tail", "domain", "behavior",
                 "plausibility", "typicality", "support"):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(cols[name]).tobytes())
    for name in ("nodes", "relations", "domains", "behaviors"):
        digest.update(name.encode("utf-8"))
        digest.update("\x00".join(cols[name]).encode("utf-8"))
    digest.update(b"head_ids")
    digest.update(json.dumps([list(ids) for ids in cols["head_ids"]],
                             separators=(",", ":")).encode("utf-8"))
    return digest.hexdigest()


def build_snapshot(
    entries: Mapping[str, str],
    triples: Iterable[KnowledgeTriple] = (),
    parent: KgSnapshot | None = None,
    note: str = "",
    graph=None,
) -> KgSnapshot:
    """The sole constructor of :class:`KgSnapshot`.

    Copies ``entries`` and ``triples``, computes the content checksum
    and derives the version id from it.  ``parent`` links lineage: the
    rollout controller rolls back to ``snapshot.parent`` by version.
    Passing the backing :class:`~repro.core.kg.KnowledgeGraph` as
    ``graph`` stamps the manifest with its :func:`columnar_digest`
    (and defaults ``triples`` to the graph's edges when none are given)
    — the version itself is unaffected, see
    :attr:`SnapshotManifest.columnar_digest`.
    """
    if graph is not None and not triples:
        triples = graph.triples()
    frozen_triples = tuple(triples)
    parent_version = parent.version if parent is not None else None
    checksum = _checksum(parent_version, entries, frozen_triples)
    manifest = SnapshotManifest(
        version=f"v-{checksum[:12]}",
        parent=parent_version,
        checksum=checksum,
        entry_count=len(entries),
        triple_count=len(frozen_triples),
        note=note,
        columnar_digest="" if graph is None else columnar_digest(graph),
    )
    return KgSnapshot(manifest, entries, frozen_triples, token=_BUILDER_TOKEN)


class SnapshotStore:
    """Version → snapshot registry with parent lineage.

    The rollout controller resolves rollback targets here; the CLI uses
    it to check served text against *every* known version when hunting
    mixed-version serving.
    """

    def __init__(self):
        self._snapshots: dict[str, KgSnapshot] = {}

    def add(self, snapshot: KgSnapshot) -> KgSnapshot:
        """Register a snapshot; re-adding the same version is a no-op
        (content addressing makes it literally the same content)."""
        existing = self._snapshots.get(snapshot.version)
        if existing is not None:
            return existing
        if snapshot.parent is not None and snapshot.parent not in self._snapshots:
            raise KeyError(
                f"parent version {snapshot.parent!r} of {snapshot.version!r} "
                "is not in the store; add lineage oldest-first"
            )
        self._snapshots[snapshot.version] = snapshot
        return snapshot

    def get(self, version: str) -> KgSnapshot:
        try:
            return self._snapshots[version]
        except KeyError:
            raise KeyError(f"unknown snapshot version {version!r}") from None

    def parent_of(self, version: str) -> KgSnapshot | None:
        """The registered parent snapshot of ``version``, or None."""
        parent = self.get(version).parent
        return self._snapshots[parent] if parent is not None else None

    def __contains__(self, version: str) -> bool:
        return version in self._snapshots

    def __len__(self) -> int:
        return len(self._snapshots)

    def versions(self) -> list[str]:
        """Registered versions in insertion (lineage) order."""
        return list(self._snapshots)

    def snapshots(self) -> list[KgSnapshot]:
        return list(self._snapshots.values())
