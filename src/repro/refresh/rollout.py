"""SLO-guarded blue/green snapshot rollout across a serving cluster.

:class:`RolloutController` deploys a child snapshot one replica at a
time: drain the replica via the consistent-hash router (its keys move to
ring neighbors, everything else stays put), swap its snapshot (one
atomic step that also warms the cache from the snapshot's serving
table), restore it, then move to the next replica.  The controller is
tick-driven — call :meth:`RolloutController.tick` once per telemetry
scrape, after the :class:`~repro.obs.slo.SloEvaluator` evaluated — and
executes exactly one step per tick, so SLO damage from any step is
observed before the next one runs.

Before every step the controller checks two guards.  The **quality
gate** (a :class:`~repro.refresh.quality.SnapshotQualityGate`, when
provided) judges the *knowledge itself*: a candidate whose relation mix,
critic scores or edge volume drifted from its parent is **blocked before
the first replica is touched** (state ``BLOCKED``), and a gate that
turns negative mid-rollout triggers the same-tick rollback below.  The
**SLO guard** judges the serving impact: if any guarded objective
(availability, latency by default) has an alert pending or firing, the
rollout **rolls back in the same tick** — drained replicas are restored,
every replica already on the target version is re-drained, re-swapped to
the parent snapshot and restored, and the dead-letter queues are
re-driven so queries that died against the bad snapshot heal
immediately.  Every state edge lands in the structured event log
(``rollout.*`` kinds, including ``rollout.gate_pass`` /
``rollout.gate_block``) and under a tracer span, so alert reports
cross-reference the rollout that caused them.

:class:`SnapshotGenerator` is the version-aware generator used by the
rollout drives: it answers exactly what the replica's current snapshot
says, so "which version is this replica serving" has ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.llm.interface import Generation, GenerationBatch, LatencyModel
from repro.obs.slo import Alert, BurnRateRule, MetricSum, SloEvaluator, SloSpec
from repro.serving.api import ServeOutcome, ServeResult
from repro.serving.cluster import CosmoCluster
from repro.refresh.snapshot import KgSnapshot, SnapshotStore

__all__ = [
    "SnapshotGenerator",
    "RolloutState",
    "RolloutReport",
    "RolloutController",
    "rollout_slo_specs",
    "mixed_version_violation",
]


class SnapshotGenerator:
    """Deterministic generator that serves a snapshot's knowledge table.

    Prompts found in the current snapshot's entries answer with that
    exact text; unknown prompts produce an empty generation, which the
    serving stack's output validator rejects — a snapshot with missing
    entries therefore *fails loudly* (retries, dead letters, burned
    availability) instead of inventing text, which is what lets the
    rollout guard catch a poisoned snapshot.
    """

    parameter_count = 7_000_000

    def __init__(self, snapshot: KgSnapshot):
        self.latency = LatencyModel()
        self.snapshot = snapshot

    def set_snapshot(self, snapshot: KgSnapshot) -> None:
        """The atomic-swap hook :meth:`CosmoService.swap_snapshot` calls."""
        self.snapshot = snapshot

    def generate_batch(self, prompts: list[str]) -> GenerationBatch:
        outputs: list[Generation | None] = []
        for prompt in prompts:
            latency = self.latency.charge(self.parameter_count, 10)
            text = self.snapshot.entries.get(prompt, "")
            outputs.append(Generation(text=text, tokens=10, latency_s=latency))
        return GenerationBatch(generations=outputs)

    def generate_knowledge(self, prompts: list[str]) -> list[Generation]:
        """Deprecated shim over :meth:`generate_batch`."""
        return self.generate_batch(prompts).require()


def rollout_slo_specs(
    scrape_interval_s: float,
    latency_slo_s: float = 0.25,
    availability_target: float = 0.99,
    latency_target: float = 0.95,
) -> list[SloSpec]:
    """The two objectives a rollout is guarded by.

    Windows are expressed in scrape intervals (the guard can only act
    once per scrape anyway): burn must exceed 10x sustainable over both
    a one-scrape short window and a four-scrape long window, hold one
    scrape before firing, and clear two scrapes before resolving.
    """
    windows = (BurnRateRule(long_s=4 * scrape_interval_s,
                            short_s=scrape_interval_s,
                            max_burn_rate=10.0),)
    hold = scrape_interval_s
    release = 2 * scrape_interval_s
    lookback = 5 * scrape_interval_s
    served = ("serving_served_fresh_total", "serving_degraded_serves_total")
    return [
        SloSpec(
            name="availability",
            description="requests answered with knowledge (fresh or degraded)",
            target=availability_target,
            good=MetricSum(served),
            total=MetricSum(served + ("serving_fallbacks_total",)),
            windows=windows,
            for_s=hold, resolve_after_s=release, event_lookback_s=lookback,
        ),
        SloSpec(
            name="latency-p99",
            description=f"end-to-end latency under {latency_slo_s:g}s",
            target=latency_target,
            good=MetricSum(("cluster_request_latency_seconds",),
                           le=latency_slo_s),
            total=MetricSum(("cluster_request_latency_seconds",)),
            windows=windows,
            for_s=hold, resolve_after_s=release, event_lookback_s=lookback,
        ),
    ]


class RolloutState(str, Enum):
    """Lifecycle of one rollout attempt."""

    IDLE = "idle"                  #: created, no tick yet
    ROLLING = "rolling"            #: stepping through the replica plan
    COMPLETE = "complete"          #: every replica on the target version
    ROLLED_BACK = "rolled_back"    #: guard tripped; cluster back on parent
    BLOCKED = "blocked"            #: quality gate refused before first step


@dataclass(frozen=True)
class RolloutReport:
    """Outcome of one rollout attempt."""

    target_version: str
    parent_version: str
    state: str
    steps: tuple[str, ...]
    rolled_back: bool
    rollback_objective: str
    rollback_alert: str
    redriven: int
    blocked: bool = False
    gate_promote: bool = True
    gate_breaches: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "target_version": self.target_version,
            "parent_version": self.parent_version,
            "state": self.state,
            "steps": list(self.steps),
            "rolled_back": self.rolled_back,
            "rollback_objective": self.rollback_objective,
            "rollback_alert": self.rollback_alert,
            "redriven": self.redriven,
            "blocked": self.blocked,
            "gate_promote": self.gate_promote,
            "gate_breaches": list(self.gate_breaches),
        }


class RolloutController:
    """Tick-driven blue/green rollout with automatic SLO rollback.

    ``target`` must carry a parent version registered in ``store`` —
    the rollback destination.  ``guarded`` names the evaluator
    objectives whose pending/firing alerts abort the rollout; they must
    exist in the evaluator so a typo cannot silently disable the guard.
    ``quality_gate`` is anything with
    ``assess(snapshot) -> GateDecision`` — normally a
    :class:`~repro.refresh.quality.SnapshotQualityGate` — consulted
    before every step; the ``snapshot-health-gate`` cosmolint rule
    requires construction sites to pass one.
    """

    def __init__(
        self,
        cluster: CosmoCluster,
        store: SnapshotStore,
        target: KgSnapshot,
        evaluator: SloEvaluator,
        guarded: tuple[str, ...] = ("availability", "latency-p99"),
        quality_gate=None,
    ):
        if target.parent is None:
            raise ValueError(
                f"target {target.version} has no parent version; a rollout "
                "needs a rollback destination"
            )
        store.add(target)
        self.cluster = cluster
        self.store = store
        self.target = target
        self.parent = store.get(target.parent)
        self.evaluator = evaluator
        known = {spec.name for spec in evaluator.specs}
        missing = [name for name in guarded if name not in known]
        if missing:
            raise ValueError(f"guarded objectives not in evaluator: {missing}")
        self.guarded = tuple(guarded)
        self.quality_gate = quality_gate
        self.gate_decision = None
        self.state = RolloutState.IDLE
        self.rollback_objective = ""
        self.rollback_alert = ""
        self.redriven = 0
        self.steps_executed: list[str] = []
        self._plan: list[tuple[str, str]] = [
            (step, replica_id)
            for replica_id in cluster.router.replicas
            for step in ("drain", "swap", "restore")
        ]
        self._step_index = 0

    @property
    def done(self) -> bool:
        return self.state in (RolloutState.COMPLETE, RolloutState.ROLLED_BACK,
                              RolloutState.BLOCKED)

    # ------------------------------------------------------------------
    def tick(self, now: float) -> str | None:
        """Advance the rollout by one step.

        Call once per scrape, *after* ``evaluator.evaluate(now)`` — the
        guard reads the freshly-stepped alert state.  Returns the step
        executed (``"drain"``/``"swap"``/``"restore"``/``"rollback"``/
        ``"gate-block"``) or None when the rollout is already finished.
        """
        if self.done:
            return None
        decision = self._consult_gate()
        if decision is not None and not decision.promote:
            first = decision.breaches[0] if decision.breaches else "unhealthy"
            if self.state is RolloutState.IDLE:
                self.state = RolloutState.BLOCKED
                self.steps_executed.append("gate-block")
                self._emit("rollout.blocked", version=self.target.version,
                           breaches=len(decision.breaches), first_breach=first)
                return "gate-block"
            self._rollback("knowledge-quality", first,
                           breaches=len(decision.breaches))
            return "rollback"
        if self.state is RolloutState.IDLE:
            self.state = RolloutState.ROLLING
            self._emit("rollout.start", version=self.target.version,
                       parent=self.parent.version,
                       replicas=len(self.cluster.router.replicas))
        breach = self._guard_breached()
        if breach is not None:
            self._rollback(breach.objective, breach.alert_id,
                           peak_burn_rate=breach.peak_burn_rate)
            return "rollback"
        step, replica_id = self._plan[self._step_index]
        with self.cluster.tracer.span(f"rollout.{step}", replica=replica_id,
                                      version=self.target.version):
            if step == "drain":
                self.cluster.drain(replica_id)
            elif step == "swap":
                invalidated = self.cluster.swap_snapshot(replica_id, self.target)
                self._emit("rollout.swap", replica=replica_id,
                           version=self.target.version, invalidated=invalidated)
            else:
                self.cluster.restore(replica_id)
        self.steps_executed.append(f"{step}:{replica_id}")
        self._step_index += 1
        if self._step_index == len(self._plan):
            self.state = RolloutState.COMPLETE
            self._emit("rollout.complete", version=self.target.version,
                       steps=len(self.steps_executed))
        return step

    # ------------------------------------------------------------------
    def _consult_gate(self):
        """Ask the quality gate about the target; emit on decision edges.

        The gate caches by version, so this is free after the first
        tick; ``rollout.gate_pass``/``rollout.gate_block`` is emitted
        only when the decision object changes (a stateful gate may flip
        mid-rollout, e.g. after re-registering lineage).
        """
        if self.quality_gate is None:
            return None
        decision = self.quality_gate.assess(self.target)
        if decision is not self.gate_decision:
            self.gate_decision = decision
            if decision.promote:
                self._emit("rollout.gate_pass", version=self.target.version)
            else:
                self._emit("rollout.gate_block", version=self.target.version,
                           breaches=len(decision.breaches),
                           first_breach=decision.breaches[0]
                           if decision.breaches else "unhealthy")
        return decision

    def _guard_breached(self) -> Alert | None:
        """The first pending/firing alert on a guarded objective, if any."""
        for alert in self.evaluator.alerts():
            if alert.objective in self.guarded and alert.state in ("pending",
                                                                   "firing"):
                return alert
        return None

    def _rollback(self, objective: str, alert_id: str, **start_attrs) -> None:
        """Return the whole cluster to the parent snapshot in one tick.

        ``objective`` names what tripped — a guarded SLO objective, or
        ``"knowledge-quality"`` when the gate flipped mid-rollout — and
        ``alert_id`` the specific alert or breach.  Order matters:
        mid-step drained replicas are restored first (rolling back must
        never leave capacity down), then every replica already on the
        target version is drained, re-swapped to the parent and
        restored, and finally the dead-letter queues are re-driven
        against the restored knowledge.
        """
        self.rollback_objective = objective
        self.rollback_alert = alert_id
        self._emit("rollout.rollback_start", version=self.target.version,
                   objective=objective, alert_id=alert_id, **start_attrs)
        router = self.cluster.router
        with self.cluster.tracer.span("rollout.rollback",
                                      version=self.parent.version):
            for replica_id in router.replicas:
                if router.is_drained(replica_id):
                    self.cluster.restore(replica_id)
            for replica_id in router.replicas:
                service = self.cluster.services[replica_id]
                if service.snapshot_version != self.target.version:
                    continue
                try:
                    self.cluster.drain(replica_id)
                    drained = True
                except ValueError:
                    drained = False  # single-replica cluster: swap in place
                invalidated = self.cluster.swap_snapshot(replica_id, self.parent)
                self._emit("rollout.swap", replica=replica_id,
                           version=self.parent.version, invalidated=invalidated)
                if drained:
                    self.cluster.restore(replica_id)
            self.redriven = self.cluster.redrive_dead_letters()
        self.steps_executed.append("rollback")
        self.state = RolloutState.ROLLED_BACK
        self._emit("rollout.rollback_complete", version=self.parent.version,
                   redriven=self.redriven)

    def _emit(self, kind: str, **attrs) -> None:
        if self.cluster.event_log is not None:
            self.cluster.event_log.emit(
                kind, ts=self.cluster.clock.now(),
                component=self.cluster.config.name, **attrs,
            )

    # ------------------------------------------------------------------
    def report(self) -> RolloutReport:
        decision = self.gate_decision
        return RolloutReport(
            target_version=self.target.version,
            parent_version=self.parent.version,
            state=self.state.value,
            steps=tuple(self.steps_executed),
            rolled_back=self.state is RolloutState.ROLLED_BACK,
            rollback_objective=self.rollback_objective,
            rollback_alert=self.rollback_alert,
            redriven=self.redriven,
            blocked=self.state is RolloutState.BLOCKED,
            gate_promote=decision.promote if decision is not None else True,
            gate_breaches=tuple(decision.breaches) if decision is not None else (),
        )


def mixed_version_violation(store: SnapshotStore, cluster: CosmoCluster,
                            result: ServeResult) -> bool:
    """Did this answer leak from a different snapshot version?

    True when a FRESH cache answer's text belongs to a version other
    than the serving replica's authoritative ``snapshot_version`` — the
    stale-cache leak version-scoped invalidation exists to prevent.
    Degraded serves are exempt by design (serving *known-stale*
    knowledge, marked as such, is the degradation contract).
    """
    if result.outcome is not ServeOutcome.FRESH:
        return False
    if not result.source.startswith("cache:"):
        return False
    version = cluster.services[result.replica].snapshot_version
    if version is None:
        return False
    expected = store.get(version).entries.get(result.query)
    if expected is not None and result.text == expected:
        return False
    return any(
        snap.version != version
        and snap.entries.get(result.query) == result.text
        for snap in store.snapshots()
    )
