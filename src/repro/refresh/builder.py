"""Incremental knowledge refresh: mini-batches of behaviors → snapshots.

:class:`KnowledgeRefresher` reuses the offline pipeline's stages —
candidate generation (§3.2.2), refinement filtering (§3.3.1) and critic
scoring (§3.3.2) — but over a *mini-batch* of new behavior samples, and
merges the survivors into the parent snapshot instead of rebuilding the
world.  Each round is frozen via
:func:`~repro.refresh.snapshot.build_snapshot`, so the result is a
lineage of immutable versions the rollout controller can walk.

Per-round LLM cost is bounded (the E-CARE motivation): with
``llm_call_budget`` set, samples past the budget are *deferred*, not
dropped — the report says how many, and the caller feeds them to the
next round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.behavior.world import World
from repro.core.critic import CriticClassifier
from repro.core.filtering import KnowledgeFilter
from repro.core.generation import generate_candidates
from repro.core.kg import KnowledgeGraph
from repro.core.triples import BehaviorSample, KnowledgeCandidate, KnowledgeTriple
from repro.llm.teacher import TeacherLLM
from repro.refresh.snapshot import KgSnapshot, build_snapshot

__all__ = ["RefreshConfig", "RefreshReport", "KnowledgeRefresher"]


@dataclass(frozen=True)
class RefreshConfig:
    """Scale and cost knobs for one refresher."""

    candidates_per_sample: int = 3
    #: Max teacher generations per round (None = unbounded).  Samples
    #: whose generations would exceed it are deferred to the next round.
    llm_call_budget: int | None = None
    seed: int = 0

    def __post_init__(self):
        if self.candidates_per_sample < 1:
            raise ValueError("candidates_per_sample must be at least 1")
        if self.llm_call_budget is not None and self.llm_call_budget < 1:
            raise ValueError("llm_call_budget must be positive when set")


@dataclass(frozen=True)
class RefreshReport:
    """Accounting for one refresh round."""

    round_index: int
    parent_version: str
    version: str
    samples_in: int
    samples_processed: int
    samples_deferred: int
    llm_calls: int
    candidates: int
    survivors: int
    kept: int
    new_entries: int
    new_triples: int

    def as_dict(self) -> dict:
        return {
            "round_index": self.round_index,
            "parent_version": self.parent_version,
            "version": self.version,
            "samples_in": self.samples_in,
            "samples_processed": self.samples_processed,
            "samples_deferred": self.samples_deferred,
            "llm_calls": self.llm_calls,
            "candidates": self.candidates,
            "survivors": self.survivors,
            "kept": self.kept,
            "new_entries": self.new_entries,
            "new_triples": self.new_triples,
        }


def _to_triple(candidate: KnowledgeCandidate) -> KnowledgeTriple:
    """Refined candidate → KG edge (the §3.1 shape, as in KG assembly)."""
    return KnowledgeTriple(
        head=candidate.sample.head_text,
        relation=candidate.relation,
        tail=candidate.tail,
        domain=candidate.sample.domain,
        behavior=candidate.sample.behavior,
        plausibility=candidate.plausibility_score or 0.0,
        typicality=candidate.typicality_score or 0.0,
        support=1,
        head_ids=candidate.sample.product_ids,
    )


class KnowledgeRefresher:
    """Drives refresh rounds against a trained filter + critic.

    The filter and critic come from a prior full pipeline run (they are
    the expensive, annotation-backed components); the refresher only
    spends teacher calls on the *new* behaviors.
    """

    def __init__(
        self,
        world: World,
        teacher: TeacherLLM,
        knowledge_filter: KnowledgeFilter,
        critic: CriticClassifier,
        config: RefreshConfig | None = None,
        registry=None,
    ):
        self.world = world
        self.teacher = teacher
        self.filter = knowledge_filter
        self.critic = critic
        self.config = config or RefreshConfig()
        self.rounds = 0
        self.deferred: list[BehaviorSample] = []
        # Same funnel family the offline pipeline publishes, so health
        # reports carry the narrowing path regardless of which producer
        # grew the knowledge (obs.kg_health.funnel_from_registry).
        self._funnel_items = None if registry is None else registry.counter(
            "pipeline_funnel_total",
            "knowledge funnel items per stage", ("stage",),
        )

    def _funnel(self, stage: str, items: int) -> None:
        if self._funnel_items is not None:
            self._funnel_items.labels(stage=stage).inc(items)

    def refresh(
        self, parent: KgSnapshot, samples: list[BehaviorSample]
    ) -> tuple[KgSnapshot, RefreshReport]:
        """Run one mini-batch round and freeze the result.

        Deferred samples from the previous round are processed first
        (oldest knowledge debt clears before new arrivals).  Returns the
        child snapshot and the round's accounting; the child's entries
        are the parent's overlaid with the round's survivors, its
        triples the support-merged union.
        """
        cfg = self.config
        queue = self.deferred + list(samples)
        if cfg.llm_call_budget is not None:
            max_samples = max(1, cfg.llm_call_budget // cfg.candidates_per_sample)
            batch, self.deferred = queue[:max_samples], queue[max_samples:]
        else:
            batch, self.deferred = queue, []

        candidates = generate_candidates(
            self.world,
            self.teacher,
            batch,
            candidates_per_sample=cfg.candidates_per_sample,
            seed=cfg.seed + self.rounds,
        )
        survivors, _filter_report = self.filter.apply(candidates)
        kept = self.critic.populate(survivors)
        self._funnel("candidates", len(candidates))
        self._funnel("filtered", len(survivors))
        self._funnel("critic_accepted", len(kept))

        # Serving entries: per query keep the most plausible survivor;
        # parent entries stay unless this round regenerated them.
        best: dict[str, KnowledgeCandidate] = {}
        for candidate in kept:
            query = candidate.sample.head_text
            current = best.get(query)
            if (current is None
                    or (candidate.plausibility_score or 0.0)
                    > (current.plausibility_score or 0.0)):
                best[query] = candidate
        entries = dict(parent.entries)
        entries.update({query: c.text for query, c in best.items()})

        graph = KnowledgeGraph()
        graph.extend(list(parent.triples))
        graph.extend([_to_triple(c) for c in kept])

        child = build_snapshot(entries, graph.triples(), parent=parent,
                               note=f"refresh round {self.rounds}",
                               graph=graph)
        report = RefreshReport(
            round_index=self.rounds,
            parent_version=parent.version,
            version=child.version,
            samples_in=len(queue),
            samples_processed=len(batch),
            samples_deferred=len(self.deferred),
            llm_calls=len(batch) * cfg.candidates_per_sample,
            candidates=len(candidates),
            survivors=len(survivors),
            kept=len(kept),
            new_entries=len(best),
            new_triples=len(child.triples) - len(parent.triples),
        )
        self.rounds += 1
        return child, report
