"""Snapshot quality gate: health + drift checks on the rollout path.

:mod:`repro.obs.kg_health` and :mod:`repro.obs.drift` are pure
observation over plain column data; this module is the adapter that
walks actual :class:`~repro.refresh.snapshot.KgSnapshot` objects and
their :class:`~repro.refresh.snapshot.SnapshotStore` lineage:

* :func:`snapshot_health` rebuilds the snapshot's triples into a
  columnar :class:`~repro.core.kg.KnowledgeGraph` and computes its
  :class:`~repro.obs.kg_health.KgHealthReport`;
* :func:`edge_keys` extracts the content-identity edge set (the same
  ``(head, relation, tail)`` identities the snapshot checksum sorts),
  so added/removed-edge rates are exact, not inferred from counts;
* :class:`SnapshotQualityGate` ties it together: given a candidate
  snapshot it assesses health, diffs against the registered parent,
  runs the drift rules, and returns a :class:`GateDecision` the
  :class:`~repro.refresh.rollout.RolloutController` consults before
  promoting — the ``snapshot-health-gate`` cosmolint rule enforces
  that controllers are constructed with one.

Assessments are cached per version (snapshots are immutable and
content-addressed, so a version's health can never change), which keeps
the gate free on every rollout tick after the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.kg import KnowledgeGraph
from repro.obs.drift import (DriftReport, DriftRule, default_drift_rules,
                             evaluate_drift)
from repro.obs.kg_health import (KgHealthReport, compute_kg_health,
                                 publish_kg_health)
from repro.refresh.snapshot import KgSnapshot, SnapshotStore

__all__ = [
    "snapshot_health",
    "edge_keys",
    "GateDecision",
    "SnapshotQualityGate",
]


def snapshot_health(snapshot: KgSnapshot, *,
                    funnel: dict[str, int] | None = None) -> KgHealthReport:
    """Compute a snapshot's :class:`KgHealthReport`.

    The snapshot's triples are replayed into a fresh columnar
    :class:`KnowledgeGraph` (the same merge bookkeeping serving uses)
    and health is one vectorized pass over its ``columns()``.
    """
    graph = KnowledgeGraph()
    for triple in snapshot.triples:
        graph.add(triple)
    return compute_kg_health(
        graph.columns(),
        version=snapshot.version,
        parent=snapshot.parent,
        entries=len(snapshot),
        funnel=funnel,
    )


def edge_keys(snapshot: KgSnapshot) -> set[tuple[str, str, str]]:
    """The snapshot's edge identity set: ``(head, relation, tail)``.

    Support and scores are deliberately excluded — a re-scored or
    re-merged edge is still the *same* knowledge, and counting it as
    removed+added would double-charge the drift rates.
    """
    return {(t.head, t.relation.value, t.tail) for t in snapshot.triples}


@dataclass(frozen=True)
class GateDecision:
    """One promote/block verdict for a candidate snapshot."""

    version: str
    parent_version: str | None
    promote: bool
    #: Human-readable breach descriptions, empty iff promoting.
    breaches: tuple[str, ...]
    health: KgHealthReport
    parent_health: KgHealthReport | None
    drift: DriftReport | None

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "parent_version": self.parent_version,
            "promote": self.promote,
            "breaches": list(self.breaches),
        }


class SnapshotQualityGate:
    """Assess candidate snapshots against their lineage before rollout.

    A root snapshot (no parent, or parent unknown to the store) has no
    baseline to drift from and promotes on health alone; a child is
    additionally scored by :func:`repro.obs.drift.evaluate_drift`
    against its registered parent.  When a ``registry`` is supplied,
    every assessed snapshot's health is published as
    ``kg_health_*`` gauges so the scrape loop exports it.
    """

    def __init__(self, store: SnapshotStore,
                 rules: Sequence[DriftRule] | None = None,
                 registry: Any = None):
        self._store = store
        self._rules = tuple(rules) if rules is not None else default_drift_rules()
        self._registry = registry
        self._health: dict[str, KgHealthReport] = {}
        self._decisions: dict[str, GateDecision] = {}

    @property
    def rules(self) -> tuple[DriftRule, ...]:
        return self._rules

    @property
    def decisions(self) -> list[GateDecision]:
        """Every distinct decision made, in assessment order."""
        return list(self._decisions.values())

    def health_of(self, snapshot: KgSnapshot) -> KgHealthReport:
        """The (cached) health report for a snapshot."""
        report = self._health.get(snapshot.version)
        if report is None:
            report = snapshot_health(snapshot)
            self._health[snapshot.version] = report
            if self._registry is not None:
                publish_kg_health(report, self._registry)
        return report

    def assess(self, candidate: KgSnapshot) -> GateDecision:
        """Promote-or-block verdict for ``candidate``; cached by version."""
        cached = self._decisions.get(candidate.version)
        if cached is not None:
            return cached
        health = self.health_of(candidate)
        parent = (self._store.get(candidate.parent)
                  if candidate.parent is not None
                  and candidate.parent in self._store else None)
        if parent is None:
            decision = GateDecision(
                version=candidate.version,
                parent_version=candidate.parent,
                promote=True,
                breaches=(),
                health=health,
                parent_health=None,
                drift=None,
            )
        else:
            parent_health = self.health_of(parent)
            parent_edges = edge_keys(parent)
            child_edges = edge_keys(candidate)
            drift = evaluate_drift(
                parent_health,
                health,
                added_edges=len(child_edges - parent_edges),
                removed_edges=len(parent_edges - child_edges),
                entries_added=len(set(candidate.entries) - set(parent.entries)),
                entries_removed=len(set(parent.entries) - set(candidate.entries)),
                rules=self._rules,
            )
            decision = GateDecision(
                version=candidate.version,
                parent_version=candidate.parent,
                promote=drift.ok,
                breaches=tuple(
                    f"{b.rule}: {b.metric}={b.value:.4f} > {b.threshold:.4f}"
                    for b in drift.breaches
                ),
                health=health,
                parent_health=parent_health,
                drift=drift,
            )
        self._decisions[candidate.version] = decision
        return decision
