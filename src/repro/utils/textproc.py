"""Lightweight text processing used across the pipeline.

The paper's refinement stage (§3.3.1) relies on sentence segmentation
(`nltk` in the paper), edit distance against the behavior context, and a
frequency/entropy test for generic tails.  These helpers implement those
primitives from scratch with no external NLP dependency.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from collections.abc import Iterable

__all__ = [
    "normalize_text",
    "tokenize_words",
    "sentence_split",
    "edit_distance",
    "normalized_edit_distance",
    "entropy",
    "jaccard",
]

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")
_SENTENCE_END_RE = re.compile(r"(?<=[.!?])\s+")
_WS_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Lowercase, strip and collapse whitespace."""
    return _WS_RE.sub(" ", text.strip().lower())


def tokenize_words(text: str) -> list[str]:
    """Split ``text`` into lowercase word tokens (letters, digits, 's)."""
    return _WORD_RE.findall(text.lower())


def sentence_split(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation.

    A minimal stand-in for ``nltk.sent_tokenize`` sufficient for the
    candidate texts the teacher LLM emits: sentences end with ``.``, ``!``
    or ``?`` followed by whitespace.  Trailing fragments without terminal
    punctuation are returned as the last element so callers can detect
    incomplete generations.
    """
    text = text.strip()
    if not text:
        return []
    parts = _SENTENCE_END_RE.split(text)
    return [part.strip() for part in parts if part.strip()]


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance between ``a`` and ``b``.

    Classic two-row dynamic program; O(len(a) * len(b)) time, O(min) space.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def normalized_edit_distance(a: str, b: str) -> float:
    """Edit distance scaled to [0, 1] by the longer string's length."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return edit_distance(a, b) / longest


def entropy(counts: Iterable[int]) -> float:
    """Shannon entropy (nats) of a count distribution.

    Zero counts are ignored; an empty or all-zero input has entropy 0.
    """
    values = [c for c in counts if c > 0]
    total = sum(values)
    if total == 0:
        return 0.0
    result = 0.0
    for count in values:
        p = count / total
        result -= p * math.log(p)
    return result


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity between two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def head_tail_cooccurrence_entropy(pairs: Iterable[tuple[str, str]]) -> dict[str, float]:
    """Entropy of the head distribution for each tail.

    Used by the generic-tail filter: a tail such as "used for the same
    reason" co-occurs with many distinct heads nearly uniformly, yielding
    high entropy, whereas a specific tail concentrates on few heads.
    """
    tail_heads: dict[str, Counter[str]] = {}
    for head, tail in pairs:
        tail_heads.setdefault(tail, Counter())[head] += 1
    return {tail: entropy(counter.values()) for tail, counter in tail_heads.items()}
