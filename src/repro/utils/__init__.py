"""Shared low-level utilities: seeded randomness and text processing."""

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.textproc import (
    edit_distance,
    entropy,
    normalize_text,
    sentence_split,
    tokenize_words,
)

__all__ = [
    "RngFactory",
    "spawn_rng",
    "edit_distance",
    "entropy",
    "normalize_text",
    "sentence_split",
    "tokenize_words",
]
