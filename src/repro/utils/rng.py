"""Deterministic random-number-generator management.

Every stochastic component in the reproduction draws from a
:class:`numpy.random.Generator` obtained through :func:`spawn_rng` or an
:class:`RngFactory`.  Child generators are derived from a root seed plus a
string *scope*, so adding a new component never perturbs the random streams
of existing ones (a property the end-to-end regression tests rely on).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_rng", "RngFactory"]


def _scope_to_entropy(scope: str) -> int:
    """Hash a scope string into a stable 64-bit integer."""
    digest = hashlib.sha256(scope.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(seed: int, scope: str = "") -> np.random.Generator:
    """Return a generator derived from ``seed`` and an optional ``scope``.

    The same ``(seed, scope)`` pair always yields an identical stream, and
    distinct scopes yield statistically independent streams.
    """
    if scope:
        seq = np.random.SeedSequence([seed, _scope_to_entropy(scope)])
    else:
        seq = np.random.SeedSequence(seed)
    return np.random.default_rng(seq)


class RngFactory:
    """Factory handing out independent named random streams.

    Example::

        rngs = RngFactory(seed=7)
        catalog_rng = rngs.get("catalog")
        behavior_rng = rngs.get("behavior")
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, scope: str) -> np.random.Generator:
        """Return the (cached) generator for ``scope``."""
        if scope not in self._cache:
            self._cache[scope] = spawn_rng(self.seed, scope)
        return self._cache[scope]

    def fresh(self, scope: str) -> np.random.Generator:
        """Return a brand-new generator for ``scope`` (ignores the cache)."""
        return spawn_rng(self.seed, scope)

    def child(self, scope: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``scope``."""
        return RngFactory(self.seed ^ _scope_to_entropy(scope))
