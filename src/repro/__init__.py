"""COSMO reproduction: e-commerce commonsense knowledge generation & serving.

A from-scratch Python reproduction of *COSMO: A Large-Scale E-commerce
Common Sense Knowledge Generation and Serving System at Amazon* (SIGMOD
2024).  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Top-level layout:

* :mod:`repro.catalog`, :mod:`repro.behavior` — the synthetic marketplace
  (substitute for the proprietary Amazon logs);
* :mod:`repro.llm`, :mod:`repro.embeddings`, :mod:`repro.nn` — the model
  substrate (teacher LLM, trainable student, autodiff library);
* :mod:`repro.annotation` — simulated human-in-the-loop labeling;
* :mod:`repro.core` — the COSMO pipeline itself (§3);
* :mod:`repro.serving` — the deployment layer (§3.5);
* :mod:`repro.apps` — search relevance, session recommendation, and
  search navigation (§4).
"""

__version__ = "1.0.0"

__all__ = [
    "annotation",
    "apps",
    "behavior",
    "catalog",
    "core",
    "embeddings",
    "llm",
    "nn",
    "reporting",
    "serving",
    "utils",
]
