"""The paper's three downstream applications (§4)."""

__all__ = ["relevance", "recommendation", "navigation"]
