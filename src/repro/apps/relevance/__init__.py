"""Search relevance application (§4.1): ESCI classification with and
without COSMO intention knowledge."""

from repro.apps.relevance.datasets import (
    LABEL_TO_ID,
    PreparedESCI,
    PreparedSplit,
    cosmo_knowledge_provider,
    kg_knowledge_provider,
    prepare_esci,
)
from repro.apps.relevance.encoders import ARCHITECTURES, FeatureExtractor, RelevanceModel
from repro.apps.relevance.metrics import f1_scores, macro_f1, micro_f1
from repro.apps.relevance.train import RelevanceResult, evaluate_model, train_relevance_model

__all__ = [
    "LABEL_TO_ID",
    "PreparedESCI",
    "PreparedSplit",
    "prepare_esci",
    "cosmo_knowledge_provider",
    "kg_knowledge_provider",
    "ARCHITECTURES",
    "FeatureExtractor",
    "RelevanceModel",
    "f1_scores",
    "macro_f1",
    "micro_f1",
    "RelevanceResult",
    "train_relevance_model",
    "evaluate_model",
]
