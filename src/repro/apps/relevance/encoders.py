"""Relevance model architectures (§4.1.2, Figure 6).

* **Bi-encoder** — query and product are encoded by separate towers; the
  head sees only the concatenated tower outputs (no interaction terms).
* **Cross-encoder** — one joint encoder over all features, including
  elementwise query×product interaction features (the "extra attention
  interactions" that make cross-encoders win).
* **Cross-encoder w/ Intent** — the cross-encoder with COSMO knowledge
  features appended: the knowledge text's hashed vector plus its
  interactions with the query and the product, which is how generated
  intentions bridge the query↔product semantic gap.

Each architecture supports the paper's two regimes: *fixed* encoder
(frozen random projection, only the MLP head trains — the stand-in for a
frozen pretrained deberta) and *trainable* encoder (the projection layer
trains too).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.hashing import hashed_bow
from repro.nn import MLP, Linear, Module, Tensor
from repro.utils.rng import spawn_rng

__all__ = ["FeatureExtractor", "RelevanceModel", "ARCHITECTURES"]

ARCHITECTURES: tuple[str, ...] = ("bi-encoder", "cross-encoder", "cross-encoder-intent")

_N_CLASSES = 4


class FeatureExtractor:
    """Hashed bag-of-n-grams featurization for (query, product, knowledge).

    Bi-encoder towers use *separate* hash salts (the towers cannot
    interact anyway); the cross-encoder family uses one *shared* salt so
    elementwise products of feature vectors are genuine token-overlap
    interaction features — including the knowledge↔query overlap that
    carries the intent bridge.
    """

    def __init__(self, buckets: int = 512):
        self.buckets = buckets
        self._cache: dict[tuple[str, str], np.ndarray] = {}

    def _bow(self, text: str, salt: str) -> np.ndarray:
        key = (salt, text)
        cached = self._cache.get(key)
        if cached is None:
            cached = hashed_bow(text, buckets=self.buckets, salt=salt)
            if len(self._cache) > 200_000:
                self._cache.clear()
            self._cache[key] = cached
        return cached

    def query(self, text: str) -> np.ndarray:
        """Query-tower features (bi-encoder side)."""
        return self._bow(text, "query")

    def product(self, text: str) -> np.ndarray:
        """Product-tower features (bi-encoder side)."""
        return self._bow(text, "product")

    def joint(self, text: str) -> np.ndarray:
        """Shared-salt features for cross-encoder interaction terms."""
        return self._bow(text, "joint")


class RelevanceModel(Module):
    """One architecture × encoder-regime relevance classifier."""

    def __init__(
        self,
        architecture: str,
        trainable_encoder: bool,
        extractor: FeatureExtractor,
        encoder_dim: int = 96,
        head_hidden: int = 64,
        seed: int = 0,
    ):
        super().__init__()
        if architecture not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {architecture!r}")
        self.architecture = architecture
        self.trainable_encoder = trainable_encoder
        self.extractor = extractor
        rng = spawn_rng(seed, f"relevance:{architecture}:{trainable_encoder}")
        buckets = extractor.buckets
        if architecture == "bi-encoder":
            self.query_encoder = Linear(buckets, encoder_dim, rng)
            self.product_encoder = Linear(buckets, encoder_dim, rng)
            head_in = 2 * encoder_dim
        else:
            joint_in = self._joint_dim(buckets)
            self.joint_encoder = Linear(joint_in, encoder_dim, rng)
            # Overlap-summary scalars (Σ q·p, and with intent Σ g·q, Σ g·p)
            # bypass the encoder: a pretrained encoder exposes text
            # similarity even when frozen, and these scalars play that
            # role for the frozen random projection.
            head_in = encoder_dim + self._n_summaries()
        self.head = MLP([head_in, head_hidden, _N_CLASSES], rng)
        if not trainable_encoder:
            self._freeze_encoders()

    def _joint_dim(self, buckets: int) -> int:
        if self.architecture == "cross-encoder":
            # [q, p, q*p]
            return 3 * buckets
        # [q, p, g, q*p, g*q, g*p]
        return 6 * buckets

    def _n_summaries(self) -> int:
        return 1 if self.architecture == "cross-encoder" else 3

    def _freeze_encoders(self) -> None:
        frozen = []
        if self.architecture == "bi-encoder":
            frozen = [self.query_encoder, self.product_encoder]
        else:
            frozen = [self.joint_encoder]
        for module in frozen:
            for param in module.parameters():
                param.requires_grad = False

    def trainable_parameters(self):
        return [p for p in self.parameters() if p.requires_grad]

    # ------------------------------------------------------------------
    def featurize(
        self,
        queries: list[str],
        products: list[str],
        knowledge: list[str] | None = None,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Raw feature matrices for a batch."""
        q = np.stack([self.extractor.query(text) for text in queries])
        p = np.stack([self.extractor.product(text) for text in products])
        if self.architecture == "bi-encoder":
            return q, p
        jq = np.stack([self.extractor.joint(text) for text in queries])
        jp = np.stack([self.extractor.joint(text) for text in products])
        if self.architecture == "cross-encoder-intent":
            if knowledge is None:
                raise ValueError("intent architecture requires knowledge texts")
            jg = np.stack([self.extractor.joint(text) for text in knowledge])
            blocks = [jq, jp, jg, jq * jp, jg * jq, jg * jp]
        else:
            blocks = [jq, jp, jq * jp]
        return np.concatenate(blocks, axis=1)

    def forward(self, features) -> Tensor:
        """Encode (frozen or trainable) and classify into the 4 labels."""
        if self.architecture == "bi-encoder":
            q, p = features
            encoded = Tensor.concat(
                [self.query_encoder(Tensor(q)).tanh(), self.product_encoder(Tensor(p)).tanh()],
                axis=-1,
            )
            return self.head(encoded)
        buckets = self.extractor.buckets
        encoded = self.joint_encoder(Tensor(features)).tanh()
        # Interaction blocks start after the raw text blocks.
        n_text = 2 if self.architecture == "cross-encoder" else 3
        summaries = np.stack(
            [
                features[:, (n_text + i) * buckets : (n_text + i + 1) * buckets].sum(axis=1)
                for i in range(self._n_summaries())
            ],
            axis=1,
        )
        encoded = Tensor.concat([encoded, Tensor(np.tanh(4.0 * summaries))], axis=-1)
        return self.head(encoded)
