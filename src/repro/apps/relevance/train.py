"""Training and evaluation harness for the relevance models (§4.1.3-4.1.4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.relevance.datasets import PreparedESCI, PreparedSplit
from repro.apps.relevance.encoders import FeatureExtractor, RelevanceModel
from repro.apps.relevance.metrics import macro_f1, micro_f1
from repro.nn import Adam, Tensor, cross_entropy, no_grad
from repro.utils.rng import spawn_rng

__all__ = ["RelevanceResult", "train_relevance_model", "evaluate_model"]

_N_CLASSES = 4


@dataclass(frozen=True)
class RelevanceResult:
    """Scores for one (architecture, regime) cell of Table 6."""

    architecture: str
    trainable_encoder: bool
    macro_f1: float
    micro_f1: float


def _batches(n: int, batch_size: int, rng: np.random.Generator):
    order = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def train_relevance_model(
    data: PreparedESCI,
    architecture: str,
    trainable_encoder: bool,
    epochs: int = 8,
    batch_size: int = 64,
    lr: float = 2e-3,
    seed: int = 0,
    extractor: FeatureExtractor | None = None,
) -> tuple[RelevanceModel, RelevanceResult]:
    """Train one model and evaluate it on the locale's test split."""
    extractor = extractor or FeatureExtractor()
    model = RelevanceModel(architecture, trainable_encoder, extractor, seed=seed)
    rng = spawn_rng(seed, f"relevance-train:{architecture}:{trainable_encoder}")
    optimizer = Adam(model.trainable_parameters(), lr=lr)
    train = data.train
    knowledge = train.knowledge if architecture == "cross-encoder-intent" else None
    features = model.featurize(train.queries, train.products, knowledge)
    model.train()
    for _ in range(epochs):
        for batch in _batches(len(train), batch_size, rng):
            batch_features = (
                (features[0][batch], features[1][batch])
                if architecture == "bi-encoder"
                else features[batch]
            )
            logits = model(batch_features)
            loss = cross_entropy(logits, train.labels[batch])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    result = evaluate_model(model, data.test)
    return model, result


def evaluate_model(model: RelevanceModel, split: PreparedSplit) -> RelevanceResult:
    """Macro/Micro F1 of a trained model on a prepared split."""
    knowledge = split.knowledge if model.architecture == "cross-encoder-intent" else None
    features = model.featurize(split.queries, split.products, knowledge)
    with no_grad():
        logits = model(features).numpy()
    predictions = logits.argmax(axis=-1)
    return RelevanceResult(
        architecture=model.architecture,
        trainable_encoder=model.trainable_encoder,
        macro_f1=macro_f1(split.labels, predictions, _N_CLASSES),
        micro_f1=micro_f1(split.labels, predictions, _N_CLASSES),
    )
