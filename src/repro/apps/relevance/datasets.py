"""ESCI dataset preparation for the relevance models (§4.1.1, Table 5).

Bridges the behavior-level :class:`~repro.behavior.esci.ESCIDataset` into
model-ready arrays, including the COSMO knowledge texts generated for
each (query, product) pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.behavior.esci import ESCI_LABELS, ESCIDataset, ESCIExample

__all__ = ["LABEL_TO_ID", "PreparedSplit", "PreparedESCI", "prepare_esci"]

LABEL_TO_ID: dict[str, int] = {label: index for index, label in enumerate(ESCI_LABELS)}


@dataclass
class PreparedSplit:
    """Texts and labels for one split."""

    queries: list[str]
    products: list[str]
    knowledge: list[str]
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.queries)


@dataclass
class PreparedESCI:
    """Model-ready train/test splits for one locale."""

    locale: str
    train: PreparedSplit
    test: PreparedSplit


def _prepare_split(
    examples: list[ESCIExample],
    knowledge_provider,
    batch: int = 128,
) -> PreparedSplit:
    queries = [e.query_text for e in examples]
    products = [e.product_title for e in examples]
    labels = np.array([LABEL_TO_ID[e.label] for e in examples], dtype=np.int64)
    knowledge: list[str] = []
    if knowledge_provider is not None:
        for start in range(0, len(examples), batch):
            chunk = examples[start : start + batch]
            knowledge.extend(knowledge_provider(chunk))
    else:
        knowledge = [""] * len(examples)
    return PreparedSplit(queries=queries, products=products, knowledge=knowledge, labels=labels)


def prepare_esci(
    dataset: ESCIDataset,
    knowledge_provider=None,
) -> PreparedESCI:
    """Prepare one locale's dataset.

    ``knowledge_provider`` takes a list of :class:`ESCIExample` and
    returns one knowledge string per example (usually a batched COSMO-LM
    call); ``None`` leaves knowledge empty (for the baselines).
    """
    return PreparedESCI(
        locale=dataset.locale,
        train=_prepare_split(dataset.train, knowledge_provider),
        test=_prepare_split(dataset.test, knowledge_provider),
    )


def cosmo_knowledge_provider(cosmo_lm, world):
    """Knowledge provider that generates per (query, product) pair with a
    finetuned COSMO-LM (the fresh-generation path)."""

    def provide(examples: list[ESCIExample]) -> list[str]:
        prompts = []
        for example in examples:
            product = world.catalog.get(example.product_id)
            prompts.append(
                cosmo_lm.searchbuy_prompt(
                    example.query_text,
                    example.product_title,
                    product.domain,
                    product_type=product.product_type,
                )
            )
        return [g.text for g in cosmo_lm.generate_batch(prompts).require()]

    return provide


def kg_knowledge_provider(kg, world, max_tails: int = 4):
    """Knowledge provider backed by the built knowledge graph.

    This is the deployed path of Figure 5: downstream applications read
    *stored* knowledge features, not fresh generations.  For each
    product, the tails of KG edges whose head products share its product
    type are ranked by plausibility-weighted support and concatenated —
    exposing the product's full intent pool where a single greedy
    generation covers only one facet.
    """
    from collections import defaultdict

    type_tails: dict[str, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for triple in kg.triples():
        for product_id in triple.head_ids:
            if product_id in world.catalog:
                ptype = world.catalog.get(product_id).product_type
                type_tails[ptype][triple.tail] += triple.plausibility * triple.support

    def provide(examples: list[ESCIExample]) -> list[str]:
        texts = []
        for example in examples:
            product = world.catalog.get(example.product_id)
            ranked = sorted(
                type_tails.get(product.product_type, {}).items(),
                key=lambda item: -item[1],
            )[:max_tails]
            texts.append(" ".join(tail for tail, _ in ranked))
        return texts

    return provide
