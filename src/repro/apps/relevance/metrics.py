"""Classification metrics for the ESCI task: Macro and Micro F1."""

from __future__ import annotations

import numpy as np

__all__ = ["f1_scores", "macro_f1", "micro_f1"]


def _per_class_counts(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int):
    tp = np.zeros(n_classes)
    fp = np.zeros(n_classes)
    fn = np.zeros(n_classes)
    for cls in range(n_classes):
        tp[cls] = np.sum((y_pred == cls) & (y_true == cls))
        fp[cls] = np.sum((y_pred == cls) & (y_true != cls))
        fn[cls] = np.sum((y_pred != cls) & (y_true == cls))
    return tp, fp, fn


def f1_scores(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Per-class F1 (0 where a class has no predictions and no truth)."""
    tp, fp, fn = _per_class_counts(np.asarray(y_true), np.asarray(y_pred), n_classes)
    precision = np.divide(tp, tp + fp, out=np.zeros_like(tp), where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros_like(tp), where=(tp + fn) > 0)
    denom = precision + recall
    return np.divide(2 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> float:
    """Unweighted mean of per-class F1 — the paper's headline metric."""
    return float(f1_scores(y_true, y_pred, n_classes).mean())


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> float:
    """Micro-averaged F1 (equals accuracy for single-label tasks)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp, fp, fn = _per_class_counts(y_true, y_pred, n_classes)
    total_tp, total_fp, total_fn = tp.sum(), fp.sum(), fn.sum()
    if total_tp == 0:
        return 0.0
    precision = total_tp / (total_tp + total_fp)
    recall = total_tp / (total_tp + total_fn)
    return float(2 * precision * recall / (precision + recall))
