"""Intent hierarchy construction for search navigation (§4.3, Figure 8).

COSMO tail knowledge is organized into coarse→fine intent hierarchies
("camping" → "winter camping", "lakeside camping") whose leaves link to
product concepts ("winter boots").  Here the hierarchy is built from the
knowledge graph: modifier-prefixed tails nest under their base tail, and
each tail links to the product types of the heads its edges explain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.behavior.world import World
from repro.core.kg import KnowledgeGraph

__all__ = ["IntentNode", "NavigationHierarchy", "build_navigation_hierarchy"]


@dataclass
class IntentNode:
    """One intent concept in the navigation hierarchy."""

    label: str
    domain: str
    children: list["IntentNode"] = field(default_factory=list)
    product_types: list[str] = field(default_factory=list)

    def depth(self) -> int:
        """Height of this subtree (1 for a leaf)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def descendant_count(self) -> int:
        """Number of refined intents nested under this node."""
        return len(self.children) + sum(c.descendant_count() for c in self.children)


@dataclass
class NavigationHierarchy:
    """All root intents per domain, with lookup helpers."""

    roots: dict[str, list[IntentNode]]  # domain → root nodes

    def domains(self) -> list[str]:
        """Domains with at least one intent root."""
        return sorted(self.roots)

    def for_domain(self, domain: str) -> list[IntentNode]:
        """Root intent nodes of one domain."""
        return self.roots.get(domain, [])

    def find(self, domain: str, label: str) -> IntentNode | None:
        """Depth-first lookup of an intent node by its label."""
        def walk(nodes: list[IntentNode]):
            for node in nodes:
                if node.label == label:
                    return node
                found = walk(node.children)
                if found is not None:
                    return found
            return None

        return walk(self.for_domain(domain))

    def stats(self) -> dict[str, float]:
        """Figure 8-shaped summary: roots, refined intents, linked types."""
        roots = sum(len(nodes) for nodes in self.roots.values())
        refined = sum(
            node.descendant_count() for nodes in self.roots.values() for node in nodes
        )
        linked = sum(
            len(node.product_types) + sum(len(c.product_types) for c in node.children)
            for nodes in self.roots.values()
            for node in nodes
        )
        max_depth = max(
            (node.depth() for nodes in self.roots.values() for node in nodes),
            default=0,
        )
        return {
            "root_intents": roots,
            "refined_intents": refined,
            "linked_product_types": linked,
            "max_depth": max_depth,
        }


def build_navigation_hierarchy(kg: KnowledgeGraph, world: World) -> NavigationHierarchy:
    """Assemble the per-domain hierarchy from KG tails.

    A tail "winter camping" nests under "camping" when both occur as
    tails in the same domain; each node links the product types of the
    products whose behaviors its knowledge edges explain.
    """
    roots: dict[str, list[IntentNode]] = {}
    # The graph's interned domain table: no full-edge scan, and a
    # deterministic (first-appearance) domain order for the roots dict.
    for domain in kg.domains():
        triples = kg.for_domain(domain)
        tails = {t.tail for t in triples}
        tail_types: dict[str, set[str]] = {}
        for triple in triples:
            types = set()
            for product_id in triple.head_ids:
                if product_id in world.catalog:
                    types.add(world.catalog.get(product_id).product_type)
            tail_types.setdefault(triple.tail, set()).update(types)

        children_map: dict[str, list[str]] = {}
        root_labels: list[str] = []
        for tail in sorted(tails):
            parts = tail.split(" ", 1)
            parent = parts[1] if len(parts) == 2 and parts[1] in tails else None
            if parent is not None:
                children_map.setdefault(parent, []).append(tail)
            else:
                root_labels.append(tail)

        def build(label: str) -> IntentNode:
            return IntentNode(
                label=label,
                domain=domain,
                children=[build(child) for child in sorted(children_map.get(label, []))],
                product_types=sorted(tail_types.get(label, set())),
            )

        roots[domain] = [build(label) for label in root_labels]
    return NavigationHierarchy(roots=roots)
