"""Query-rewrite reduction study (§4.2.4's future work, implemented).

The paper observes that electronics sessions carry ~2.5 unique queries —
users *rewrite* broad queries until results match their refined need —
and leaves "how COSMO reduces query rewrites" to future work.  This
module implements that study: customers with a refined latent intent
("winter camping") issue the coarse query ("camping"); in the baseline
experience they must rewrite the query to surface refined-intent
products, while the COSMO experience offers the refined intent as a
navigation suggestion after the first query, replacing the rewrite with
a click.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.navigation.hierarchy import NavigationHierarchy
from repro.behavior.world import World
from repro.utils.rng import spawn_rng

__all__ = ["RewriteOutcome", "QueryRewriteStudy"]


@dataclass
class RewriteOutcome:
    """Aggregate search behavior under one experience."""

    name: str
    sessions: int = 0
    rewrites: int = 0
    successes: int = 0

    @property
    def avg_rewrites(self) -> float:
        """Mean query rewrites per session (the Table 7-adjacent metric)."""
        return self.rewrites / self.sessions if self.sessions else 0.0

    @property
    def success_rate(self) -> float:
        """Sessions that surfaced a refined-intent product in budget."""
        return self.successes / self.sessions if self.sessions else 0.0


class QueryRewriteStudy:
    """Simulates coarse-query sessions with and without COSMO navigation."""

    def __init__(
        self,
        world: World,
        hierarchy: NavigationHierarchy,
        top_k: int = 8,
        max_attempts: int = 3,
        seed: int = 0,
    ):
        self.world = world
        self.hierarchy = hierarchy
        self.top_k = top_k
        self.max_attempts = max_attempts
        self._rng = spawn_rng(seed, "query-rewrites")

    # ------------------------------------------------------------------
    def _customers(self, n_sessions: int):
        """(coarse intent, refined intent) pairs with refined products."""
        refined_intents = [
            intent for intent in self.world.intents.all()
            if intent.parent is not None
            and self.world.catalog.serving_intent(intent.intent_id)
        ]
        customers = []
        for _ in range(n_sessions):
            refined = refined_intents[int(self._rng.integers(len(refined_intents)))]
            coarse = self.world.intents.get(refined.parent)
            customers.append((coarse, refined))
        return customers

    def _results_for(self, intent_id: str) -> list[str]:
        """Top-k popular products serving ``intent_id``."""
        products = self.world.catalog.serving_intent(intent_id)
        ranked = sorted(products, key=lambda p: -p.popularity)[: self.top_k]
        return [p.product_id for p in ranked]

    def _satisfied(self, shown: list[str], refined) -> bool:
        wanted = {p.product_id for p in self.world.catalog.serving_intent(refined.intent_id)}
        return any(product_id in wanted for product_id in shown)

    # ------------------------------------------------------------------
    def run(self, n_sessions: int, use_cosmo: bool) -> RewriteOutcome:
        """Simulate sessions under one experience.

        Baseline: the customer searches the coarse query; if the results
        miss their refined need they rewrite toward the refined intent
        (one rewrite per attempt, up to ``max_attempts``).  COSMO: after
        the first query the navigation pane offers refined intents of
        the coarse concept; when the customer's refinement is among them
        a click replaces the rewrite.
        """
        outcome = RewriteOutcome(name="cosmo" if use_cosmo else "baseline")
        for coarse, refined in self._customers(n_sessions):
            outcome.sessions += 1
            shown = self._results_for(coarse.intent_id)
            if self._satisfied(shown, refined):
                outcome.successes += 1
                continue
            if use_cosmo:
                node = self.hierarchy.find(coarse.domain, coarse.tail)
                suggested = {child.label for child in (node.children if node else [])}
                if refined.tail in suggested:
                    # Navigation click instead of a rewrite.
                    shown = self._results_for(refined.intent_id)
                    if self._satisfied(shown, refined):
                        outcome.successes += 1
                    continue
            # Rewrite loop (both experiences fall back to it).
            for _ in range(self.max_attempts - 1):
                outcome.rewrites += 1
                shown = self._results_for(refined.intent_id)
                if self._satisfied(shown, refined):
                    outcome.successes += 1
                    break
        return outcome
