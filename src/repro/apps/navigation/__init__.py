"""Search navigation application (§4.3): intent hierarchies, multi-turn
navigation, and the online A/B experiment simulator."""

from repro.apps.navigation.experiments import ABTestResult, ArmOutcome, NavigationABTest
from repro.apps.navigation.hierarchy import (
    IntentNode,
    NavigationHierarchy,
    build_navigation_hierarchy,
)
from repro.apps.navigation.navigator import (
    CosmoNavigator,
    NavigationTurn,
    Suggestion,
    TaxonomyNavigator,
)
from repro.apps.navigation.query_rewrites import QueryRewriteStudy, RewriteOutcome

__all__ = [
    "IntentNode",
    "NavigationHierarchy",
    "build_navigation_hierarchy",
    "Suggestion",
    "NavigationTurn",
    "TaxonomyNavigator",
    "CosmoNavigator",
    "ArmOutcome",
    "ABTestResult",
    "NavigationABTest",
    "QueryRewriteStudy",
    "RewriteOutcome",
]
