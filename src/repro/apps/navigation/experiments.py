"""Online A/B experiment simulator for search navigation (§4.3.2).

The paper reports, over months of A/B tests on ~10% of US traffic, a
**0.7% relative product-sales increase** and an **8% relative navigation
engagement increase**.  This harness reproduces the experiment's shape:

* a traffic simulator draws customers with latent (possibly refined)
  intents issuing broad queries;
* the control arm shows taxonomy suggestions, the treatment arm COSMO's
  intent-first multi-turn navigation (both see the *same* customers via
  a deterministic assignment hash);
* engagement = the customer clicked a navigation suggestion (they click
  when a suggestion matches their intent or its refinement);
* sales = the customer purchased; purchases mostly happen through
  ordinary search regardless of navigation (which is why the sales lift
  is small), with a boost when navigation surfaced intent-matching
  products;
* two-proportion z-tests give the significance of both lifts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.apps.navigation.navigator import CosmoNavigator, TaxonomyNavigator
from repro.behavior.world import World
from repro.utils.rng import spawn_rng

__all__ = ["ArmOutcome", "ABTestResult", "NavigationABTest"]


@dataclass
class ArmOutcome:
    """Counters for one experiment arm."""

    name: str
    sessions: int = 0
    engaged: int = 0
    purchases: int = 0

    @property
    def engagement_rate(self) -> float:
        """Fraction of sessions that clicked a navigation suggestion."""
        return self.engaged / self.sessions if self.sessions else 0.0

    @property
    def purchase_rate(self) -> float:
        """Fraction of sessions ending in a purchase (the sales metric)."""
        return self.purchases / self.sessions if self.sessions else 0.0


def _two_proportion_z(success_a: int, n_a: int, success_b: int, n_b: int) -> tuple[float, float]:
    """z statistic and two-sided p-value for proportion difference."""
    if n_a == 0 or n_b == 0:
        return 0.0, 1.0
    p_pool = (success_a + success_b) / (n_a + n_b)
    se = np.sqrt(p_pool * (1 - p_pool) * (1 / n_a + 1 / n_b))
    if se == 0:
        return 0.0, 1.0
    z = (success_b / n_b - success_a / n_a) / se
    return float(z), float(2 * (1 - stats.norm.cdf(abs(z))))


@dataclass
class ABTestResult:
    """Both arms plus derived lifts and significance."""

    control: ArmOutcome
    treatment: ArmOutcome

    @property
    def sales_lift(self) -> float:
        """Relative product-sales increase (the paper's 0.7%)."""
        if self.control.purchase_rate == 0:
            return 0.0
        return self.treatment.purchase_rate / self.control.purchase_rate - 1.0

    @property
    def engagement_lift(self) -> float:
        """Relative navigation-engagement increase (the paper's 8%)."""
        if self.control.engagement_rate == 0:
            return 0.0
        return self.treatment.engagement_rate / self.control.engagement_rate - 1.0

    def sales_significance(self) -> tuple[float, float]:
        """(z, p) of the purchase-rate difference between arms."""
        return _two_proportion_z(
            self.control.purchases, self.control.sessions,
            self.treatment.purchases, self.treatment.sessions,
        )

    def engagement_significance(self) -> tuple[float, float]:
        """(z, p) of the engagement-rate difference between arms."""
        return _two_proportion_z(
            self.control.engaged, self.control.sessions,
            self.treatment.engaged, self.treatment.sessions,
        )


class NavigationABTest:
    """Runs the simulated A/B experiment over generated traffic."""

    def __init__(
        self,
        world: World,
        control: TaxonomyNavigator,
        treatment: CosmoNavigator,
        treatment_fraction: float = 0.10,
        base_purchase_rate: float = 0.30,
        navigation_purchase_boost: float = 0.06,
        base_click_rate: float = 0.04,
        seed: int = 0,
    ):
        self.world = world
        self.control = control
        self.treatment = treatment
        self.treatment_fraction = treatment_fraction
        self.base_purchase_rate = base_purchase_rate
        self.navigation_purchase_boost = navigation_purchase_boost
        self.base_click_rate = base_click_rate
        self._rng = spawn_rng(seed, "nav-abtest")

    # ------------------------------------------------------------------
    def _draw_customer(self):
        """A customer with a latent (possibly refined) intent + query."""
        intents = self.world.intents.all()
        intent = intents[int(self._rng.integers(len(intents)))]
        children = self.world.intents.children(intent.intent_id)
        refined = None
        if children and self._rng.random() < 0.5:
            refined = children[int(self._rng.integers(len(children)))]
        return intent, refined

    def _matches(self, suggestion_label: str, intent, refined) -> bool:
        targets = {intent.tail.lower()}
        if refined is not None:
            targets.add(refined.tail.lower())
        # A customer wanting "winter camping" also clicks the coarse
        # "camping" concept, and vice versa.
        if intent.parent is not None:
            targets.add(self.world.intents.get(intent.parent).tail.lower())
        label = suggestion_label.lower()
        if label in targets:
            return True
        # A product-type suggestion matches when it serves the intent.
        wanted = refined or intent
        serving_types = {
            p.product_type.lower()
            for p in self.world.catalog.serving_intent(wanted.intent_id)
        }
        return label in serving_types

    def _session(self, navigator, outcome: ArmOutcome) -> None:
        intent, refined = self._draw_customer()
        outcome.sessions += 1
        turn = navigator.first_turn(intent.domain, intent.tail)
        engaged = False
        matched_product = False
        picked = None
        for suggestion in turn.suggestions:
            if self._matches(suggestion.label, intent, refined):
                picked = suggestion
                break
        if picked is None and turn.suggestions and self._rng.random() < self.base_click_rate:
            picked = turn.suggestions[int(self._rng.integers(len(turn.suggestions)))]
        if picked is not None:
            engaged = True
            if self._matches(picked.label, intent, refined):
                # A matching pick lands on intent-filtered results: a
                # matching product type shows its products; a matching
                # intent concept shows the products serving that intent.
                matched_product = True
            else:
                second = navigator.refine(intent.domain, picked)
                matched_product = any(
                    self._matches(s.label, intent, refined) for s in second.suggestions
                )
        if engaged:
            outcome.engaged += 1
        purchase_rate = self.base_purchase_rate
        if matched_product:
            purchase_rate += self.navigation_purchase_boost
        if self._rng.random() < purchase_rate:
            outcome.purchases += 1

    # ------------------------------------------------------------------
    def run(self, n_sessions: int = 20_000) -> ABTestResult:
        """Simulate ``n_sessions`` customer sessions across both arms."""
        control = ArmOutcome(name=self.control.name)
        treatment = ArmOutcome(name=self.treatment.name)
        for _ in range(n_sessions):
            if self._rng.random() < self.treatment_fraction:
                self._session(self.treatment, treatment)
            else:
                self._session(self.control, control)
        return ABTestResult(control=control, treatment=treatment)
