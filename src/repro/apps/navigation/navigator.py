"""Multi-turn search navigation (§4.3.1, Figure 9).

COSMO navigation walks three layers: broad-conception interpretation
(intent roots matching the query), product type/subtype discovery, and
attribute-based refinement — with multi-turn refinement ("camping" →
"air mattress" → "camping air mattress" → "lakeside camping ...").

The control experience is the traditional product-centric taxonomy:
suggestions are popular product types of the query's domain, blind to
the customer's intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.navigation.hierarchy import IntentNode, NavigationHierarchy
from repro.behavior.world import World
from repro.catalog.products import Product
from repro.utils.rng import spawn_rng

__all__ = ["Suggestion", "NavigationTurn", "TaxonomyNavigator", "CosmoNavigator"]


@dataclass(frozen=True)
class Suggestion:
    """One clickable refinement shown to the customer."""

    kind: str  # "intent" | "product_type" | "attribute"
    label: str


@dataclass
class NavigationTurn:
    """One round of the navigation dialog."""

    layer: str
    suggestions: list[Suggestion] = field(default_factory=list)


class TaxonomyNavigator:
    """Control arm: static product-taxonomy suggestions."""

    name = "taxonomy"

    def __init__(
        self,
        world: World,
        suggestions_per_turn: int = 5,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ):
        self.world = world
        self.k = suggestions_per_turn
        self._rng = rng if rng is not None else spawn_rng(seed, "navigation/taxonomy")

    def first_turn(self, domain: str, query_text: str) -> NavigationTurn:
        """Popular product types of the domain, intent-blind."""
        products = self.world.catalog.for_domain(domain)
        by_type: dict[str, float] = {}
        for product in products:
            by_type[product.product_type] = by_type.get(product.product_type, 0.0) + product.popularity
        ranked = sorted(by_type, key=lambda t: -by_type[t])[: self.k]
        return NavigationTurn(
            layer="product_type",
            suggestions=[Suggestion("product_type", label) for label in ranked],
        )

    def refine(self, domain: str, picked: Suggestion) -> NavigationTurn:
        """Attribute filters for the picked type (generic modifiers)."""
        products = self.world.catalog.for_type(domain, picked.label)
        attributes = sorted({a for p in products for a in p.attributes})[: self.k]
        return NavigationTurn(
            layer="attribute",
            suggestions=[Suggestion("attribute", label) for label in attributes],
        )

    def results(self, domain: str, product_type: str) -> list[Product]:
        """Products shown after the customer picks a type suggestion."""
        return self.world.catalog.for_type(domain, product_type)


class CosmoNavigator:
    """Treatment arm: intent-first, multi-turn COSMO navigation."""

    name = "cosmo"

    def __init__(
        self,
        world: World,
        hierarchy: NavigationHierarchy,
        suggestions_per_turn: int = 5,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ):
        self.world = world
        self.hierarchy = hierarchy
        self.k = suggestions_per_turn
        self._rng = rng if rng is not None else spawn_rng(seed, "navigation/cosmo")

    # -- layer 1: broad conception interpretation -----------------------
    def first_turn(self, domain: str, query_text: str) -> NavigationTurn:
        """Intent concepts matching the broad query.

        COSMO navigation *augments* the product-centric experience
        (§4.3: "a single, relatively minor feature on the search page"):
        intent concepts that plausibly match the query lead, and the
        remaining slots keep the familiar popular product types, so the
        treatment never regresses below the taxonomy baseline.
        """
        query_tokens = set(query_text.lower().split())
        scored: list[tuple[float, IntentNode]] = []
        for root in self.hierarchy.for_domain(domain):
            overlap = len(query_tokens & set(root.label.lower().split()))
            if overlap:
                scored.append((overlap + 0.01 * len(root.children), root))
        scored.sort(key=lambda item: -item[0])
        suggestions = [
            Suggestion("intent", node.label) for _, node in scored[: self.k - 2]
        ]
        products = self.world.catalog.for_domain(domain)
        by_type: dict[str, float] = {}
        for product in products:
            by_type[product.product_type] = by_type.get(product.product_type, 0.0) + product.popularity
        for label in sorted(by_type, key=lambda t: -by_type[t]):
            if len(suggestions) >= self.k:
                break
            suggestions.append(Suggestion("product_type", label))
        return NavigationTurn(layer="intent", suggestions=suggestions)

    # -- layer 2: refined intents and product types ----------------------
    def refine(self, domain: str, picked: Suggestion) -> NavigationTurn:
        """Multi-turn refinement under the picked intent."""
        node = self.hierarchy.find(domain, picked.label)
        if node is None:
            return NavigationTurn(layer="product_type", suggestions=[])
        suggestions: list[Suggestion] = []
        for child in node.children[: self.k]:
            suggestions.append(Suggestion("intent", child.label))
        for product_type in node.product_types[: self.k - len(suggestions)]:
            suggestions.append(Suggestion("product_type", product_type))
        return NavigationTurn(layer="intent_or_type", suggestions=suggestions)

    # -- layer 3: attribute-based refinement -----------------------------
    def attribute_turn(self, domain: str, product_type: str) -> NavigationTurn:
        """Layer 3: attribute filters for a chosen product type."""
        products = self.world.catalog.for_type(domain, product_type)
        attributes = sorted({a for p in products for a in p.attributes})[: self.k]
        return NavigationTurn(
            layer="attribute",
            suggestions=[Suggestion("attribute", label) for label in attributes],
        )

    def results(self, domain: str, intent_label: str) -> list[Product]:
        """Products linked to the intent concept (via the hierarchy)."""
        node = self.hierarchy.find(domain, intent_label)
        if node is None:
            return []
        products: list[Product] = []
        for product_type in node.product_types:
            products.extend(self.world.catalog.for_type(domain, product_type))
        return products
