"""Session-based recommendation application (§4.2): 7 baselines and
COSMO-GNN over the synthetic session logs."""

from repro.apps.recommendation.baselines import CSRM, FPMC, GRU4Rec, STAMP
from repro.apps.recommendation.cosmo_gnn import CosmoGNN
from repro.apps.recommendation.datasets import (
    SessionDataset,
    SessionExample,
    build_session_dataset,
)
from repro.apps.recommendation.gnn import (
    GCEGNN,
    GCSAN,
    SRGNN,
    build_global_graph,
    build_session_graphs,
)
from repro.apps.recommendation.metrics import hits_at_k, mrr_at_k, ndcg_at_k, ranking_metrics
from repro.apps.recommendation.train import (
    MODEL_NAMES,
    TrainConfig,
    build_model,
    evaluate_session_model,
    train_session_model,
)

__all__ = [
    "FPMC",
    "GRU4Rec",
    "STAMP",
    "CSRM",
    "SRGNN",
    "GCSAN",
    "GCEGNN",
    "CosmoGNN",
    "build_global_graph",
    "build_session_graphs",
    "SessionDataset",
    "SessionExample",
    "build_session_dataset",
    "hits_at_k",
    "ndcg_at_k",
    "mrr_at_k",
    "ranking_metrics",
    "MODEL_NAMES",
    "TrainConfig",
    "build_model",
    "train_session_model",
    "evaluate_session_model",
]
