"""Session-recommendation dataset preparation (§4.2.1, Table 7).

Sessions become (prefix → next item) prediction examples with the §4.2.1
day-based split (days 0-4 train, 5 dev, 6 test).  For COSMO-GNN, each
step also carries the knowledge embedding of its (query, item) pair —
COSMO-LM knowledge vectorized by the shared text encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.behavior.sessions import Session, SessionLog
from repro.embeddings.encoder import TextEncoder

__all__ = ["SessionExample", "SessionDataset", "build_session_dataset"]

PAD_ITEM = 0  # index 0 is reserved for padding


@dataclass(frozen=True)
class SessionExample:
    """One prediction instance: item prefix (+ queries) → next item."""

    items: tuple[int, ...]  # 1-based item indices
    queries: tuple[str, ...]
    target: int


@dataclass
class SessionDataset:
    """Prepared splits plus the item vocabulary."""

    domain: str
    item_to_index: dict[str, int]
    train: list[SessionExample]
    dev: list[SessionExample]
    test: list[SessionExample]
    max_len: int
    knowledge_vectors: dict[tuple[str, int], np.ndarray] = field(default_factory=dict)

    @property
    def n_items(self) -> int:
        """Item count including the padding slot."""
        return len(self.item_to_index) + 1

    def batch_arrays(self, examples: list[SessionExample]):
        """Pad a list of examples into (items, mask, targets) arrays."""
        width = max(len(e.items) for e in examples)
        items = np.zeros((len(examples), width), dtype=np.int64)
        mask = np.zeros((len(examples), width), dtype=bool)
        targets = np.zeros(len(examples), dtype=np.int64)
        for row, example in enumerate(examples):
            items[row, : len(example.items)] = example.items
            mask[row, : len(example.items)] = True
            targets[row] = example.target
        return items, mask, targets

    def knowledge_matrix(self, examples: list[SessionExample], dim: int) -> np.ndarray:
        """Per-step knowledge vectors aligned with :meth:`batch_arrays`."""
        width = max(len(e.items) for e in examples)
        out = np.zeros((len(examples), width, dim))
        for row, example in enumerate(examples):
            for col, (query, item) in enumerate(zip(example.queries, example.items)):
                vector = self.knowledge_vectors.get((query, item))
                if vector is not None:
                    out[row, col] = vector
        return out


def _examples_from_sessions(
    sessions: list[Session],
    item_to_index: dict[str, int],
    max_len: int,
) -> list[SessionExample]:
    examples: list[SessionExample] = []
    for session in sessions:
        indices = [item_to_index[step.item_id] for step in session.steps]
        queries = [step.query_text for step in session.steps]
        for position in range(1, len(indices)):
            start = max(0, position - max_len)
            examples.append(
                SessionExample(
                    items=tuple(indices[start:position]),
                    queries=tuple(queries[start:position]),
                    target=indices[position],
                )
            )
    return examples


def build_session_dataset(
    log: SessionLog,
    max_len: int = 10,
    knowledge_provider=None,
    encoder: TextEncoder | None = None,
) -> SessionDataset:
    """Prepare one domain's dataset from its session log.

    ``knowledge_provider(query_text, item_id) -> str`` supplies COSMO
    knowledge per (query, item) step; with ``encoder`` set, each unique
    pair is vectorized once into ``knowledge_vectors``.
    """
    item_ids = sorted({step.item_id for session in log.sessions for step in session.steps})
    item_to_index = {item: index + 1 for index, item in enumerate(item_ids)}
    train = _examples_from_sessions(log.by_day({0, 1, 2, 3, 4}), item_to_index, max_len)
    dev = _examples_from_sessions(log.by_day({5}), item_to_index, max_len)
    test = _examples_from_sessions(log.by_day({6}), item_to_index, max_len)
    dataset = SessionDataset(
        domain=log.domain,
        item_to_index=item_to_index,
        train=train,
        dev=dev,
        test=test,
        max_len=max_len,
    )
    if knowledge_provider is not None and encoder is not None:
        unique_pairs = {
            (query, item)
            for split in (train, dev, test)
            for example in split
            for query, item in zip(example.queries, example.items)
        }
        index_to_item = {index: item for item, index in item_to_index.items()}
        pairs = sorted(unique_pairs)
        texts = [knowledge_provider(query, index_to_item[item])
                 for query, item in pairs]
        vectors = encoder.encode_batch(texts)
        for pair, vector in zip(pairs, vectors):
            dataset.knowledge_vectors[pair] = vector
    return dataset
