"""Ranking metrics for session-based recommendation (§4.2.1)."""

from __future__ import annotations

import numpy as np

__all__ = ["hits_at_k", "ndcg_at_k", "mrr_at_k", "ranking_metrics"]


def _ranks(scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """1-based rank of each target item under its score row."""
    target_scores = scores[np.arange(len(targets)), targets]
    # Rank = 1 + number of items strictly better (ties broken pessimistically).
    return 1 + (scores > target_scores[:, None]).sum(axis=1)


def hits_at_k(scores: np.ndarray, targets: np.ndarray, k: int = 10) -> float:
    """Fraction of targets ranked in the top k."""
    return float((_ranks(scores, targets) <= k).mean())


def ndcg_at_k(scores: np.ndarray, targets: np.ndarray, k: int = 10) -> float:
    """NDCG@k with a single relevant item per example."""
    ranks = _ranks(scores, targets)
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def mrr_at_k(scores: np.ndarray, targets: np.ndarray, k: int = 10) -> float:
    """Mean reciprocal rank, zeroed beyond k."""
    ranks = _ranks(scores, targets)
    rr = np.where(ranks <= k, 1.0 / ranks, 0.0)
    return float(rr.mean())


def ranking_metrics(scores: np.ndarray, targets: np.ndarray, k: int = 10) -> dict[str, float]:
    """All three Table 8 metrics at once (percentages)."""
    return {
        f"Hits@{k}": 100.0 * hits_at_k(scores, targets, k),
        f"NDCG@{k}": 100.0 * ndcg_at_k(scores, targets, k),
        f"MRR@{k}": 100.0 * mrr_at_k(scores, targets, k),
    }
