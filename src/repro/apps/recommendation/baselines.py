"""Sequential session-recommendation baselines (§4.2.2).

* **FPMC** — factorized first-order Markov chain: the next item is scored
  by the interaction of the last item's transition embedding with the
  candidate's embedding (the session variant of Rendle et al. 2010).
* **GRU4Rec** — GRU over item embeddings (Hidasi et al. 2016).
* **STAMP** — short-term attention/memory priority: attention over the
  history with the last item as priority, trilinear scoring (Liu et al.
  2018).
* **CSRM** — GRU inner encoder plus an external memory attended by the
  session state (Wang et al. 2019; the neighborhood memory is modeled as
  a trainable slot matrix).

All models score every item (index 0 = padding is masked out of the
metrics by construction since targets are ≥ 1).
"""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Embedding, Linear, Module, Parameter, Tensor
from repro.nn import init as nn_init
from repro.utils.rng import spawn_rng

__all__ = ["FPMC", "GRU4Rec", "STAMP", "CSRM"]


class SessionModel(Module):
    """Shared interface: forward(items, mask, knowledge=None) → logits."""

    needs_knowledge = False

    def forward(self, items: np.ndarray, mask: np.ndarray, knowledge=None) -> Tensor:
        raise NotImplementedError  # pragma: no cover


def _last_indices(mask: np.ndarray) -> np.ndarray:
    """Position of the last valid step per row."""
    return mask.sum(axis=1).astype(np.int64) - 1


class FPMC(SessionModel):
    """Factorized personalized Markov chain (session-anonymous variant)."""

    def __init__(self, n_items: int, dim: int = 48, seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "fpmc")
        self.transition = Embedding(n_items, dim, rng, padding_idx=0)
        self.candidate = Parameter(nn_init.normal(rng, (n_items, dim), std=0.1))
        self.bias = Parameter(np.zeros(n_items))

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """Score all items from the last item's transition embedding."""
        rows = np.arange(items.shape[0])
        last_items = items[rows, _last_indices(mask)]
        last_embed = self.transition(last_items)
        return last_embed @ self.candidate.T + self.bias


class GRU4Rec(SessionModel):
    """GRU over the item sequence; final state scores all items."""

    def __init__(self, n_items: int, dim: int = 48, hidden: int = 64, seed: int = 0):
        super().__init__()
        from repro.nn import GRU

        rng = spawn_rng(seed, "gru4rec")
        self.items = Embedding(n_items, dim, rng, padding_idx=0)
        self.gru = GRU(dim, hidden, rng)
        self.out = Linear(hidden, n_items, rng)

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """Run the GRU over the session; the final state scores items."""
        embedded = self.items(items)
        _, final = self.gru(embedded, mask=mask)
        return self.out(final)


class STAMP(SessionModel):
    """Short-term attention/memory priority model."""

    def __init__(self, n_items: int, dim: int = 48, seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "stamp")
        self.items = Embedding(n_items, dim, rng, padding_idx=0)
        self.w1 = Linear(dim, dim, rng, bias=False)
        self.w2 = Linear(dim, dim, rng, bias=False)
        self.w3 = Linear(dim, dim, rng)
        self.v = Linear(dim, 1, rng, bias=False)
        self.mlp_a = MLP([dim, dim], rng)
        self.mlp_b = MLP([dim, dim], rng)

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """Attention over history with last-item priority, trilinear scoring."""
        embedded = self.items(items)  # (B, T, d)
        mask_f = mask.astype(np.float64)[..., None]
        counts = np.maximum(mask_f.sum(axis=1), 1.0)
        mean = (embedded * Tensor(mask_f)).sum(axis=1) / Tensor(counts)
        rows = np.arange(items.shape[0])
        last = self.items(items[rows, _last_indices(mask)])
        batch, steps, dim = embedded.shape
        energy = (
            self.w1(embedded)
            + self.w2(last).reshape(batch, 1, dim)
            + self.w3(mean).reshape(batch, 1, dim)
        ).sigmoid()
        scores = self.v(energy) * Tensor(mask_f)
        context = (embedded * scores).sum(axis=1) + mean
        h_s = self.mlp_a(context).tanh()
        h_t = self.mlp_b(last).tanh()
        return (h_s * h_t) @ self.items.weight.T


class CSRM(SessionModel):
    """Collaborative session-based recommendation with an external memory."""

    def __init__(self, n_items: int, dim: int = 48, hidden: int = 64,
                 memory_slots: int = 64, seed: int = 0):
        super().__init__()
        from repro.nn import GRU

        rng = spawn_rng(seed, "csrm")
        self.items = Embedding(n_items, dim, rng, padding_idx=0)
        self.gru = GRU(dim, hidden, rng)
        self.memory = Parameter(nn_init.normal(rng, (memory_slots, hidden), std=0.1))
        self.fuse = Linear(2 * hidden, hidden, rng)
        self.out = Linear(hidden, n_items, rng)

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """Fuse the inner GRU state with attention over the outer memory."""
        embedded = self.items(items)
        _, inner = self.gru(embedded, mask=mask)  # (B, hidden)
        # Outer memory: softmax attention of the session state over slots.
        scores = inner @ self.memory.T  # (B, slots)
        shifted = scores - scores.max(axis=-1, keepdims=True).detach()
        weights = shifted.exp() / shifted.exp().sum(axis=-1, keepdims=True)
        outer = weights @ self.memory
        fused = self.fuse(Tensor.concat([inner, outer], axis=-1)).tanh()
        return self.out(fused)
