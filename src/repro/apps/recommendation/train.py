"""Trainer + evaluation loop shared by all session recommenders (§4.2)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.recommendation.baselines import CSRM, FPMC, GRU4Rec, STAMP
from repro.apps.recommendation.cosmo_gnn import CosmoGNN
from repro.apps.recommendation.datasets import SessionDataset, SessionExample
from repro.apps.recommendation.gnn import GCEGNN, GCSAN, SRGNN, build_global_graph
from repro.apps.recommendation.metrics import ranking_metrics
from repro.nn import Adam, cross_entropy, no_grad
from repro.utils.rng import spawn_rng

__all__ = ["MODEL_NAMES", "TrainConfig", "build_model", "train_session_model", "evaluate_session_model"]

MODEL_NAMES: tuple[str, ...] = (
    "FPMC", "GRU4Rec", "STAMP", "CSRM", "SRGNN", "GC-SAN", "GCE-GNN", "COSMO-GNN",
)


@dataclass(frozen=True)
class TrainConfig:
    """Shared training hyperparameters."""

    dim: int = 48
    epochs: int = 3
    batch_size: int = 64
    lr: float = 2e-3
    knowledge_dim: int = 64


def build_model(name: str, dataset: SessionDataset, config: TrainConfig, seed: int = 0):
    """Instantiate one recommender by its Table 8 name."""
    n_items = dataset.n_items
    if name == "FPMC":
        return FPMC(n_items, dim=config.dim, seed=seed)
    if name == "GRU4Rec":
        return GRU4Rec(n_items, dim=config.dim, seed=seed)
    if name == "STAMP":
        return STAMP(n_items, dim=config.dim, seed=seed)
    if name == "CSRM":
        return CSRM(n_items, dim=config.dim, seed=seed)
    if name == "SRGNN":
        return SRGNN(n_items, dim=config.dim, seed=seed)
    if name == "GC-SAN":
        return GCSAN(n_items, dim=config.dim, seed=seed)
    if name in ("GCE-GNN", "COSMO-GNN"):
        neighbors, weights = build_global_graph(dataset.train, n_items)
        if name == "GCE-GNN":
            return GCEGNN(n_items, neighbors, weights, dim=config.dim,
                          max_len=dataset.max_len, seed=seed)
        return CosmoGNN(n_items, neighbors, weights, knowledge_dim=config.knowledge_dim,
                        dim=config.dim, max_len=dataset.max_len, seed=seed)
    raise ValueError(f"unknown model {name!r}; valid: {MODEL_NAMES}")


def _forward(model, dataset: SessionDataset, examples: list[SessionExample], config: TrainConfig):
    items, mask, targets = dataset.batch_arrays(examples)
    knowledge = None
    if getattr(model, "needs_knowledge", False):
        knowledge = dataset.knowledge_matrix(examples, config.knowledge_dim)
    return model(items, mask, knowledge=knowledge), targets


def train_session_model(
    name: str,
    dataset: SessionDataset,
    config: TrainConfig | None = None,
    seed: int = 0,
):
    """Train one recommender on the dataset's train split."""
    config = config or TrainConfig()
    model = build_model(name, dataset, config, seed=seed)
    optimizer = Adam(model.parameters(), lr=config.lr)
    rng = spawn_rng(seed, f"rec-train:{name}")
    model.train()
    for _ in range(config.epochs):
        order = rng.permutation(len(dataset.train))
        for start in range(0, len(order), config.batch_size):
            batch = [dataset.train[i] for i in order[start : start + config.batch_size]]
            logits, targets = _forward(model, dataset, batch, config)
            loss = cross_entropy(logits, targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    model.eval()
    return model


def evaluate_session_model(
    model,
    dataset: SessionDataset,
    split: str = "test",
    config: TrainConfig | None = None,
    k: int = 10,
    batch_size: int = 256,
) -> dict[str, float]:
    """Table 8 metrics on one split."""
    config = config or TrainConfig()
    examples = getattr(dataset, split)
    all_scores = []
    all_targets = []
    with no_grad():
        for start in range(0, len(examples), batch_size):
            batch = examples[start : start + batch_size]
            logits, targets = _forward(model, dataset, batch, config)
            scores = logits.numpy().copy()
            scores[:, 0] = -np.inf  # never rank the padding slot
            all_scores.append(scores)
            all_targets.append(targets)
    return ranking_metrics(np.vstack(all_scores), np.concatenate(all_targets), k=k)
