"""Graph-based session recommenders (§4.2.2): SR-GNN, GC-SAN, GCE-GNN.

Each session becomes a directed graph over its unique items (in/out
normalized adjacency); a gated GNN propagates item states, and a readout
attends over the session with the last item (and, for GCE-GNN, global
co-occurrence neighbors and positional attention) to score all items.
"""

from __future__ import annotations

import numpy as np

from repro.apps.recommendation.baselines import SessionModel, _last_indices
from repro.nn import Embedding, Linear, Parameter, SelfAttention, Tensor
from repro.nn import init as nn_init
from repro.utils.rng import spawn_rng

__all__ = ["SessionGraphBatch", "build_session_graphs", "GatedGNNLayer",
           "SRGNN", "GCSAN", "GCEGNN", "build_global_graph"]


class SessionGraphBatch:
    """Batched session graphs: node ids, alias map, adjacency matrices."""

    def __init__(self, nodes, alias, a_in, a_out, node_mask):
        self.nodes = nodes        # (B, L) item ids, 0-padded
        self.alias = alias        # (B, T) sequence position → node index
        self.a_in = a_in          # (B, L, L) normalized in-adjacency
        self.a_out = a_out        # (B, L, L) normalized out-adjacency
        self.node_mask = node_mask  # (B, L) valid-node mask


def build_session_graphs(items: np.ndarray, mask: np.ndarray) -> SessionGraphBatch:
    """Convert padded item sequences into batched session graphs."""
    batch, steps = items.shape
    max_nodes = 1
    uniques: list[list[int]] = []
    for row in range(batch):
        seen: list[int] = []
        for col in range(steps):
            if mask[row, col] and items[row, col] not in seen:
                seen.append(int(items[row, col]))
        uniques.append(seen)
        max_nodes = max(max_nodes, len(seen))
    nodes = np.zeros((batch, max_nodes), dtype=np.int64)
    alias = np.zeros((batch, steps), dtype=np.int64)
    a_in = np.zeros((batch, max_nodes, max_nodes))
    a_out = np.zeros((batch, max_nodes, max_nodes))
    node_mask = np.zeros((batch, max_nodes), dtype=bool)
    for row in range(batch):
        unique = uniques[row]
        position = {item: idx for idx, item in enumerate(unique)}
        nodes[row, : len(unique)] = unique
        node_mask[row, : len(unique)] = True
        previous = None
        for col in range(steps):
            if not mask[row, col]:
                continue
            current = position[int(items[row, col])]
            alias[row, col] = current
            if previous is not None:
                a_out[row, previous, current] += 1.0
                a_in[row, current, previous] += 1.0
            previous = current
        # Row-normalize both adjacencies.
        for adj in (a_in, a_out):
            sums = adj[row].sum(axis=1, keepdims=True)
            sums[sums == 0] = 1.0
            adj[row] /= sums
    return SessionGraphBatch(nodes, alias, a_in, a_out, node_mask)


class GatedGNNLayer(SessionModel):
    """One gated graph-neural-network propagation step (Li et al. 2016)."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.w_in = Linear(dim, dim, rng)
        self.w_out = Linear(dim, dim, rng)
        self.gate = Linear(3 * dim, 2 * dim, rng)
        self.candidate = Linear(3 * dim, dim, rng)
        self.dim = dim

    def forward(self, hidden: Tensor, a_in: np.ndarray, a_out: np.ndarray) -> Tensor:
        """One message-passing step with GRU-style gated node updates."""
        msg_in = Tensor(a_in) @ self.w_in(hidden)
        msg_out = Tensor(a_out) @ self.w_out(hidden)
        combined = Tensor.concat([msg_in, msg_out, hidden], axis=-1)
        gates = self.gate(combined).sigmoid()
        update, reset = gates[:, :, : self.dim], gates[:, :, self.dim :]
        candidate = self.candidate(
            Tensor.concat([msg_in, msg_out, hidden * reset], axis=-1)
        ).tanh()
        return hidden * (1.0 - update) + candidate * update


class _GraphReadout(SessionModel):
    """SR-GNN readout: soft attention with the last item + linear fuse."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.w1 = Linear(dim, dim, rng, bias=False)
        self.w2 = Linear(dim, dim, rng)
        self.v = Linear(dim, 1, rng, bias=False)
        self.fuse = Linear(2 * dim, dim, rng, bias=False)

    def forward(self, node_states: Tensor, last: Tensor, node_mask: np.ndarray) -> Tensor:
        """Soft attention of node states against the last item + fuse."""
        batch, n_nodes, dim = node_states.shape
        energy = (self.w1(node_states) + self.w2(last).reshape(batch, 1, dim)).sigmoid()
        scores = self.v(energy) * Tensor(node_mask.astype(np.float64)[..., None])
        global_state = (node_states * scores).sum(axis=1)
        return self.fuse(Tensor.concat([global_state, last], axis=-1))


class SRGNN(SessionModel):
    """Session-graph GNN (Wu et al. 2019)."""

    def __init__(self, n_items: int, dim: int = 48, gnn_steps: int = 1, seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "srgnn")
        self.items = Embedding(n_items, dim, rng, padding_idx=0)
        self.gnn = GatedGNNLayer(dim, rng)
        self.gnn_steps = gnn_steps
        self.readout = _GraphReadout(dim, rng)

    def _node_states(self, graphs: SessionGraphBatch) -> Tensor:
        hidden = self.items(graphs.nodes)
        for _ in range(self.gnn_steps):
            hidden = self.gnn(hidden, graphs.a_in, graphs.a_out)
        return hidden

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """Gated GNN over the session graph, last-item attentive readout."""
        graphs = build_session_graphs(items, mask)
        hidden = self._node_states(graphs)
        rows = np.arange(items.shape[0])
        last_alias = graphs.alias[rows, _last_indices(mask)]
        last = hidden[rows, last_alias]
        session = self.readout(hidden, last, graphs.node_mask)
        return session @ self.items.weight.T


class GCSAN(SessionModel):
    """SR-GNN + self-attention over the sequence (Xu et al. 2019)."""

    def __init__(self, n_items: int, dim: int = 48, gnn_steps: int = 1,
                 attention_blocks: int = 1, blend: float = 0.6, seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "gcsan")
        self.items = Embedding(n_items, dim, rng, padding_idx=0)
        self.gnn = GatedGNNLayer(dim, rng)
        self.gnn_steps = gnn_steps
        self.attention = [SelfAttention(dim, rng) for _ in range(attention_blocks)]
        self.blend = blend

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """GNN node states re-sequenced, then self-attention + blend."""
        graphs = build_session_graphs(items, mask)
        hidden = self.items(graphs.nodes)
        for _ in range(self.gnn_steps):
            hidden = self.gnn(hidden, graphs.a_in, graphs.a_out)
        batch, steps = items.shape
        rows = np.arange(batch)[:, None]
        sequence = hidden[np.repeat(np.arange(batch), steps),
                          graphs.alias.reshape(-1)].reshape(batch, steps, -1)
        attn_mask = mask[:, None, :] & mask[:, :, None]
        attended = sequence
        for block in self.attention:
            attended = block(attended, mask=attn_mask)
        last_pos = _last_indices(mask)
        last_attended = attended[np.arange(batch), last_pos]
        last_gnn = sequence[np.arange(batch), last_pos]
        session = last_attended * self.blend + last_gnn * (1.0 - self.blend)
        return session @ self.items.weight.T


def build_global_graph(train_examples, n_items: int, top_k: int = 8) -> tuple[np.ndarray, np.ndarray]:
    """Global item co-occurrence neighbors from training sessions.

    Returns (neighbors (n_items, top_k) item ids, weights (n_items, top_k))
    normalized per item — the global-level graph of GCE-GNN.
    """
    co_counts: dict[int, dict[int, float]] = {}
    for example in train_examples:
        window = list(example.items) + [example.target]
        for i, item_a in enumerate(window):
            for item_b in window[max(0, i - 2) : i + 3]:
                if item_a == item_b or item_a == 0 or item_b == 0:
                    continue
                co_counts.setdefault(item_a, {})[item_b] = (
                    co_counts.get(item_a, {}).get(item_b, 0.0) + 1.0
                )
    neighbors = np.zeros((n_items, top_k), dtype=np.int64)
    weights = np.zeros((n_items, top_k))
    for item, counts in co_counts.items():
        ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:top_k]
        for slot, (neighbor, count) in enumerate(ranked):
            neighbors[item, slot] = neighbor
            weights[item, slot] = count
        total = weights[item].sum()
        if total > 0:
            weights[item] /= total
    return neighbors, weights


class GCEGNN(SessionModel):
    """Global-context-enhanced GNN (Wang et al. 2020).

    Two embedding levels: the session-local gated GNN and a global
    aggregation over co-occurrence neighbors; positional soft attention
    with the session mean produces the final representation.
    """

    def __init__(
        self,
        n_items: int,
        global_neighbors: np.ndarray,
        global_weights: np.ndarray,
        dim: int = 48,
        gnn_steps: int = 1,
        max_len: int = 10,
        seed: int = 0,
    ):
        super().__init__()
        rng = spawn_rng(seed, "gcegnn")
        self.items = Embedding(n_items, dim, rng, padding_idx=0)
        self.gnn = GatedGNNLayer(dim, rng)
        self.gnn_steps = gnn_steps
        self.neighbors = global_neighbors
        self.neighbor_weights = global_weights
        self.global_proj = Linear(dim, dim, rng)
        self.position = Parameter(nn_init.normal(rng, (max_len + 1, dim), std=0.1))
        self.w_att = Linear(2 * dim, dim, rng)
        self.q_att = Linear(dim, 1, rng, bias=False)
        self.dim = dim

    # -- global level ----------------------------------------------------
    def _global_embedding(self, node_ids: np.ndarray) -> Tensor:
        """Weighted neighbor average for each node id."""
        neigh = self.neighbors[node_ids]          # (B, L, K)
        weights = self.neighbor_weights[node_ids]  # (B, L, K)
        neigh_embed = self.items(neigh)            # (B, L, K, d)
        weighted = neigh_embed * Tensor(weights[..., None])
        return self.global_proj(weighted.sum(axis=2))

    def _sequence_states(self, items, mask) -> tuple[Tensor, SessionGraphBatch]:
        graphs = build_session_graphs(items, mask)
        hidden = self.items(graphs.nodes)
        for _ in range(self.gnn_steps):
            hidden = self.gnn(hidden, graphs.a_in, graphs.a_out)
        hidden = hidden + self._global_embedding(graphs.nodes)
        batch, steps = items.shape
        sequence = hidden[np.repeat(np.arange(batch), steps),
                          graphs.alias.reshape(-1)].reshape(batch, steps, -1)
        return sequence, graphs

    def _positional_attention(self, sequence: Tensor, mask: np.ndarray) -> Tensor:
        batch, steps, dim = sequence.shape
        mask_f = mask.astype(np.float64)[..., None]
        counts = np.maximum(mask_f.sum(axis=1), 1.0)
        mean = (sequence * Tensor(mask_f)).sum(axis=1) / Tensor(counts)
        positions = self.position[np.arange(steps)][None, :, :].data
        with_pos = Tensor.concat([sequence, Tensor(np.broadcast_to(positions, (batch, steps, dim)).copy())], axis=-1)
        energy = self.w_att(with_pos).tanh() * mean.reshape(batch, 1, dim)
        scores = self.q_att(energy) * Tensor(mask_f)
        return (sequence * scores).sum(axis=1)

    def forward(self, items, mask, knowledge=None) -> Tensor:
        """Local GNN + global-neighbor states, positional soft attention."""
        sequence, _ = self._sequence_states(items, mask)
        session = self._positional_attention(sequence, mask)
        return session @ self.items.weight.T
